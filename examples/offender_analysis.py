"""Diagnose a predictor: top offenders and training-time profile.

The paper's method starts from per-branch accounting; this example shows
the diagnostic workflow the library supports on top of it: find the
branches that cost gshare the most, see how biased they are, and check
how much of the loss is cold-start training rather than steady-state
inability.

Run:
    python examples/offender_analysis.py [benchmark]
"""

import os
import sys

from repro.analysis.offenders import render_offenders, top_offenders
from repro.analysis.runner import Lab
from repro.analysis.warmup import warmup_curve
from repro.workloads import load_benchmark


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    length = int(os.environ.get("REPRO_EXAMPLE_LENGTH", 40_000))
    lab = Lab(load_benchmark(benchmark, length=length))
    trace = lab.trace
    gshare_correct = lab.correct("gshare")

    print(f"{benchmark}: gshare accuracy "
          f"{float(gshare_correct.mean()) * 100:.2f}%\n")

    print("top offenders (branches costing gshare the most):")
    offenders = top_offenders(trace, gshare_correct, count=8)
    print(render_offenders(offenders))

    share = sum(o.misprediction_share for o in offenders)
    print(f"\nthese {len(offenders)} branches cause "
          f"{share * 100:.1f}% of all mispredictions")

    print("\ntraining-time profile (accuracy by per-branch execution age):")
    curve = warmup_curve(trace, gshare_correct)
    for (low, high), accuracy, count in zip(
        zip(curve.bucket_edges, curve.bucket_edges[1:]),
        curve.accuracies,
        curve.counts,
    ):
        if not count:
            continue
        upper = "+" if high > 1 << 32 else str(high)
        print(f"  executions {low:>4}..{upper:<5}  "
              f"{accuracy * 100:6.2f}%  ({count} branches)")
    print(f"\ntraining cost: {curve.training_cost() * 100:.2f} points "
          f"(cold-start loss the paper's section 3.6.3 describes)")

    # Cross-check: are the offenders statically hopeless or just cold?
    selective = lab.selective_correct(1)
    print("\nwould one oracle-chosen correlated branch fix them?")
    for offender in offenders[:4]:
        indices = trace.indices_by_pc()[offender.pc]
        fixed = float(selective[indices].mean())
        print(f"  branch {offender.pc:#x}: gshare "
              f"{offender.accuracy * 100:5.1f}% -> selective-1 "
              f"{fixed * 100:5.1f}%")


if __name__ == "__main__":
    main()
