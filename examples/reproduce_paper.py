"""Reproduce every table and figure of the paper in one run.

Equivalent to ``repro all`` but shows the library API: build the labs
once, run the nine experiments against them, and write a combined
report.

Run:
    python examples/reproduce_paper.py [max_length] [report.txt]
"""

import sys
import time

from repro.experiments import EXPERIMENT_IDS, build_labs, run_experiment


def main() -> None:
    max_length = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    report_path = sys.argv[2] if len(sys.argv) > 2 else None

    start = time.time()
    labs = build_labs(max_length=max_length)
    total = sum(len(lab.trace) for lab in labs.values())
    print(f"built {len(labs)} benchmark traces ({total} dynamic branches)")

    sections = []
    for experiment_id in EXPERIMENT_IDS:
        print(f"running {experiment_id}...", flush=True)
        result = run_experiment(experiment_id, labs)
        sections.append(str(result))

    report = "\n\n".join(sections)
    if report_path:
        with open(report_path, "w") as fh:
            fh.write(report + "\n")
        print(f"report written to {report_path}")
    else:
        print()
        print(report)
    print(f"\ntotal time: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
