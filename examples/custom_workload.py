"""Author a custom workload with the program IR and analyse it.

Builds a small program containing each behaviour class from the paper,
executes it to a branch trace, saves/loads the trace in the binary .bpt
format, and classifies every branch into the section-4 per-address
classes.

Run:
    python examples/custom_workload.py
"""

import os
import tempfile
from pathlib import Path

from repro.analysis.runner import Lab
from repro.classify import classify_per_address
from repro.trace import read_trace, write_trace
from repro.workloads import (
    AndExpr,
    Assign,
    BernoulliExpr,
    Block,
    ForLoop,
    If,
    PatternExpr,
    Procedure,
    Program,
    VarExpr,
    constant_trips,
    execute_program,
)
from repro.workloads.conditions import SelfHistoryExpr


def build_program() -> Program:
    """A hand-written program with one branch per behaviour class."""
    main_body = Block(
        [
            # A heavily biased guard (ideal-static class).
            If(BernoulliExpr(0.995)),
            # A 6-iteration for-loop (loop class).
            ForLoop(constant_trips(6), If(BernoulliExpr(0.97))),
            # A fixed repeating pattern (repeating class).
            If(PatternExpr([True, True, False, True, False])),
            # An own-history-function branch with occasional flips: never
            # periodic, but learnable by a per-address two-level
            # predictor (non-repeating class).
            If(SelfHistoryExpr([False, True, True, False], depth=2,
                               flip_probability=0.06)),
            # A correlated pair (figure 1a): the second branch is
            # globally predictable from the first.
            Assign("c1", BernoulliExpr(0.5)),
            Assign("c2", BernoulliExpr(0.6)),
            If(VarExpr("c1")),
            If(AndExpr(VarExpr("c1"), VarExpr("c2"))),
        ]
    )
    return Program([Procedure("main", main_body)], main="main")


def main() -> None:
    program = build_program()
    num_branches = int(os.environ.get("REPRO_EXAMPLE_LENGTH", 20_000))
    trace = execute_program(program, num_branches=num_branches, seed=7)
    print(f"executed: {trace}")

    # Round-trip through the on-disk format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "custom.bpt"
        write_trace(trace, path)
        loaded = read_trace(path)
        print(f"saved and reloaded {path.name}: {len(loaded)} branches, "
              f"{path.stat().st_size} bytes")

    # Classify every static branch (section 4.1).
    lab = Lab(loaded)
    classification = classify_per_address(lab)
    print("\nper-branch classification:")
    for pc in sorted(classification.class_of):
        label = classification.class_of[pc]
        count = len(loaded.indices_by_pc()[pc])
        print(f"  branch 0x{pc:04x}: {label:14s} ({count} executions)")
    print("\ndynamic-weighted class fractions:")
    for label, fraction in classification.dynamic_fractions.items():
        print(f"  {label:14s} {fraction * 100:5.1f}%")


if __name__ == "__main__":
    main()
