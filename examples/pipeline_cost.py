"""From prediction accuracy to pipeline performance.

The paper's opening motivation is pipeline flushes; this example turns
the reproduction's accuracy numbers into CPI and speedup using the
analytical model, across the Yeh/Patt predictor taxonomy.

Run:
    python examples/pipeline_cost.py [benchmark]
"""

import os
import sys

from repro.analysis.cost import PipelineModel
from repro.predictors import (
    BimodalPredictor,
    GAgPredictor,
    GsharePredictor,
    PAgPredictor,
    PAsPredictor,
    AlwaysTakenPredictor,
    ChooserHybrid,
)
from repro.workloads import load_benchmark


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    length = int(os.environ.get("REPRO_EXAMPLE_LENGTH", 40_000))
    trace = load_benchmark(benchmark, length=length)

    # A late-1990s deep pipeline: 7-cycle flush, 18% branches.
    model = PipelineModel(base_cpi=1.0, branch_fraction=0.18,
                          misprediction_penalty=7.0)

    predictors = [
        AlwaysTakenPredictor(),
        BimodalPredictor(12),
        GAgPredictor(10),
        GsharePredictor(16, 16),
        PAgPredictor(6, 12),
        PAsPredictor(6, 12),
        ChooserHybrid(GsharePredictor(16, 16), PAsPredictor(6, 12)),
    ]

    print(f"{benchmark}: accuracy -> pipeline cost "
          f"(penalty {model.misprediction_penalty:.0f} cycles)\n")
    print(f"{'predictor':34s} {'accuracy':>9s} {'CPI':>7s} {'MPKI':>7s} {'speedup':>8s}")
    baseline_cpi = None
    for predictor in predictors:
        accuracy = predictor.accuracy(trace)
        cpi = model.cpi(accuracy)
        if baseline_cpi is None:
            baseline_cpi = cpi
        print(
            f"{predictor.name:34s} {accuracy * 100:8.2f}% {cpi:7.3f} "
            f"{model.mispredictions_per_kilo_instruction(accuracy):7.2f} "
            f"{baseline_cpi / cpi:7.3f}x"
        )
    print("\nspeedup is relative to the always-taken baseline")


if __name__ == "__main__":
    main()
