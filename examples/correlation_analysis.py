"""Walk through the paper's correlation analysis (sections 3.2-3.4).

For one benchmark, collect tagged-correlation data, run the oracle
selection, and inspect *which* prior branches the oracle picked for the
branches with the strongest correlations -- the machinery behind
figures 4 and 5.

Run:
    python examples/correlation_analysis.py [benchmark]
"""

import os
import sys

from repro.analysis.runner import Lab
from repro.correlation.tagging import TAG_BACKWARD, TAG_OCCURRENCE
from repro.trace.stats import per_branch_bias
from repro.workloads import load_benchmark


def describe_tag(tag) -> str:
    kind, pc, index = tag
    if kind == TAG_OCCURRENCE:
        return f"branch 0x{pc:x}, occurrence #{index}"
    assert kind == TAG_BACKWARD
    return f"branch 0x{pc:x}, {index} backward branches ago"


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    length = int(os.environ.get("REPRO_EXAMPLE_LENGTH", 30_000))
    lab = Lab(load_benchmark(benchmark, length=length))
    trace = lab.trace
    biases = per_branch_bias(trace)

    # Oracle selection of the single most important correlated branch.
    selections = lab.selections(count=1)

    # Rank branches by how much that one correlation adds over bias.
    gains = []
    for pc, selection in selections.items():
        if not selection.tags:
            continue
        gain = selection.ideal_accuracy - biases[pc]
        weight = len(trace.indices_by_pc()[pc])
        gains.append((gain * weight, gain, pc, selection))
    gains.sort(reverse=True)

    print(f"{benchmark}: strongest single-branch correlations")
    print(f"(window = {lab.config.selective_window} branches, oracle-chosen)\n")
    for _score, gain, pc, selection in gains[:10]:
        tag = selection.tags[0]
        print(
            f"branch 0x{pc:x}: bias {biases[pc] * 100:5.1f}% -> "
            f"{selection.ideal_accuracy * 100:5.1f}% "
            f"(+{gain * 100:.1f} points) by knowing {describe_tag(tag)}"
        )

    # Compare selective histories of 1, 2, 3 branches with the
    # interference-free gshare baseline, as figure 4 does.
    print("\nwhole-benchmark accuracies (figure 4 series):")
    for count in (1, 2, 3):
        print(f"  selective-{count}: {lab.selective_accuracy(count) * 100:.2f}%")
    print(f"  IF-gshare:   {lab.accuracy('if_gshare') * 100:.2f}%")
    print(f"  gshare:      {lab.accuracy('gshare') * 100:.2f}%")


if __name__ == "__main__":
    main()
