"""Why hybrids win: the section-5 story on one benchmark.

Shows the per-branch accuracy difference between gshare and PAs (the
figure-9 analysis), then builds McFarling's chooser hybrid from the same
two components and compares it against both -- the paper's closing
argument made executable.

Run:
    python examples/hybrid_predictors.py [benchmark]
"""

import os
import sys

from repro.analysis.percentile import percentile_difference_curve
from repro.analysis.runner import Lab
from repro.predictors import ChooserHybrid, GsharePredictor, PAsPredictor
from repro.workloads import load_benchmark


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    length = int(os.environ.get("REPRO_EXAMPLE_LENGTH", 40_000))
    lab = Lab(load_benchmark(benchmark, length=length))
    trace = lab.trace

    gshare_correct = lab.correct("gshare")
    pas_correct = lab.correct("pas")
    curve = percentile_difference_curve(trace, gshare_correct, pas_correct)

    print(f"{benchmark}: gshare vs PAs, per-branch (figure 9 view)")
    print("percentile   gshare - PAs (points)")
    for p in (0, 10, 25, 50, 75, 90, 100):
        print(f"   p{p:<3d}        {curve.tail(p):+7.2f}")
    print(
        f"\nif only gshare existed, branches where PAs is better would "
        f"cost {curve.area_b_better():.2f} points on average;"
    )
    print(
        f"if only PAs existed, gshare-better branches would cost "
        f"{curve.area_a_better():.2f} points."
    )

    # The fix the paper motivates: combine both with a chooser.
    hybrid = ChooserHybrid(
        GsharePredictor(lab.config.gshare_history_bits, lab.config.gshare_pht_bits),
        PAsPredictor(lab.config.pas_history_bits, lab.config.pas_bht_bits),
    )
    hybrid_accuracy = hybrid.accuracy(trace)
    print("\nwhole-benchmark accuracies:")
    print(f"  gshare          {float(gshare_correct.mean()) * 100:6.2f}%")
    print(f"  PAs             {float(pas_correct.mean()) * 100:6.2f}%")
    print(f"  chooser hybrid  {hybrid_accuracy * 100:6.2f}%")


if __name__ == "__main__":
    main()
