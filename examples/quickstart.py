"""Quickstart: simulate branch predictors on a synthetic benchmark.

Run:
    python examples/quickstart.py
"""

import os

from repro.analysis.config import DEFAULT_CONFIG
from repro.predictors import (
    BimodalPredictor,
    GsharePredictor,
    IdealStaticPredictor,
    LoopPredictor,
    PAsPredictor,
)
from repro.trace import compute_statistics
from repro.workloads import load_benchmark


def main() -> None:
    # Generate the gcc analogue (a synthetic SPECint95-like workload).
    length = int(os.environ.get("REPRO_EXAMPLE_LENGTH", 40_000))
    trace = load_benchmark("gcc", length=length)
    stats = compute_statistics(trace)
    print(f"trace: {len(trace)} dynamic branches, {stats.num_static} static")
    print(f"taken rate: {stats.taken_rate:.3f}")
    print(f">99%-biased dynamic fraction: {stats.biased_99_dynamic_fraction:.3f}")
    print()

    # Every predictor shares one interface: predict / update, or the
    # whole-trace simulate() returning a per-branch correctness bitmap.
    predictors = [
        IdealStaticPredictor(),
        BimodalPredictor(table_bits=12),
        GsharePredictor(history_bits=16, pht_bits=16),
        PAsPredictor(history_bits=6, bht_bits=12),
        LoopPredictor(),
        DEFAULT_CONFIG.if_gshare(),
        DEFAULT_CONFIG.if_pas(),
    ]
    print(f"{'predictor':24s} accuracy")
    for predictor in predictors:
        accuracy = predictor.accuracy(trace)
        print(f"{predictor.name:24s} {accuracy * 100:6.2f}%")


if __name__ == "__main__":
    main()
