"""Tests for the parallel simulation scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.parallel import (
    DEFAULT_TASKS,
    default_jobs,
    prime_labs,
    resolve_jobs,
)
from repro.analysis.runner import Lab
from repro.experiments.base import build_labs
from repro.workloads.suite import load_benchmark

SMALL = 2000


@pytest.fixture(scope="module")
def serial_labs():
    """Reference results computed the plain in-process way."""
    labs = build_labs(SMALL)
    for lab in labs.values():
        for task in DEFAULT_TASKS:
            if task == "correlation":
                lab.correlation_data()
            else:
                lab.correct(task)
    return labs


def assert_labs_match(labs, serial_labs):
    assert set(labs) == set(serial_labs)
    for name, lab in labs.items():
        reference = serial_labs[name]
        for task in DEFAULT_TASKS:
            if task == "correlation":
                assert (
                    lab.correlation_data().trace_length
                    == reference.correlation_data().trace_length
                )
            else:
                assert np.array_equal(
                    lab.correct(task), reference.correct(task)
                ), (name, task)


class TestJobResolution:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        assert resolve_jobs(None) == 3

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert default_jobs() >= 1

    def test_explicit_wins_and_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestPrimeLabs:
    def test_serial_priming_fills_memos(self, serial_labs):
        labs = build_labs(SMALL)
        executed = prime_labs(labs, jobs=1)
        assert executed == len(labs) * len(DEFAULT_TASKS)
        for lab in labs.values():
            for task in DEFAULT_TASKS:
                assert lab.is_primed(task)
        assert_labs_match(labs, serial_labs)

    def test_parallel_matches_serial(self, serial_labs):
        labs = build_labs(SMALL)
        executed = prime_labs(labs, jobs=2)
        assert executed == len(labs) * len(DEFAULT_TASKS)
        assert_labs_match(labs, serial_labs)

    def test_already_primed_schedules_nothing(self, serial_labs):
        labs = build_labs(SMALL)
        prime_labs(labs, jobs=1)
        assert prime_labs(labs, jobs=2) == 0

    def test_cache_makes_second_prime_pure_hits(self, tmp_path, serial_labs):
        cache = ResultCache(tmp_path / "c")
        labs = build_labs(SMALL, jobs=2, cache=cache)
        assert_labs_match(labs, serial_labs)
        # A fresh process (fresh labs, fresh cache handle) folds from disk.
        cache2 = ResultCache(tmp_path / "c")
        labs2 = build_labs(SMALL, jobs=2, cache=cache2)
        assert cache2.stats.misses == 0
        assert cache2.stats.hits >= len(labs2) * len(DEFAULT_TASKS)
        assert_labs_match(labs2, serial_labs)

    def test_adhoc_lab_digest_mismatch_is_discarded(self):
        # A lab whose trace does NOT regenerate from its key must not be
        # polluted by the worker's differently-seeded result.
        trace = load_benchmark("compress", length=SMALL, run_seed=777)
        labs = {"compress": Lab(trace)}
        prime_labs(labs, run_seed=12345, jobs=2, tasks=("loop",))
        assert not labs["compress"].is_primed("loop")

    def test_subset_of_tasks(self):
        labs = build_labs(SMALL)
        prime_labs(labs, jobs=1, tasks=("loop", "block"))
        for lab in labs.values():
            assert lab.is_primed("loop") and lab.is_primed("block")
            assert not lab.is_primed("gshare")


class TestChunkedPriming:
    def test_chunked_prime_is_bit_identical(self, serial_labs):
        # A window far below every trace length forces the chunk
        # scheduler (shared-memory shipping + carried-state folds) for
        # all chunkable tasks; results must match the serial references.
        labs = build_labs(SMALL, chunk_branches=512)
        executed = prime_labs(labs, jobs=2, chunk_branches=512)
        assert executed > 0
        assert_labs_match(labs, serial_labs)

    def test_chunked_metrics_count_lanes_and_windows(self):
        from repro.obs.metrics import METRICS

        labs = build_labs(SMALL, chunk_branches=512)
        METRICS.reset()
        prime_labs(
            labs, jobs=2, tasks=("gshare",), chunk_branches=512
        )
        snapshot = METRICS.snapshot()
        lanes = snapshot["counters"].get("sim.chunked_simulations", 0)
        windows = snapshot["counters"].get("sim.chunk_simulations", 0)
        assert lanes == len(labs)
        assert windows > lanes  # several windows per lane
        assert "sim.simulations" not in snapshot["counters"]

    def test_window_wider_than_traces_uses_whole_trace_path(
        self, serial_labs
    ):
        labs = build_labs(SMALL, chunk_branches=1 << 20)
        prime_labs(labs, jobs=1, chunk_branches=1 << 20)
        assert_labs_match(labs, serial_labs)


class TestBuildLabsWiring:
    def test_default_build_stays_lazy(self):
        labs = build_labs(SMALL)
        for lab in labs.values():
            assert lab.cache is None
            for task in DEFAULT_TASKS:
                assert not lab.is_primed(task)

    def test_build_with_cache_stores_traces(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        labs = build_labs(SMALL, cache=cache)
        assert cache.stats.writes == len(labs)
        cache2 = ResultCache(tmp_path / "c")
        labs2 = build_labs(SMALL, cache=cache2)
        assert cache2.stats.hits == len(labs2)
        for name in labs:
            assert labs[name].trace == labs2[name].trace
