"""Tests for the declaration-soundness pass (repro.check.deps)."""

from pathlib import Path

import pytest

from repro.check.deps import (
    analyze_projections,
    analyze_requires,
    run_deps_pass,
)
from repro.check.diagnostics import ERROR, WARNING

FIXTURES = Path(__file__).parent / "fixtures" / "check_defects"


def codes(diagnostics):
    return [diag.code for diag in diagnostics]


def by_code(diagnostics, code):
    return [diag for diag in diagnostics if diag.code == code]


class TestRealTreeIsClean:
    """The shipped experiments and config must pass their own audit."""

    def test_requires_pass_clean(self):
        assert analyze_requires() == []

    def test_projection_pass_clean(self):
        assert analyze_projections() == []

    def test_combined_pass_clean(self):
        assert run_deps_pass() == []


class TestSeededRequiresDefects:
    """Each planted declaration defect produces its exact DS code."""

    @pytest.fixture(scope="class")
    def diagnostics(self):
        return analyze_requires(
            experiments_root=str(FIXTURES / "experiments")
        )

    def test_exact_code_multiset(self, diagnostics):
        assert sorted(codes(diagnostics)) == [
            "DS001", "DS001", "DS002", "DS003"
        ]

    def test_ds001_undeclared_helper_consumption(self, diagnostics):
        found = by_code(diagnostics, "DS001")
        tasks = {
            diag.message.split("'")[3] for diag in found
        }  # experiment '...' consumes task '<name>'
        assert tasks == {"pas", "correlation"}
        assert all(diag.severity == ERROR for diag in found)
        assert all("fx_undeclared" in diag.message for diag in found)

    def test_ds001_selective_access_maps_to_correlation(self, diagnostics):
        correlation = [
            diag for diag in by_code(diagnostics, "DS001")
            if "'correlation'" in diag.message
        ]
        assert len(correlation) == 1

    def test_ds002_phantom_declaration_is_warning(self, diagnostics):
        (phantom,) = by_code(diagnostics, "DS002")
        assert phantom.severity == WARNING
        assert "fx_phantom" in phantom.message
        assert "'loop'" in phantom.message

    def test_ds003_unknown_task_name(self, diagnostics):
        (unknown,) = by_code(diagnostics, "DS003")
        assert unknown.severity == ERROR
        assert "'gshar'" in unknown.message
        assert "correlation" in unknown.message  # the selective hint

    def test_clean_runner_stays_silent(self, diagnostics):
        assert not any("fx_clean" in diag.message for diag in diagnostics)

    def test_locations_point_into_the_fixture(self, diagnostics):
        for diag in diagnostics:
            path, _, line = diag.location.rpartition(":")
            assert path.endswith("defective.py")
            assert int(line) > 0


class TestSeededProjectionDefects:
    """Stale TASK_CONFIG_FIELDS copies produce DS004/DS005."""

    @pytest.fixture(scope="class")
    def diagnostics(self):
        return analyze_projections(
            config_path=str(FIXTURES / "bad_config.py")
        )

    def test_exact_code_multiset(self, diagnostics):
        assert sorted(codes(diagnostics)) == ["DS004", "DS005"]

    def test_ds004_missing_read_field_is_error(self, diagnostics):
        (missing,) = by_code(diagnostics, "DS004")
        assert missing.severity == ERROR
        assert "'gshare'" in missing.message
        assert "gshare_pht_bits" in missing.message
        # The constructor note makes the finding actionable.
        assert "GsharePredictor" in missing.message

    def test_ds005_unread_field_is_warning(self, diagnostics):
        (unread,) = by_code(diagnostics, "DS005")
        assert unread.severity == WARNING
        assert "'loop'" in unread.message
        assert "pas_history_bits" in unread.message


class TestSuppression:
    def test_check_ignore_comment_silences_a_finding(self, tmp_path):
        fixture = (FIXTURES / "bad_config.py").read_text(encoding="utf-8")
        patched = fixture.replace(
            '"gshare": ("gshare_history_bits",),',
            '"gshare": ("gshare_history_bits",),  # check: ignore',
        )
        assert patched != fixture
        target = tmp_path / "suppressed_config.py"
        target.write_text(patched, encoding="utf-8")
        diagnostics = analyze_projections(config_path=str(target))
        assert codes(diagnostics) == ["DS005"]
