"""Tests for the structured-program IR and interpreter."""

import pytest

from repro.workloads.conditions import BernoulliExpr, ConstExpr, VarExpr, constant_trips
from repro.workloads.program import (
    Assign,
    Block,
    Call,
    Effect,
    ForLoop,
    If,
    Procedure,
    Program,
    WhileLoop,
    execute_program,
)


def run(statements, n=100, seed=1, procedures=()):
    main = Procedure("main", Block(list(statements)))
    program = Program(list(procedures) + [main], main="main")
    return execute_program(program, n, seed)


class TestIf:
    def test_taken_follows_condition(self):
        trace = run([If(ConstExpr(True))], n=5)
        assert trace.taken.all()
        trace = run([If(ConstExpr(False))], n=5)
        assert not trace.taken.any()

    def test_if_branches_are_forward(self):
        trace = run([If(ConstExpr(True))], n=5)
        assert not trace.is_backward.any()

    def test_then_body_runs_only_when_taken(self):
        statements = [
            Assign("flag", ConstExpr(False)),
            If(ConstExpr(True), then_body=Assign("flag", ConstExpr(True))),
            If(VarExpr("flag")),
        ]
        trace = run(statements, n=10)
        # Second branch per round reflects the then-body's assignment.
        assert trace.taken[1::2].all()

    def test_else_body(self):
        statements = [
            Assign("flag", ConstExpr(False)),
            If(
                ConstExpr(False),
                then_body=Assign("flag", ConstExpr(False)),
                else_body=Assign("flag", ConstExpr(True)),
            ),
            If(VarExpr("flag")),
        ]
        trace = run(statements, n=10)
        assert trace.taken[1::2].all()


class TestLoops:
    def test_for_loop_outcome_shape(self):
        # trips=4: branch executes 4 times per entry: T T T N.
        trace = run([ForLoop(constant_trips(4), Block([]))], n=12)
        assert list(trace.taken) == [True, True, True, False] * 3

    def test_for_loop_branch_is_backward(self):
        trace = run([ForLoop(constant_trips(3), Block([]))], n=6)
        assert trace.is_backward.all()

    def test_for_loop_body_runs_per_iteration(self):
        trace = run([ForLoop(constant_trips(3), If(ConstExpr(True)))], n=12)
        # Alternating body branch / loop branch, 3 pairs per loop entry.
        assert trace.num_static_branches() == 2

    def test_while_loop_outcome_shape(self):
        # trips=3: exit branch executes 4 times: N N N T.
        trace = run([WhileLoop(constant_trips(3), Block([]))], n=8)
        assert list(trace.taken) == [False, False, False, True] * 2

    def test_while_loop_branch_is_forward(self):
        trace = run([WhileLoop(constant_trips(2), Block([]))], n=6)
        assert not trace.is_backward.any()

    def test_while_zero_trips_exits_immediately(self):
        trace = run([WhileLoop(constant_trips(0), Block([]))], n=4)
        assert trace.taken.all()

    def test_for_loop_minimum_one_execution(self):
        trace = run([ForLoop(constant_trips(0), Block([]))], n=4)
        # Bottom-tested: the body and branch execute at least once.
        assert not trace.taken.any()


class TestCallsAndEffects:
    def test_call_executes_procedure(self):
        callee = Procedure("callee", If(ConstExpr(True)))
        trace = run([Call("callee")], n=4, procedures=[callee])
        assert trace.taken.all()

    def test_unknown_procedure_rejected(self):
        with pytest.raises(KeyError):
            run([Call("ghost")], n=4)

    def test_effect_mutates_environment(self):
        def set_flag(env):
            env.variables["flag"] = True

        trace = run([Effect(set_flag), If(VarExpr("flag"))], n=4)
        assert trace.taken.all()


class TestProgram:
    def test_duplicate_procedure_names_rejected(self):
        with pytest.raises(ValueError):
            Program(
                [Procedure("a", Block([])), Procedure("a", Block([]))],
                main="a",
            )

    def test_missing_main_rejected(self):
        with pytest.raises(ValueError):
            Program([Procedure("a", Block([]))], main="b")

    def test_branch_addresses_distinct(self):
        statements = [If(ConstExpr(True)) for _ in range(10)]
        trace = run(statements, n=30)
        assert trace.num_static_branches() == 10

    def test_exact_trace_length(self):
        trace = run([If(BernoulliExpr(0.5))], n=777)
        assert len(trace) == 777

    def test_positive_length_required(self):
        with pytest.raises(ValueError):
            run([If(ConstExpr(True))], n=0)

    def test_determinism_per_seed(self):
        statements = lambda: [If(BernoulliExpr(0.5)), ForLoop(constant_trips(3), If(BernoulliExpr(0.7)))]
        a = run(statements(), n=500, seed=9)
        b = run(statements(), n=500, seed=9)
        c = run(statements(), n=500, seed=10)
        assert a == b
        assert a != c


class TestCountersAndRecursion:
    def test_counters_default_zero(self):
        from repro.workloads.conditions import CounterBelowExpr

        trace = run([If(CounterBelowExpr("d", 1))], n=4)
        assert trace.taken.all()

    def test_add_and_set_counter(self):
        from repro.workloads.conditions import CounterBelowExpr
        from repro.workloads.program import AddCounter, SetCounter

        statements = [
            SetCounter("d", 0),
            AddCounter("d", 2),
            If(CounterBelowExpr("d", 2)),  # 2 < 2: not taken
            AddCounter("d", -1),
            If(CounterBelowExpr("d", 2)),  # 1 < 2: taken
        ]
        trace = run(statements, n=10)
        assert list(trace.taken[:2]) == [False, True]

    def test_recursion_bounded_by_depth_guard(self):
        from repro.workloads import motifs

        callee = "rec"
        procedures = [
            motifs.make_recursive_procedure(callee, max_depth=5, p_continue=1.0)
        ]
        statements = [motifs.recursive_descent("m", callee)]
        trace = run(statements, n=60, procedures=procedures)
        # With p_continue=1 the recursion branch is taken exactly
        # max_depth+1 times... the guard stops it: taken 5 times (depths
        # 0..4), then not-taken at depth 5, per descent.
        groups = trace.indices_by_pc()
        rec_pc = sorted(groups)[0]
        outcomes = trace.taken[groups[rec_pc]]
        # Per full descent: T T T T T N (depth guard) -> 5/6 taken.
        assert 0.7 < outcomes.mean() < 0.9

    def test_recursion_trace_is_deterministic(self):
        from repro.workloads import motifs

        def build():
            callee = "rec"
            procedures = [
                motifs.make_recursive_procedure(callee, max_depth=4, p_continue=0.7)
            ]
            return [motifs.recursive_descent("m", callee)], procedures

        s1, p1 = build()
        s2, p2 = build()
        assert run(s1, n=300, seed=5, procedures=p1) == run(
            s2, n=300, seed=5, procedures=p2
        )
