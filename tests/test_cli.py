"""Tests for the command-line interface."""


from repro.cli import main


class TestCli:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_single_experiment(self, capsys):
        assert main(["table1", "--max-length", "2000"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "vortex" in out

    def test_duplicates_run_once(self, capsys):
        assert main(["table1", "table1", "--max-length", "2000"]) == 0
        out = capsys.readouterr().out
        assert out.count("running table1") == 1

    def test_gshare_override(self, capsys):
        assert main(["fig9", "--max-length", "2000", "--gshare-history", "8"]) == 0

    def test_seed_changes_workload(self, capsys):
        assert main(["table1", "--max-length", "2000", "--seed", "99"]) == 0
