"""Tests for the command-line interface."""


from repro.cli import main


class TestCli:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_single_experiment(self, capsys):
        assert main(["table1", "--max-length", "2000"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "vortex" in out

    def test_duplicates_run_once(self, capsys):
        assert main(["table1", "table1", "--max-length", "2000"]) == 0
        out = capsys.readouterr().out
        assert out.count("running table1") == 1

    def test_gshare_override(self, capsys):
        assert main(["fig9", "--max-length", "2000", "--gshare-history", "8"]) == 0

    def test_seed_changes_workload(self, capsys):
        assert main(["table1", "--max-length", "2000", "--seed", "99"]) == 0


class TestEngineFlags:
    def test_report_is_alias_for_all(self, capsys, tmp_path):
        assert main(
            ["report", "--max-length", "2000",
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
        out = capsys.readouterr().out
        assert "running table1" in out
        assert "running fig9" in out

    def test_no_cache_bypasses_disk(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert main(["table1", "--max-length", "2000", "--no-cache"]) == 0
        assert not (tmp_path / "c").exists()
        assert "cache:" not in capsys.readouterr().out

    def test_cache_dir_flag_populates(self, capsys, tmp_path):
        cache_dir = tmp_path / "c"
        assert main(
            ["table2", "--max-length", "2000", "--cache-dir", str(cache_dir)]
        ) == 0
        assert cache_dir.is_dir()
        first = capsys.readouterr().out
        assert "misses" in first
        # Second run is pure cache hits.
        assert main(
            ["table2", "--max-length", "2000", "--cache-dir", str(cache_dir)]
        ) == 0
        assert "0 misses" in capsys.readouterr().out

    def test_explicit_jobs(self, capsys, tmp_path):
        assert main(
            ["table1", "--max-length", "2000", "--jobs", "2",
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
        assert "jobs: 2" in capsys.readouterr().out


class TestCacheSubcommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        cache_dir = tmp_path / "c"
        assert main(
            ["table1", "--max-length", "2000", "--cache-dir", str(cache_dir)]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "entries: 0" not in out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_dir_env(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envc"))
        assert main(["cache", "stats"]) == 0
        assert str(tmp_path / "envc") in capsys.readouterr().out
