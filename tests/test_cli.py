"""Tests for the command-line interface."""


from repro.cli import main


class TestCli:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_single_experiment(self, capsys):
        assert main(["table1", "--max-length", "2000"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "vortex" in out

    def test_duplicates_run_once(self, capsys):
        assert main(["table1", "table1", "--max-length", "2000"]) == 0
        out = capsys.readouterr().out
        assert out.count("running table1") == 1

    def test_gshare_override(self, capsys):
        assert main(["fig9", "--max-length", "2000", "--gshare-history", "8"]) == 0

    def test_seed_changes_workload(self, capsys):
        assert main(["table1", "--max-length", "2000", "--seed", "99"]) == 0


class TestEngineFlags:
    def test_report_is_alias_for_all(self, capsys, tmp_path, monkeypatch):
        # report/all write run_manifest.json into the cwd by default.
        monkeypatch.chdir(tmp_path)
        assert main(
            ["report", "--max-length", "2000",
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
        out = capsys.readouterr().out
        assert "running table1" in out
        assert "running fig9" in out
        assert (tmp_path / "run_manifest.json").is_file()

    def test_no_cache_bypasses_disk(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert main(["table1", "--max-length", "2000", "--no-cache"]) == 0
        assert not (tmp_path / "c").exists()
        assert "cache:" not in capsys.readouterr().out

    def test_cache_dir_flag_populates(self, capsys, tmp_path):
        cache_dir = tmp_path / "c"
        assert main(
            ["table2", "--max-length", "2000", "--cache-dir", str(cache_dir)]
        ) == 0
        assert cache_dir.is_dir()
        first = capsys.readouterr().out
        assert "misses" in first
        # Second run is pure cache hits.
        assert main(
            ["table2", "--max-length", "2000", "--cache-dir", str(cache_dir)]
        ) == 0
        assert "0 misses" in capsys.readouterr().out

    def test_explicit_jobs(self, capsys, tmp_path):
        assert main(
            ["table1", "--max-length", "2000", "--jobs", "2",
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
        assert "jobs: 2" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_metrics_out_writes_snapshot(self, capsys, tmp_path):
        # fig9 declares gshare+pas, so the planner actually schedules
        # simulations (table1 is pure trace statistics and would not).
        import json

        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["fig9", "--max-length", "2000", "--no-cache",
             "--metrics-out", str(metrics_path)]
        ) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["counters"]["experiments.run"] == 1
        assert "sim.simulations" in payload["counters"]

    def test_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "spans.json"
        assert main(
            ["fig9", "--max-length", "2000", "--no-cache",
             "--trace-out", str(trace_path)]
        ) == 0
        payload = json.loads(trace_path.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert "report" in names and "simulate" in names

    def test_manifest_out_for_single_experiment(self, capsys, tmp_path):
        from repro.obs.manifest import read_manifest

        manifest_path = tmp_path / "m.json"
        assert main(
            ["table2", "--max-length", "2000",
             "--cache-dir", str(tmp_path / "c"),
             "--manifest-out", str(manifest_path)]
        ) == 0
        manifest = read_manifest(str(manifest_path))
        assert [entry["id"] for entry in manifest["experiments"]] == ["table2"]

    def test_single_experiment_writes_no_default_manifest(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["table1", "--max-length", "2000", "--no-cache"]) == 0
        assert not (tmp_path / "run_manifest.json").exists()

    def test_obs_show_round_trips_report_manifest(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["report", "--max-length", "2000",
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "show", "run_manifest.json"]) == 0
        out = capsys.readouterr().out
        from repro.obs.manifest import MANIFEST_SCHEMA_VERSION

        assert f"run manifest (schema v{MANIFEST_SCHEMA_VERSION}" in out
        assert "fig9" in out


class TestCacheSubcommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        cache_dir = tmp_path / "c"
        assert main(
            ["table1", "--max-length", "2000", "--cache-dir", str(cache_dir)]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "entries: 0" not in out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_dir_env(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envc"))
        assert main(["cache", "stats"]) == 0
        assert str(tmp_path / "envc") in capsys.readouterr().out

    def test_stats_on_missing_dir_is_zero_and_clean(self, capsys, tmp_path):
        # Regression: a fresh checkout has no cache directory; stats
        # must report an empty cache, exit 0, and not create the dir.
        missing = tmp_path / "never-created"
        assert main(["cache", "stats", "--cache-dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out
        assert "size: 0.00 MB" in out
        assert not missing.exists()

    def test_stats_on_file_root_is_zero(self, capsys, tmp_path):
        # A plain file where the cache dir should be must not crash.
        bogus = tmp_path / "file-not-dir"
        bogus.write_text("not a cache")
        assert main(["cache", "stats", "--cache-dir", str(bogus)]) == 0
        assert "entries: 0" in capsys.readouterr().out


class TestVersionFlag:
    def test_version_flag(self, capsys):
        import re

        assert main(["--version"]) == 0
        out = capsys.readouterr().out.strip()
        # Metadata (when installed) may disagree with the checkout; the
        # format is the contract.
        assert re.fullmatch(r"repro \d+[\w.]*", out)


class TestSpecCommands:
    def emit(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert main(
            ["fig9", "--max-length", "2000", "--emit-spec", str(spec_path),
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
        assert "run spec written" in capsys.readouterr().out
        return spec_path

    def test_emit_spec_writes_without_running(self, tmp_path, capsys):
        spec_path = self.emit(tmp_path, capsys)
        from repro.spec import RunSpec

        spec = RunSpec.from_file(str(spec_path))
        assert spec.experiments == ("fig9",)
        assert spec.workload.max_length == 2000

    def test_run_executes_an_emitted_spec(self, tmp_path, capsys):
        spec_path = self.emit(tmp_path, capsys)
        manifest_path = tmp_path / "m.json"
        assert main(
            ["run", str(spec_path), "--manifest-out", str(manifest_path)]
        ) == 0
        assert "running fig9" in capsys.readouterr().out
        assert manifest_path.is_file()

    def test_run_missing_spec_file_is_usage_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_rejects_malformed_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "repro.runspec", "colour": "red"}')
        assert main(["run", str(bad)]) == 2
        assert "unknown field" in capsys.readouterr().err

    def test_plan_prints_the_graph_without_running(self, tmp_path, capsys):
        spec_path = self.emit(tmp_path, capsys)
        assert main(["plan", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "1 point(s)" in out
        assert "p0/experiment/fig9" in out
        # Planning must not execute anything.
        assert "running fig9" not in out

    def test_legacy_flags_and_spec_file_agree(self, tmp_path, capsys):
        # The parity gate: the same run launched via legacy flags and
        # via its emitted spec must produce manifests that diff clean.
        spec_path = self.emit(tmp_path, capsys)
        legacy = tmp_path / "legacy.json"
        via_spec = tmp_path / "spec_run.json"
        assert main(
            ["fig9", "--max-length", "2000",
             "--cache-dir", str(tmp_path / "c"),
             "--manifest-out", str(legacy)]
        ) == 0
        assert main(
            ["run", str(spec_path), "--manifest-out", str(via_spec)]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "diff", str(legacy), str(via_spec)]) == 0
        assert "agree" in capsys.readouterr().out
