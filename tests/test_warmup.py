"""Tests for the training-time (warmup) analysis."""

import numpy as np
import pytest

from repro.analysis.warmup import DEFAULT_EDGES, WarmupCurve, warmup_curve

from conftest import interleave, trace_from_outcomes


class TestWarmupCurve:
    def test_ages_are_per_branch(self):
        trace = interleave({1: [True] * 10, 2: [True] * 10})
        correct = np.ones(20, dtype=bool)
        curve = warmup_curve(trace, correct, bucket_edges=(0, 4, 100))
        # Each branch contributes 4 cold executions.
        assert curve.counts == (8, 12)

    def test_cold_vs_warm_split(self):
        # Wrong for the first 4 executions, right afterwards.
        trace = interleave({1: [True] * 50})
        correct = np.ones(50, dtype=bool)
        correct[:4] = False
        curve = warmup_curve(trace, correct, bucket_edges=(0, 4, 100))
        assert curve.cold_accuracy() == 0.0
        assert curve.warm_accuracy() == 1.0
        assert curve.training_cost() == pytest.approx(1.0)

    def test_warm_skips_empty_buckets(self):
        trace = trace_from_outcomes([True] * 10)
        correct = np.ones(10, dtype=bool)
        curve = warmup_curve(trace, correct)  # default edges go to 256+
        assert curve.warm_accuracy() == 1.0

    def test_counts_cover_trace(self):
        trace = interleave({1: [True] * 30, 2: [False] * 7})
        correct = np.ones(37, dtype=bool)
        curve = warmup_curve(trace, correct)
        assert sum(curve.counts) == 37

    def test_validation(self):
        trace = trace_from_outcomes([True] * 5)
        with pytest.raises(ValueError):
            warmup_curve(trace, np.ones(4, dtype=bool))
        with pytest.raises(ValueError):
            warmup_curve(trace, np.ones(5, dtype=bool), bucket_edges=(5,))
        with pytest.raises(ValueError):
            warmup_curve(trace, np.ones(5, dtype=bool), bucket_edges=(5, 2))

    def test_default_edges_are_increasing(self):
        assert list(DEFAULT_EDGES) == sorted(DEFAULT_EDGES)

    def test_adaptive_predictor_shows_training_cost(self, small_gcc_trace):
        from repro.predictors.twolevel import GsharePredictor

        correct = GsharePredictor(16, 16).simulate(small_gcc_trace)
        curve = warmup_curve(small_gcc_trace, correct)
        assert curve.training_cost() > 0.02
