"""Tests for the PHT-interference measurement extension."""

import random

import pytest

from repro.analysis.interference import measure_gshare_interference
from repro.predictors.twolevel import GsharePredictor

from conftest import interleave, trace_from_outcomes
from repro.trace.trace import Trace


class TestInterferenceReport:
    def test_single_branch_has_no_conflicts(self):
        trace = trace_from_outcomes([True, False] * 100)
        report = measure_gshare_interference(trace, 4, 6)
        assert report.conflict_accesses == 0
        assert report.conflict_rate == 0.0

    def test_accesses_equal_trace_length(self):
        trace = trace_from_outcomes([True] * 50)
        report = measure_gshare_interference(trace, 4, 6)
        assert report.accesses == 50

    def test_forced_conflicts_in_single_entry_pht(self):
        # Two branches folded onto one PHT entry (their shifted
        # addresses share the low bit): every access after the first
        # alternation conflicts.
        trace = interleave({0x100: [True] * 50, 0x108: [False] * 50})
        report = measure_gshare_interference(trace, history_bits=0, pht_bits=1)
        assert report.conflict_rate > 0.9
        assert report.conflict_misprediction_rate > 0.5

    def test_occupancy_bounds(self):
        trace = trace_from_outcomes([True] * 100)
        report = measure_gshare_interference(trace, 4, 8)
        assert 0.0 < report.occupancy <= 1.0
        assert report.occupied_entries <= report.pht_size

    def test_misprediction_split_matches_gshare(self):
        """Total mispredictions must equal the plain gshare simulation."""
        rng = random.Random(41)
        trace = interleave(
            {pc: [rng.random() < 0.7 for _ in range(100)] for pc in range(0, 40, 4)}
        )
        report = measure_gshare_interference(trace, 8, 10)
        gshare_misses = int((~GsharePredictor(8, 10).simulate(trace)).sum())
        assert (
            report.conflict_mispredictions + report.private_mispredictions
            == gshare_misses
        )

    def test_parameter_validation(self):
        trace = trace_from_outcomes([True])
        with pytest.raises(ValueError):
            measure_gshare_interference(trace, history_bits=-1)
        with pytest.raises(ValueError):
            measure_gshare_interference(trace, pht_bits=0)

    def test_empty_trace(self):
        report = measure_gshare_interference(Trace.empty(), 4, 6)
        assert report.conflict_rate == 0.0
        assert report.private_misprediction_rate == 0.0

    def test_conflicts_mispredict_more_on_suite(self, small_gcc_trace):
        report = measure_gshare_interference(small_gcc_trace, 16, 16)
        assert report.conflict_accesses > 0
        assert (
            report.conflict_misprediction_rate
            > report.private_misprediction_rate
        )
