"""End-to-end tests for config sweeps (api.run_sweep, ``repro sweep``).

The acceptance story: a two-point sweep over gshare history length
writes one manifest per point whose spec digests differ exactly in the
swept field, shares every artefact the axis does not touch through one
cache (the hit counters prove it), and -- killed mid-flight with
SIGTERM -- finishes under ``--resume`` with manifests that diff clean
against an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.api import run_spec, run_sweep, SweepRun
from repro.cli import main
from repro.obs.manifest import diff_manifests, read_manifest
from repro.spec import EngineOptions, RunSpec, SweepSpec, WorkloadSpec

REPO_DIR = Path(__file__).parent.parent

BENCHMARKS = ("gcc", "compress")


def sweep_spec(cache_dir, max_length=2000, journal=None, resume=False):
    return RunSpec(
        experiments=("fig9",),
        workload=WorkloadSpec(
            max_length=max_length, seed=7, benchmarks=BENCHMARKS
        ),
        engine=EngineOptions(
            jobs=1,
            cache_dir=str(cache_dir),
            journal=journal,
            resume=resume,
        ),
        sweep=SweepSpec(axes=(("gshare_history_bits", (8, 12)),)),
    )


class TestRunSweepApi:
    @pytest.fixture(scope="class")
    def sweep(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("sweep")
        run = run_spec(
            sweep_spec(tmp_path / "cache"),
            manifest_dir=str(tmp_path / "manifests"),
        )
        return tmp_path, run

    def test_returns_a_clean_sweep_run(self, sweep):
        _, run = sweep
        assert isinstance(run, SweepRun)
        assert run.ok
        assert len(run.points) == 2
        assert [point.coords for point in run.points] == [
            {"gshare_history_bits": 8},
            {"gshare_history_bits": 12},
        ]

    def test_manifests_written_per_point(self, sweep):
        tmp_path, run = sweep
        for point in run.points:
            assert point.manifest_path is not None
            manifest = read_manifest(point.manifest_path)
            assert manifest["spec_digest"] == point.spec.digest()
            assert manifest["sweep"] == point.coords

    def test_digests_differ_exactly_in_the_swept_field(self, sweep):
        _, run = sweep
        first = read_manifest(run.points[0].manifest_path)
        second = read_manifest(run.points[1].manifest_path)
        assert first["spec_digest"] != second["spec_digest"]
        differing = {
            name
            for name in first["config"]
            if first["config"][name] != second["config"][name]
        }
        assert differing == {"gshare_history_bits"}
        # Same traces everywhere: the workload is not swept.
        assert first["traces"] == second["traces"]

    def test_cache_hits_prove_cross_point_sharing(self, sweep):
        _, run = sweep
        first = read_manifest(run.points[0].manifest_path)["cache"]
        second = read_manifest(run.points[1].manifest_path)["cache"]
        # Point 0 populates the cache from scratch...
        assert first["trace_misses"] == len(BENCHMARKS)
        # ...and point 1 reuses every trace and the pas bitmaps (the
        # axis only resizes gshare).
        assert second["trace_hits"] == len(BENCHMARKS)
        assert second["trace_misses"] == 0
        assert second["result_hits"] >= len(BENCHMARKS)

    def test_summary_json(self, sweep):
        tmp_path, run = sweep
        assert run.summary_path == str(
            tmp_path / "manifests" / "sweep_summary.json"
        )
        payload = json.loads(Path(run.summary_path).read_text())
        assert payload["kind"] == "repro.sweep_summary"
        assert payload["spec_digest"] == run.spec.digest()
        assert payload["axes"] == {"gshare_history_bits": [8, 12]}
        assert len(payload["points"]) == 2
        for entry, point in zip(payload["points"], run.points):
            assert entry["spec_digest"] == point.spec.digest()
            assert entry["manifest"] == point.manifest_path
            assert entry["failures"] == 0

    def test_summary_table_lists_every_point(self, sweep):
        _, run = sweep
        assert "gshare_history_bits=8" in run.summary
        assert "gshare_history_bits=12" in run.summary

    def test_run_sweep_requires_a_sweep(self, tmp_path):
        plain = RunSpec(experiments=("table1",))
        with pytest.raises(ValueError, match="sweep"):
            run_sweep(plain)


class TestSweepCli:
    def test_axis_flags_build_and_run_a_sweep(self, tmp_path, capsys):
        spec_path = tmp_path / "base.json"
        # Start from a spec file for the benchmark subset; the --axis
        # flag supplies the grid.
        RunSpec(
            experiments=("fig9",),
            workload=WorkloadSpec(
                max_length=1500, seed=7, benchmarks=BENCHMARKS
            ),
        ).to_file(str(spec_path))
        manifest_dir = tmp_path / "points"
        assert main(
            [
                "sweep", str(spec_path),
                "--axis", "gshare_history_bits=8,12",
                "--manifest-dir", str(manifest_dir),
                "--cache-dir", str(tmp_path / "cache"),
                "--journal", str(tmp_path / "sweep.journal"),
                "--jobs", "1",
            ]
        ) == 0
        names = sorted(p.name for p in manifest_dir.iterdir())
        assert names == [
            "manifest_p0_gshare_history_bits-8.json",
            "manifest_p1_gshare_history_bits-12.json",
            "sweep_summary.json",
        ]
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "deduped across points" in out

    def test_no_axis_is_a_usage_error(self, capsys):
        assert main(["sweep", "--experiments", "fig9"]) == 2
        assert "nothing to sweep" in capsys.readouterr().err

    def test_malformed_axis_is_a_usage_error(self, capsys):
        assert main(
            ["sweep", "--experiments", "fig9", "--axis", "gshare_history_bits"]
        ) == 2
        assert "--axis" in capsys.readouterr().err

    def test_unknown_axis_field_is_a_usage_error(self, capsys):
        assert main(
            ["sweep", "--experiments", "fig9", "--axis", "warp=1,2"]
        ) == 2
        assert "LabConfig" in capsys.readouterr().err


def _sweep_argv(spec_path, manifest_dir, cache_dir, journal):
    return [
        sys.executable, "-m", "repro", "sweep", str(spec_path),
        "--manifest-dir", str(manifest_dir),
        "--cache-dir", str(cache_dir),
        "--journal", str(journal),
        "--jobs", "1",
    ]


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_DIR / "src")
    env.pop("REPRO_CACHE_DIR", None)
    env.pop("REPRO_FAULT_SPEC", None)
    return env


class TestSweepSigtermResume:
    def test_killed_sweep_resumes_to_identical_manifests(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        # Large enough that the second point runs for a few hundred
        # milliseconds -- the window the SIGTERM must land in.
        sweep_spec(
            tmp_path / "cache-victim", max_length=800_000
        ).to_file(str(spec_path))
        env = _subprocess_env()

        # Reference: the same sweep, uninterrupted (own cache+journal).
        reference_dir = tmp_path / "reference"
        reference = subprocess.run(
            _sweep_argv(
                spec_path,
                reference_dir,
                tmp_path / "cache-reference",
                tmp_path / "reference.journal",
            ),
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
            timeout=600,
        )
        assert reference.returncode == 0, reference.stderr

        # Victim: SIGTERM the moment the second point announces itself
        # (point 0 is then journaled and point 1 is in flight).
        victim_dir = tmp_path / "victim"
        journal = tmp_path / "victim.journal"
        argv = _sweep_argv(
            spec_path, victim_dir, tmp_path / "cache-victim", journal
        )
        victim = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, bufsize=1, env=env, cwd=str(tmp_path),
        )
        lines = []
        point2_started = threading.Event()

        def watch():
            for line in victim.stdout:
                lines.append(line)
                if line.startswith("=== point 2/2"):
                    point2_started.set()
            point2_started.set()  # EOF: unblock the waiter regardless

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        try:
            assert point2_started.wait(timeout=600)
            if victim.poll() is None:
                victim.send_signal(signal.SIGTERM)
            victim.wait(timeout=600)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()
        watcher.join(timeout=60)
        output = "".join(lines)
        # 130 when the run converted SIGTERM into a clean unwind; a raw
        # -SIGTERM only if the signal landed outside the run window.
        assert victim.returncode in (130, -signal.SIGTERM), output
        assert journal.is_file(), "journal must survive the kill"
        assert not any(victim_dir.glob("manifest_p1_*.json"))

        resumed = subprocess.run(
            argv + ["--resume"],
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
            timeout=600,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "replayed from journal" in resumed.stdout

        reference_names = sorted(
            path.name for path in reference_dir.iterdir()
        )
        assert sorted(path.name for path in victim_dir.iterdir()) == (
            reference_names
        )
        for name in reference_names:
            if not name.startswith("manifest_"):
                continue
            differences = diff_manifests(
                read_manifest(str(reference_dir / name)),
                read_manifest(str(victim_dir / name)),
            )
            assert differences == [], f"{name}: {differences}"
