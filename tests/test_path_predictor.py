"""Tests for the Nair-style path-based predictor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.predictors.base import simulate
from repro.predictors.path import PathBasedPredictor

from conftest import trace_from_outcomes, trace_from_steps


class TestPathBasedPredictor:
    def test_learns_biased_branch(self):
        trace = trace_from_outcomes([True] * 400)
        assert PathBasedPredictor().accuracy(trace) > 0.99

    def test_learns_path_determined_branch(self):
        # Branch C's outcome equals whether control came through A-taken
        # or A-not-taken; the path register distinguishes the two paths
        # even though C's own history is unpredictable.
        import random

        rng = random.Random(11)
        steps = []
        for _ in range(400):
            a_taken = rng.random() < 0.5
            steps.append((0x100, 0x200, a_taken))
            steps.append((0x300, 0x400, a_taken))  # determined by the path
        trace = trace_from_steps(steps)
        correct = PathBasedPredictor(depth=4, bits_per_address=4).simulate(trace)
        c_indices = trace.indices_by_pc()[0x300]
        assert correct[c_indices][20:].mean() > 0.95

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PathBasedPredictor(depth=0)
        with pytest.raises(ValueError):
            PathBasedPredictor(bits_per_address=0)

    def test_fast_path_matches_generic_loop(self, small_benchmark_trace):
        trace = small_benchmark_trace[:1500]
        fast = PathBasedPredictor().simulate(trace)
        slow = simulate(PathBasedPredictor(), trace)
        assert np.array_equal(fast, slow)

    @settings(max_examples=20)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 255),
                st.integers(0, 255),
                st.booleans(),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_property_fast_path_equals_slow_path(self, raw_steps):
        steps = [(pc * 4, target * 4, taken) for pc, target, taken in raw_steps]
        trace = trace_from_steps(steps)
        fast = PathBasedPredictor(depth=3, bits_per_address=3, pht_bits=8).simulate(trace)
        slow = simulate(
            PathBasedPredictor(depth=3, bits_per_address=3, pht_bits=8), trace
        )
        assert np.array_equal(fast, slow)
