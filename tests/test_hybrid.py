"""Tests for chooser hybrids and the oracle combiner."""

import numpy as np
import pytest

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.hybrid import ChooserHybrid, OracleCombiner
from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
)
from repro.predictors.twolevel import GsharePredictor, PAsPredictor

from conftest import interleave, trace_from_outcomes


class TestChooserHybrid:
    def test_learns_to_pick_the_right_component(self):
        # Branch 1 always taken, branch 2 always not-taken; with
        # always-taken / always-not-taken components the chooser must
        # route each branch to the right side.
        trace = interleave({0x100: [True] * 300, 0x200: [False] * 300})
        hybrid = ChooserHybrid(
            AlwaysTakenPredictor(), AlwaysNotTakenPredictor(), chooser_bits=8
        )
        assert hybrid.accuracy(trace) > 0.97

    def test_beats_both_components_on_mixed_workload(self):
        import random

        rng = random.Random(13)
        # A local-pattern branch and a biased branch whose noise pollutes
        # global history.
        periodic = [True, True, False] * 200
        noisy = [rng.random() < 0.5 for _ in range(600)]
        trace = interleave({0x100: periodic, 0x200: noisy})
        a = GsharePredictor(6, 8)
        b = PAsPredictor(4, 8)
        hybrid = ChooserHybrid(GsharePredictor(6, 8), PAsPredictor(4, 8))
        hybrid_accuracy = hybrid.accuracy(trace)
        assert hybrid_accuracy >= max(a.accuracy(trace), b.accuracy(trace)) - 0.02

    def test_name_mentions_components(self):
        hybrid = ChooserHybrid(BimodalPredictor(4), GsharePredictor(4, 4))
        assert "bimodal" in hybrid.name and "gshare" in hybrid.name


class TestOracleCombiner:
    def test_uses_alternative_only_where_strictly_better(self):
        trace = interleave({1: [True] * 4, 2: [True] * 4})
        primary = np.array([True, False] * 4)
        alternative = np.array([True] * 8)
        idx1 = trace.indices_by_pc()[1]
        combined = OracleCombiner.combine(trace, primary, alternative)
        assert combined[idx1].all()

    def test_keeps_primary_on_ties(self):
        trace = interleave({1: [True] * 4})
        primary = np.array([True, True, False, False])
        alternative = np.array([False, False, True, True])
        combined = OracleCombiner.combine(trace, primary, alternative)
        assert np.array_equal(combined, primary)

    def test_never_worse_than_primary(self):
        import random

        rng = random.Random(17)
        trace = interleave(
            {pc: [rng.random() < 0.5 for _ in range(50)] for pc in range(8)}
        )
        primary = np.array([rng.random() < 0.7 for _ in range(len(trace))])
        alternative = np.array([rng.random() < 0.7 for _ in range(len(trace))])
        combined = OracleCombiner.combine(trace, primary, alternative)
        assert combined.sum() >= primary.sum()

    def test_misaligned_bitmaps_rejected(self):
        trace = interleave({1: [True] * 4})
        with pytest.raises(ValueError):
            OracleCombiner.combine(trace, np.ones(3, bool), np.ones(4, bool))

    def test_combine_with_mask_uses_membership_not_accuracy(self):
        trace = interleave({1: [True] * 4, 2: [True] * 4})
        primary = np.ones(8, dtype=bool)
        alternative = np.zeros(8, dtype=bool)
        combined = OracleCombiner.combine_with_mask(
            trace, primary, alternative, use_alternative={1}
        )
        idx1 = trace.indices_by_pc()[1]
        idx2 = trace.indices_by_pc()[2]
        # Branch 1 is forced onto the (worse) alternative; branch 2 stays.
        assert not combined[idx1].any()
        assert combined[idx2].all()
