"""Chunked-fold bit-identity: streaming must never change a prediction.

The streaming subsystem's whole correctness story is one property: for
every windowable predictor, folding a trace window by window through a
single instance produces exactly the bitmap a whole-trace ``simulate()``
would.  These tests sweep that property across every registered kernel,
with split points driven across (and off-by-one around) real ``BPT2``
chunk edges, plus the count-exactness of the dedicated streaming folds
for the whole-run baselines.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.streamed import (
    CHUNKABLE_TASKS,
    STREAMABLE_TASKS,
    chunked_bitmap,
    fixed_best_count,
    ideal_static_count,
    stream_report,
    task_predictor,
)
from repro.check.contracts import _prepare
from repro.sim.fold import fold_correct_count, fold_simulate
from repro.tools import PREDICTOR_REGISTRY
from repro.trace.stream import TraceStream, write_trace_chunked

from conftest import trace_from_steps

#: Registry predictors that participate in window folds (the two
#: oracle-replay predictors opt out via ``windowable = False``).
WINDOWABLE = sorted(
    name
    for name, factory in PREDICTOR_REGISTRY.items()
    if getattr(factory(), "windowable", True)
)


@pytest.fixture(scope="module")
def fold_trace(small_benchmark_trace):
    """A structurally-rich trace sized for per-kernel window sweeps."""
    return small_benchmark_trace[:2000]


class TestEveryRegisteredKernel:
    def test_oracle_replay_predictors_are_excluded(self):
        assert "selective" not in WINDOWABLE
        assert "ideal-static" not in WINDOWABLE
        assert "gshare" in WINDOWABLE and "egskew" in WINDOWABLE

    @pytest.mark.parametrize("name", WINDOWABLE)
    def test_fold_matches_whole_trace_across_chunk_edges(
        self, tmp_path, fold_trace, name
    ):
        factory = PREDICTOR_REGISTRY[name]
        reference = np.asarray(
            _prepare(factory(), fold_trace).simulate(fold_trace), dtype=bool
        )
        path = tmp_path / "fold.bpt"
        write_trace_chunked(fold_trace, path, chunk_branches=504)
        stream = TraceStream.open(path)
        folded = fold_simulate(
            _prepare(factory(), fold_trace), stream.chunks()
        )
        np.testing.assert_array_equal(np.asarray(folded, dtype=bool), reference)
        # Split points ON and AROUND every chunk edge: predictor state
        # carried across an edge must not shift any later prediction.
        edges = [start for start, _ in stream.spans()[1:]]
        splits = sorted(
            {edge + delta for edge in edges for delta in (-1, 0, 1)}
            & set(range(1, len(fold_trace)))
        )
        for split in splits:
            instance = _prepare(factory(), fold_trace)
            bitmap = np.concatenate([
                np.asarray(instance.simulate(fold_trace[:split]), dtype=bool),
                np.asarray(instance.simulate(fold_trace[split:]), dtype=bool),
            ])
            np.testing.assert_array_equal(bitmap, reference)


@settings(max_examples=25, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.sampled_from([0x100, 0x104, 0x108, 0x10C]),
            st.just(0x80),
            st.booleans(),
        ),
        min_size=2,
        max_size=120,
    ),
    chunk_branches=st.integers(min_value=1, max_value=64),
    name=st.sampled_from(WINDOWABLE),
)
def test_property_random_trace_random_window(steps, chunk_branches, name):
    trace = trace_from_steps(steps)
    factory = PREDICTOR_REGISTRY[name]
    reference = np.asarray(
        _prepare(factory(), trace).simulate(trace), dtype=bool
    )
    stream = TraceStream.from_trace(trace, chunk_branches=chunk_branches)
    folded = fold_simulate(_prepare(factory(), trace), stream.chunks())
    np.testing.assert_array_equal(np.asarray(folded, dtype=bool), reference)


class TestStreamedTaskFolds:
    def test_chunked_bitmap_matches_compute_task(self, fold_trace):
        from repro.analysis.parallel import compute_task

        stream = TraceStream.from_trace(fold_trace, chunk_branches=256)
        for task in CHUNKABLE_TASKS:
            reference = np.asarray(
                compute_task(fold_trace, DEFAULT_CONFIG, task), dtype=bool
            )
            folded = chunked_bitmap(stream, DEFAULT_CONFIG, task)
            np.testing.assert_array_equal(
                np.asarray(folded, dtype=bool), reference
            )

    def test_fold_correct_count_matches_bitmap_sum(self, fold_trace):
        stream = TraceStream.from_trace(fold_trace, chunk_branches=256)
        for task in CHUNKABLE_TASKS:
            reference = chunked_bitmap(stream, DEFAULT_CONFIG, task)
            correct, total = fold_correct_count(
                task_predictor(DEFAULT_CONFIG, task), stream.chunks()
            )
            assert total == len(fold_trace)
            assert correct == int(np.count_nonzero(reference))

    def test_ideal_static_count_is_window_invariant(self, fold_trace):
        from repro.trace.stats import ideal_static_correct

        reference = int(np.count_nonzero(ideal_static_correct(fold_trace)))
        for chunk in (8, 104, 520):
            stream = TraceStream.from_trace(fold_trace, chunk_branches=chunk)
            assert ideal_static_count(stream.chunks()) == (
                reference, len(fold_trace)
            )

    def test_fixed_best_count_is_window_invariant(self, fold_trace):
        whole = fixed_best_count([fold_trace])
        for chunk in (8, 104, 520):
            stream = TraceStream.from_trace(fold_trace, chunk_branches=chunk)
            assert fixed_best_count(stream.chunks()) == whole

    def test_stream_report_covers_all_streamable_tasks(self, fold_trace):
        stream = TraceStream.from_trace(fold_trace, chunk_branches=256)
        report = stream_report(stream, DEFAULT_CONFIG)
        assert set(report) == set(STREAMABLE_TASKS)
        for entry in report.values():
            assert entry["total"] == len(fold_trace)
            assert 0.0 < entry["accuracy"] <= 1.0

    def test_stream_report_rejects_unknown_task(self, fold_trace):
        stream = TraceStream.from_trace(fold_trace, chunk_branches=256)
        with pytest.raises(ValueError, match="not streamable"):
            stream_report(stream, DEFAULT_CONFIG, tasks=("correlation",))
