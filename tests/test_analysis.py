"""Tests for the analysis layer: accuracy accounting, percentiles, Lab."""

import numpy as np
import pytest

from repro.analysis.accuracy import (
    accuracy_by_branch,
    correct_counts_by_branch,
    dynamic_weighted_fraction,
    misprediction_reduction,
)
from repro.analysis.config import LabConfig
from repro.analysis.percentile import percentile_difference_curve
from repro.analysis.runner import Lab

from conftest import interleave, trace_from_string


class TestAccuracyByBranch:
    def test_per_branch_grouping(self):
        trace = interleave({1: [True] * 4, 2: [False] * 4})
        correct = np.array([True, False] * 4)
        by_branch = accuracy_by_branch(trace, correct)
        assert by_branch[1] == pytest.approx(1.0)
        assert by_branch[2] == pytest.approx(0.0)

    def test_misaligned_rejected(self):
        trace = trace_from_string("TNT")
        with pytest.raises(ValueError):
            accuracy_by_branch(trace, np.ones(2, dtype=bool))

    def test_counts(self):
        trace = interleave({1: [True] * 4})
        counts = correct_counts_by_branch(trace, np.array([True, True, False, True]))
        assert counts == {1: 3}


class TestDynamicWeightedFraction:
    def test_weighting(self):
        trace = interleave({1: [True] * 9, 2: [False]})
        assert dynamic_weighted_fraction(trace, [1]) == pytest.approx(0.9)
        assert dynamic_weighted_fraction(trace, [2]) == pytest.approx(0.1)
        assert dynamic_weighted_fraction(trace, [1, 2]) == pytest.approx(1.0)

    def test_unknown_branches_ignored(self):
        trace = interleave({1: [True] * 4})
        assert dynamic_weighted_fraction(trace, [99]) == 0.0


class TestMispredictionReduction:
    def test_half_of_mispredictions_removed(self):
        assert misprediction_reduction(0.9, 0.95) == pytest.approx(0.5)

    def test_perfect_baseline(self):
        assert misprediction_reduction(1.0, 1.0) == 0.0

    def test_regression_is_negative(self):
        assert misprediction_reduction(0.9, 0.85) == pytest.approx(-0.5)


class TestPercentileCurve:
    def test_identical_predictors_flat_curve(self):
        trace = interleave({1: [True] * 10, 2: [False] * 10})
        bitmap = np.ones(20, dtype=bool)
        curve = percentile_difference_curve(trace, bitmap, bitmap)
        assert np.allclose(curve.differences, 0.0)

    def test_signs_of_tails(self):
        trace = interleave({1: [True] * 10, 2: [True] * 10})
        a = np.zeros(20, dtype=bool)
        b = np.zeros(20, dtype=bool)
        idx1 = trace.indices_by_pc()[1]
        idx2 = trace.indices_by_pc()[2]
        a[idx1] = True   # A wins branch 1
        b[idx2] = True   # B wins branch 2
        curve = percentile_difference_curve(trace, a, b)
        assert curve.tail(0) == pytest.approx(-100.0)
        assert curve.tail(100) == pytest.approx(100.0)
        assert curve.area_a_better() > 0
        assert curve.area_b_better() > 0

    def test_dynamic_weighting(self):
        # Branch 1 is 9x hotter: its difference dominates the curve.
        trace = interleave({1: [True] * 18, 2: [True, True]})
        a = np.ones(20, dtype=bool)
        b = np.zeros(20, dtype=bool)
        idx2 = trace.indices_by_pc()[2]
        b[idx2] = True  # tie on branch 2, A wins branch 1
        curve = percentile_difference_curve(trace, a, b)
        assert curve.tail(50) == pytest.approx(100.0)

    def test_misaligned_rejected(self):
        trace = trace_from_string("TT")
        with pytest.raises(ValueError):
            percentile_difference_curve(trace, np.ones(2, bool), np.ones(3, bool))


class TestLab:
    @pytest.fixture(scope="class")
    def lab(self, request):
        from repro.workloads.suite import load_benchmark

        return Lab(load_benchmark("compress", length=6000, run_seed=11))

    def test_correct_is_memoised(self, lab):
        assert lab.correct("gshare") is lab.correct("gshare")

    def test_unknown_predictor_rejected(self, lab):
        with pytest.raises(KeyError, match="unknown predictor"):
            lab.correct("tage")

    def test_all_named_predictors_run(self, lab):
        for name in lab.available_predictors():
            bitmap = lab.correct(name)
            assert len(bitmap) == len(lab.trace)
            assert 0.3 < bitmap.mean() <= 1.0, name

    def test_accuracy_matches_bitmap(self, lab):
        assert lab.accuracy("pas") == pytest.approx(
            float(lab.correct("pas").mean())
        )

    def test_selective_correct_is_memoised(self, lab):
        assert lab.selective_correct(1) is lab.selective_correct(1)

    def test_invalidate_drops_only_the_memo(self):
        from repro.workloads.suite import load_benchmark

        fresh = Lab(load_benchmark("compress", length=6000, run_seed=11))
        assert not fresh.invalidate("loop")  # nothing memoised yet
        before = fresh.correct("loop")
        assert fresh.is_primed("loop")
        assert fresh.invalidate("loop")
        assert not fresh.is_primed("loop")
        assert np.array_equal(fresh.correct("loop"), before)
        fresh.correlation_data()
        assert fresh.invalidate("correlation")
        assert not fresh.is_primed("correlation")

    def test_selections_shared_across_counts(self, lab):
        one = lab.selections(1)
        assert set(one) == set(int(pc) for pc in lab.trace.static_pcs())

    def test_stats_cached(self, lab):
        assert lab.stats is lab.stats

    def test_config_override(self):
        from repro.workloads.suite import load_benchmark

        trace = load_benchmark("compress", length=4000, run_seed=11)
        lab = Lab(trace, LabConfig(gshare_history_bits=4, gshare_pht_bits=6))
        assert len(lab.correct("gshare")) == len(trace)


class TestLabSelectiveWindows:
    @pytest.fixture(scope="class")
    def lab(self):
        from repro.workloads.suite import load_benchmark

        return Lab(load_benchmark("gcc", length=4000, run_seed=11))

    def test_windows_cached_separately(self, lab):
        narrow = lab.selective_correct(3, window=8)
        wide = lab.selective_correct(3, window=16)
        assert narrow is lab.selective_correct(3, window=8)
        assert wide is lab.selective_correct(3, window=16)
        assert narrow is not wide

    def test_selections_keyed_by_window(self, lab):
        assert lab.selections(1, window=8) is lab.selections(1, window=8)
        # Different windows may produce different selections objects.
        assert lab.selections(1, window=8) is not lab.selections(1, window=16)

    def test_default_window_is_config(self, lab):
        default = lab.selective_correct(2)
        explicit = lab.selective_correct(2, window=lab.config.selective_window)
        assert default is explicit

    def test_correlation_data_collected_once(self, lab):
        assert lab.correlation_data() is lab.correlation_data()
        assert lab.correlation_data().window == lab.config.collection_window
