"""Global-history kernel equivalence tests (:mod:`repro.sim.kernels_global`).

The two-level family (gshare/GAs/PAs/GAg/PAg) and the selective-history
replay override ``simulate()`` with whole-trace vectorised kernels.  The
kernels must be *bit-identical* to the generic scalar predict-then-update
loop -- from a fresh state, from a carried (mid-trace) state including the
written-back PHT/BHT/history registers, on every suite workload, on random
traces, and across hypothesis-driven random history/PHT/counter widths.

The batched oracle scorer (:mod:`repro.correlation.selection`) is pinned
the same way: a direct scalar re-derivation through the public
``single_tag_score`` / ``joint_ideal_accuracy`` scoring functions must
reproduce ``select_for_trace`` exactly (same tags, float-equal scores).
"""

from __future__ import annotations

from itertools import combinations
from typing import Tuple

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.correlation.selection import (
    Selection,
    SelectionConfig,
    joint_ideal_accuracy,
    select_for_trace,
    single_tag_score,
)
from repro.correlation.tagging import (
    TAG_BACKWARD,
    TAG_OCCURRENCE,
    collect_correlation_data,
)
from repro.predictors.base import simulate as generic_simulate
from repro.predictors.selective import SelectiveHistoryPredictor
from repro.predictors.twolevel import (
    GAgPredictor,
    GAsPredictor,
    GsharePredictor,
    PAgPredictor,
    PAsPredictor,
)
from repro.trace.trace import Trace
from repro.workloads.suite import BENCHMARK_NAMES, load_benchmark

from conftest import trace_from_string

#: Every global-history kernelised predictor, as (label, zero-arg factory).
KERNEL_FACTORIES = [
    ("gshare-8h", lambda: GsharePredictor(history_bits=8)),
    ("gshare-12h", lambda: GsharePredictor(history_bits=12)),
    ("gshare-0h", lambda: GsharePredictor(history_bits=0, pht_bits=4)),
    ("gshare-1bit", lambda: GsharePredictor(history_bits=6, counter_bits=1)),
    ("gshare-3bit", lambda: GsharePredictor(history_bits=6, counter_bits=3)),
    ("gshare-wide-pht", lambda: GsharePredictor(history_bits=4, pht_bits=10)),
    ("gas", lambda: GAsPredictor(history_bits=8, pht_select_bits=3)),
    ("gas-0s", lambda: GAsPredictor(history_bits=8, pht_select_bits=0)),
    ("gag", lambda: GAgPredictor(history_bits=10)),
    ("pas", lambda: PAsPredictor(history_bits=6, bht_bits=6, pht_select_bits=3)),
    ("pas-aliased", lambda: PAsPredictor(history_bits=4, bht_bits=2)),
    ("pag", lambda: PAgPredictor(history_bits=8, bht_bits=8)),
]

FACTORY_IDS = [label for label, _ in KERNEL_FACTORIES]
FACTORIES = [factory for _, factory in KERNEL_FACTORIES]


def random_trace(seed: int, n: int, num_branches: int, bias: float) -> Trace:
    rng = np.random.default_rng(seed)
    pcs = rng.integers(0, num_branches, n).astype(np.uint64) * np.uint64(4)
    pcs += np.uint64(0x1000)
    return Trace(pcs, pcs + np.uint64(16), rng.random(n) < bias)


@pytest.fixture(scope="module")
def suite_traces():
    return {name: load_benchmark(name, length=2500) for name in BENCHMARK_NAMES}


class TestGlobalKernelEquivalence:
    @pytest.mark.parametrize("factory", FACTORIES, ids=FACTORY_IDS)
    def test_all_suite_workloads(self, factory, suite_traces):
        for name, trace in suite_traces.items():
            fast = factory().simulate(trace)
            reference = generic_simulate(factory(), trace)
            assert np.array_equal(fast, reference), name

    @pytest.mark.parametrize("factory", FACTORIES, ids=FACTORY_IDS)
    def test_random_traces(self, factory):
        for seed in range(6):
            trace = random_trace(
                seed, n=400 + 137 * seed, num_branches=1 + 13 * seed,
                bias=(0.1, 0.5, 0.85, 0.97, 0.5, 0.3)[seed],
            )
            fast = factory().simulate(trace)
            reference = generic_simulate(factory(), trace)
            assert np.array_equal(fast, reference), seed

    @pytest.mark.parametrize("factory", FACTORIES, ids=FACTORY_IDS)
    def test_chained_simulate_carries_state(self, factory):
        """Two kernel calls must train across the split like one scalar run."""
        trace = load_benchmark("compress", length=3000)
        half = len(trace) // 2
        first, second = trace[:half], trace[half:]
        predictor = factory()
        fast = np.concatenate(
            [predictor.simulate(first), predictor.simulate(second)]
        )
        reference = generic_simulate(factory(), trace)
        assert np.array_equal(fast, reference)

    @pytest.mark.parametrize("factory", FACTORIES, ids=FACTORY_IDS)
    def test_edge_traces(self, factory):
        for spec in ("", "T", "N", "TN", "TTTN" * 12, "T" * 40, "NT" * 17):
            trace = trace_from_string(spec)
            fast = factory().simulate(trace)
            reference = generic_simulate(factory(), trace)
            assert np.array_equal(fast, reference), spec

    @settings(max_examples=40, deadline=None)
    @given(
        outcomes=st.lists(st.booleans(), max_size=120),
        pcs=st.lists(st.integers(0, 6), max_size=120),
        which=st.integers(0, len(KERNEL_FACTORIES) - 1),
    )
    def test_hypothesis_random(self, outcomes, pcs, which):
        n = min(len(outcomes), len(pcs))
        trace = Trace(
            np.asarray([0x400 + 4 * p for p in pcs[:n]], dtype=np.uint64),
            np.full(n, 0x80, dtype=np.uint64),
            np.asarray(outcomes[:n], dtype=bool),
        )
        factory = FACTORIES[which]
        fast = factory().simulate(trace)
        reference = generic_simulate(factory(), trace)
        assert np.array_equal(fast, reference)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        history_bits=st.integers(0, 9),
        size_bits=st.integers(1, 8),
        select_bits=st.integers(0, 4),
        counter_bits=st.integers(1, 4),
        family=st.integers(0, 4),
    )
    def test_hypothesis_random_widths(
        self, seed, history_bits, size_bits, select_bits, counter_bits, family
    ):
        """Kernel == scalar across random history/PHT/counter geometries."""
        if family == 0:
            factory = lambda: GsharePredictor(
                history_bits, pht_bits=size_bits, counter_bits=counter_bits
            )
        elif family == 1:
            factory = lambda: GAsPredictor(
                history_bits, pht_select_bits=select_bits,
                counter_bits=counter_bits,
            )
        elif family == 2:
            factory = lambda: PAsPredictor(
                history_bits, bht_bits=size_bits,
                pht_select_bits=select_bits, counter_bits=counter_bits,
            )
        elif family == 3:
            factory = lambda: GAgPredictor(
                history_bits, counter_bits=counter_bits
            )
        else:
            factory = lambda: PAgPredictor(
                history_bits, bht_bits=size_bits, counter_bits=counter_bits
            )
        trace = random_trace(seed, n=300, num_branches=11, bias=0.6)
        fast = factory().simulate(trace)
        reference = generic_simulate(factory(), trace)
        assert np.array_equal(fast, reference)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        split=st.integers(0, 300),
        which=st.integers(0, len(KERNEL_FACTORIES) - 1),
    )
    def test_hypothesis_chained_splits(self, seed, split, which):
        """Carried state is exact at every possible split point."""
        trace = random_trace(seed, n=300, num_branches=7, bias=0.55)
        factory = FACTORIES[which]
        predictor = factory()
        fast = np.concatenate(
            [predictor.simulate(trace[:split]), predictor.simulate(trace[split:])]
        )
        reference = generic_simulate(factory(), trace)
        assert np.array_equal(fast, reference)


class TestGlobalKernelStateWriteback:
    def test_gshare_pht_and_history_match_scalar(self):
        trace = load_benchmark("go", length=1500)
        kernel = GsharePredictor(history_bits=7)
        kernel.simulate(trace)
        scalar = GsharePredictor(history_bits=7)
        generic_simulate(scalar, trace)
        assert np.array_equal(kernel._pht, scalar._pht)
        assert kernel._history == scalar._history

    def test_gas_pht_and_history_match_scalar(self):
        trace = load_benchmark("gcc", length=1500)
        kernel = GAsPredictor(history_bits=6, pht_select_bits=3)
        kernel.simulate(trace)
        scalar = GAsPredictor(history_bits=6, pht_select_bits=3)
        generic_simulate(scalar, trace)
        assert np.array_equal(kernel._pht, scalar._pht)
        assert kernel._history == scalar._history

    def test_pas_pht_and_bht_match_scalar(self):
        trace = load_benchmark("perl", length=1500)
        kernel = PAsPredictor(history_bits=5, bht_bits=4, pht_select_bits=2)
        kernel.simulate(trace)
        scalar = PAsPredictor(history_bits=5, bht_bits=4, pht_select_bits=2)
        generic_simulate(scalar, trace)
        assert np.array_equal(kernel._pht, scalar._pht)
        assert np.array_equal(kernel._bht, scalar._bht)


class TestSelectiveKernelEquivalence:
    @pytest.mark.parametrize("count", [1, 2, 3])
    def test_kernel_matches_scalar_replay_and_online(self, count):
        trace = load_benchmark("gcc", length=3000)
        config = SelectionConfig(window=12)
        kernel = SelectiveHistoryPredictor(count, config).fit(trace)
        fast = kernel.simulate(trace)
        scalar = SelectiveHistoryPredictor(count, config).fit(trace)
        assert np.array_equal(fast, scalar._simulate_scalar(trace))
        online = SelectiveHistoryPredictor(count, config).fit(trace)
        assert np.array_equal(fast, generic_simulate(online, trace))


def _reference_select_for_branch(
    branch, count: int, config: SelectionConfig
) -> Selection:
    """The pre-batching oracle search, re-derived via the public scorers."""
    n = branch.num_instances()
    support_floor = max(
        config.min_support_absolute, int(config.min_support_fraction * n)
    )
    scored = []
    for tag in branch.tag_entries:
        if config.tag_kinds is not None and tag[0] not in config.tag_kinds:
            continue
        _indices, depths, _outcomes = branch.decode_tag(tag)
        if int((depths <= config.window).sum()) < support_floor:
            continue
        scored.append((tag, single_tag_score(branch, tag, config.window)))
    scored.sort(key=lambda item: (-item[1], item[0]))
    if not scored:
        outcomes = branch.outcomes
        rate = float(outcomes.mean()) if len(outcomes) else 0.0
        bias = max(rate, 1.0 - rate) if len(outcomes) else 0.0
        return Selection(tags=(), ideal_accuracy=bias)

    best_single = scored[0]
    if count == 1 or len(scored) == 1:
        return Selection(tags=(best_single[0],), ideal_accuracy=best_single[1])

    top = [tag for tag, _score in scored[: config.top_k]]
    vectors = {tag: branch.state_vector(tag, config.window) for tag in top}
    outcomes = branch.outcomes

    best_pair: Tuple = (best_single[0],)
    best_pair_score = best_single[1]
    for pair in combinations(top, 2):
        score = joint_ideal_accuracy([vectors[t] for t in pair], outcomes)
        if score > best_pair_score:
            best_pair_score = score
            best_pair = pair
    if count == 2 or len(best_pair) < 2:
        return Selection(tags=tuple(best_pair), ideal_accuracy=best_pair_score)

    best_triple = best_pair
    best_triple_score = best_pair_score
    pair_vectors = [vectors[t] for t in best_pair]
    for tag in top:
        if tag in best_pair:
            continue
        score = joint_ideal_accuracy(pair_vectors + [vectors[tag]], outcomes)
        if score > best_triple_score:
            best_triple_score = score
            best_triple = best_pair + (tag,)
    return Selection(tags=tuple(best_triple), ideal_accuracy=best_triple_score)


class TestBatchedOracleEquivalence:
    CONFIGS = [
        SelectionConfig(window=8),
        SelectionConfig(window=16, top_k=6),
        SelectionConfig(window=16, tag_kinds=(TAG_OCCURRENCE,)),
        SelectionConfig(window=12, tag_kinds=(TAG_BACKWARD,)),
        SelectionConfig(window=16, min_support_fraction=0.2),
    ]

    @pytest.mark.parametrize("workload", ["gcc", "go", "compress"])
    def test_pinned_to_scalar_reference(self, workload):
        """Batched selection is exactly the sequential search's output."""
        trace = load_benchmark(workload, length=3000)
        data = collect_correlation_data(trace, window=16)
        for config in self.CONFIGS:
            for count in (1, 2, 3):
                batched = select_for_trace(data, count, config)
                for pc, branch in data.branches.items():
                    expected = _reference_select_for_branch(
                        branch, count, config
                    )
                    got = batched[pc]
                    assert got.tags == expected.tags, (pc, count, config)
                    assert got.ideal_accuracy == expected.ideal_accuracy, (
                        pc, count, config,
                    )
