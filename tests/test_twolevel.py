"""Tests for the two-level predictor family (gshare, GAs, PAs)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.predictors.base import simulate
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.twolevel import GAsPredictor, GsharePredictor, PAsPredictor

from conftest import interleave, trace_from_outcomes, trace_from_string


def periodic_trace(period_pattern, repeats, pc=0x100):
    return trace_from_outcomes(list(period_pattern) * repeats, pc=pc)


class TestGshare:
    def test_learns_periodic_pattern(self):
        trace = periodic_trace([True, True, False], 200)
        accuracy = GsharePredictor(8, 10).accuracy(trace)
        assert accuracy > 0.97

    def test_learns_biased_branch(self):
        trace = trace_from_string("T" * 500)
        assert GsharePredictor(8, 10).accuracy(trace) > 0.99

    def test_zero_history_degenerates_to_bimodal(self):
        trace = periodic_trace([True, False], 100)
        gshare = GsharePredictor(history_bits=0, pht_bits=10)
        bimodal = BimodalPredictor(table_bits=10)
        assert np.array_equal(gshare.simulate(trace), bimodal.simulate(trace))

    def test_fast_path_matches_generic_loop(self, small_benchmark_trace):
        trace = small_benchmark_trace[:2000]
        fast = GsharePredictor(8, 10).simulate(trace)
        slow = simulate(GsharePredictor(8, 10), trace)
        assert np.array_equal(fast, slow)

    def test_invalid_history(self):
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=-1)

    def test_invalid_pht(self):
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=4, pht_bits=0)

    def test_name_mentions_configuration(self):
        assert GsharePredictor(10, 12).name == "gshare-10h-12p"

    @settings(max_examples=20)
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_property_fast_path_equals_slow_path(self, outcomes):
        trace = trace_from_outcomes(outcomes)
        fast = GsharePredictor(6, 8).simulate(trace)
        slow = simulate(GsharePredictor(6, 8), trace)
        assert np.array_equal(fast, slow)


class TestGAs:
    def test_learns_periodic_pattern(self):
        trace = periodic_trace([True, False, False], 200)
        assert GAsPredictor(8, 2).accuracy(trace) > 0.97

    def test_distinct_phts_per_address_group(self):
        # Two branches with identical histories but opposite outcomes:
        # separate PHTs (selected by address) keep them apart.
        trace = interleave({0x100: [True] * 200, 0x104: [False] * 200})
        assert GAsPredictor(6, 4).accuracy(trace) > 0.95

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GAsPredictor(history_bits=-2)
        with pytest.raises(ValueError):
            GAsPredictor(pht_select_bits=-1)


class TestPAs:
    def test_learns_local_pattern_with_interleaved_noise(self):
        # A periodic branch interleaved with a random one: per-address
        # history isolates the periodic branch (gshare would struggle).
        import random

        rng = random.Random(3)
        periodic = [True, True, False] * 300
        noise = [rng.random() < 0.5 for _ in range(900)]
        trace = interleave({0x100: periodic, 0x200: noise})
        pas = PAsPredictor(6, 10)
        correct = pas.simulate(trace)
        periodic_indices = trace.indices_by_pc()[0x100]
        assert correct[periodic_indices].mean() > 0.97

    def test_learns_alternating(self):
        trace = periodic_trace([True, False], 300)
        assert PAsPredictor(4, 8).accuracy(trace) > 0.97

    def test_bht_aliasing_is_modelled(self):
        # Two branches mapping to the same BHT entry share (and pollute)
        # one history register: a periodic branch paired with a noise
        # branch loses its position information under aliasing.
        import random

        rng = random.Random(5)
        periodic = [True, True, False] * 200
        noise = [rng.random() < 0.5 for _ in range(600)]
        trace = interleave({0x100: periodic, 0x104: noise})
        small = PAsPredictor(history_bits=4, bht_bits=0, pht_select_bits=0)
        big = PAsPredictor(history_bits=4, bht_bits=8, pht_select_bits=4)
        assert big.accuracy(trace) > small.accuracy(trace) + 0.03

    def test_fast_path_matches_generic_loop(self, small_benchmark_trace):
        trace = small_benchmark_trace[:2000]
        fast = PAsPredictor(6, 10).simulate(trace)
        slow = simulate(PAsPredictor(6, 10), trace)
        assert np.array_equal(fast, slow)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PAsPredictor(history_bits=-1)
        with pytest.raises(ValueError):
            PAsPredictor(bht_bits=-1)

    @settings(max_examples=20)
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_property_fast_path_equals_slow_path(self, outcomes):
        trace = trace_from_outcomes(outcomes)
        fast = PAsPredictor(5, 6).simulate(trace)
        slow = simulate(PAsPredictor(5, 6), trace)
        assert np.array_equal(fast, slow)


class TestBimodal:
    def test_learns_bias(self):
        trace = trace_from_string("T" * 100)
        assert BimodalPredictor(8).accuracy(trace) > 0.98

    def test_cannot_learn_alternation(self):
        # The classic 2-bit counter failure: strict alternation.
        trace = periodic_trace([True, False], 200)
        assert BimodalPredictor(8).accuracy(trace) < 0.75

    def test_invalid_table_bits(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_bits=-1)


class TestStatefulness:
    def test_simulate_continues_training(self):
        """Predictors are stateful: a second simulate over the same trace
        starts warm and must not be less accurate on a learnable pattern."""
        trace = periodic_trace([True, True, False], 80)
        predictor = GsharePredictor(6, 8)
        cold = predictor.simulate(trace).mean()
        warm = predictor.simulate(trace).mean()
        assert warm >= cold

    def test_fresh_instances_are_independent(self):
        trace = periodic_trace([True, False], 100)
        first = GsharePredictor(6, 8).simulate(trace)
        second = GsharePredictor(6, 8).simulate(trace)
        import numpy as np

        assert np.array_equal(first, second)
