"""Tests for trace statistics (Table 1 substrate, bias analyses)."""

import pytest
from hypothesis import given, strategies as st

from repro.trace.stats import (
    biased_fraction,
    compute_statistics,
    ideal_static_correct,
    per_branch_bias,
)
from repro.trace.trace import Trace

from conftest import interleave, trace_from_outcomes, trace_from_string


class TestPerBranchBias:
    def test_fully_biased(self):
        trace = trace_from_string("TTTT")
        assert per_branch_bias(trace) == {0x100: 1.0}

    def test_balanced(self):
        trace = trace_from_string("TNTN")
        assert per_branch_bias(trace)[0x100] == pytest.approx(0.5)

    def test_bias_is_majority_side(self):
        trace = trace_from_string("TNNN")
        assert per_branch_bias(trace)[0x100] == pytest.approx(0.75)

    def test_multiple_branches(self):
        trace = interleave({1: [True] * 4, 2: [False] * 3 + [True]})
        biases = per_branch_bias(trace)
        assert biases[1] == 1.0
        assert biases[2] == pytest.approx(0.75)


class TestIdealStatic:
    def test_perfect_on_constant_branch(self):
        trace = trace_from_string("TTTT")
        assert ideal_static_correct(trace).all()

    def test_majority_direction_wins(self):
        trace = trace_from_string("TTTN")
        correct = ideal_static_correct(trace)
        assert list(correct) == [True, True, True, False]

    def test_tie_counts_taken_side(self):
        trace = trace_from_string("TTNN")
        correct = ideal_static_correct(trace)
        # Tie resolves toward taken: the two taken outcomes are correct.
        assert correct.sum() == 2

    def test_independent_per_branch(self):
        trace = interleave({1: [True, True, False], 2: [False, False, True]})
        correct = ideal_static_correct(trace)
        assert correct.sum() == 4  # majority of each branch


class TestBiasedFraction:
    def test_all_biased(self):
        trace = trace_from_string("T" * 100)
        assert biased_fraction(trace) == 1.0

    def test_none_biased(self):
        trace = trace_from_string("TN" * 50)
        assert biased_fraction(trace) == 0.0

    def test_mixed(self):
        trace = interleave({1: [True] * 10, 2: [True, False] * 5})
        assert biased_fraction(trace) == pytest.approx(0.5)

    def test_threshold_is_strict(self):
        # Exactly 99% biased is NOT "more than 99% biased".
        outcomes = [True] * 99 + [False]
        trace = trace_from_outcomes(outcomes)
        assert biased_fraction(trace, threshold=0.99) == 0.0

    def test_empty(self):
        assert biased_fraction(Trace.empty()) == 0.0


class TestComputeStatistics:
    def test_empty_trace(self):
        stats = compute_statistics(Trace.empty())
        assert stats.num_dynamic == 0
        assert stats.num_static == 0

    def test_counts(self):
        trace = interleave({1: [True] * 3, 2: [False] * 3})
        stats = compute_statistics(trace)
        assert stats.num_dynamic == 6
        assert stats.num_static == 2
        assert stats.taken_rate == pytest.approx(0.5)
        assert stats.ideal_static_accuracy == 1.0

    def test_backward_rate(self):
        from conftest import trace_from_steps

        trace = trace_from_steps([(0x100, 0x80, True), (0x100, 0x200, True)])
        stats = compute_statistics(trace)
        assert stats.backward_rate == pytest.approx(0.5)


@given(st.lists(st.booleans(), min_size=1, max_size=100))
def test_property_ideal_static_at_least_bias(outcomes):
    """Ideal static accuracy equals the branch's majority frequency."""
    trace = trace_from_outcomes(outcomes)
    accuracy = ideal_static_correct(trace).mean()
    expected = max(sum(outcomes), len(outcomes) - sum(outcomes)) / len(outcomes)
    assert accuracy == pytest.approx(expected)


@given(st.lists(st.booleans(), min_size=1, max_size=60))
def test_property_bias_at_least_half(outcomes):
    trace = trace_from_outcomes(outcomes)
    bias = per_branch_bias(trace)[0x100]
    assert 0.5 <= bias <= 1.0
