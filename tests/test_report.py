"""Tests for the text-rendering helpers."""

import pytest

from repro.experiments.report import (
    format_bar_chart,
    format_stacked_fractions,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(("name", "value"), [("a", 1), ("bb", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_floats_formatted_to_two_places(self):
        text = format_table(("x",), [(3.14159,)])
        assert "3.14" in text
        assert "3.142" not in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_empty_rows(self):
        text = format_table(("a",), [])
        assert "a" in text


class TestFormatBarChart:
    def test_bars_scale_with_value(self):
        text = format_bar_chart({"bench": {"x": 50.0, "y": 100.0}}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_values_printed(self):
        text = format_bar_chart({"b": {"x": 42.5}})
        assert "42.5%" in text


class TestFormatStackedFractions:
    def test_legend_and_values(self):
        text = format_stacked_fractions(
            {"gcc": {"a": 0.25, "b": 0.75}}, order=("a", "b")
        )
        assert "legend:" in text
        assert "a=25.0%" in text
        assert "b=75.0%" in text

    def test_segments_fill_width(self):
        text = format_stacked_fractions(
            {"gcc": {"a": 0.5, "b": 0.5}}, order=("a", "b"), width=20
        )
        bar_line = text.splitlines()[1]
        stack = bar_line.split("|")[1]
        assert stack.count("#") == 10
        assert stack.count("=") == 10

    def test_missing_label_treated_as_zero(self):
        text = format_stacked_fractions({"gcc": {"a": 1.0}}, order=("a", "b"))
        assert "b=0.0%" in text


class TestFormatLineChart:
    def _chart(self, **kwargs):
        from repro.experiments.report import format_line_chart

        return format_line_chart(**kwargs)

    def test_empty_series(self):
        assert self._chart(series={}) == "(no data)"

    def test_axis_labels_and_legend(self):
        text = self._chart(
            series={"a": [(0, 0.0), (10, 100.0)]}, y_label="accuracy"
        )
        assert "accuracy" in text
        assert "legend: o=a" in text
        assert "100.0" in text and "0.0" in text

    def test_two_series_distinct_glyphs(self):
        text = self._chart(
            series={"a": [(0, 1.0), (1, 2.0)], "b": [(0, 2.0), (1, 1.0)]}
        )
        assert "o" in text and "x" in text

    def test_constant_series_does_not_divide_by_zero(self):
        text = self._chart(series={"flat": [(0, 5.0), (1, 5.0), (2, 5.0)]})
        assert "o" in text

    def test_single_point(self):
        text = self._chart(series={"dot": [(3, 7.0)]})
        assert "o" in text
