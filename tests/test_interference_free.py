"""Tests for interference-free gshare and PAs."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.predictors.base import simulate
from repro.predictors.interference_free import (
    InterferenceFreeGshare,
    InterferenceFreePAs,
)
from repro.predictors.twolevel import GsharePredictor, PAsPredictor

from conftest import interleave, trace_from_outcomes, trace_from_string


class TestInterferenceFreeGshare:
    def test_learns_periodic_pattern(self):
        trace = trace_from_outcomes([True, True, False] * 300)
        assert InterferenceFreeGshare(6).accuracy(trace) > 0.97

    def test_no_cross_branch_interference(self):
        # Two branches with identical global history patterns but
        # opposite outcomes: private PHTs keep them apart, a shared
        # 1-entry PHT could not.
        trace = interleave({0x100: [True] * 300, 0x104: [False] * 300})
        assert InterferenceFreeGshare(4).accuracy(trace) > 0.97

    def test_beats_tiny_shared_gshare_under_conflict(self):
        rng = random.Random(1)
        sequences = {
            0x100 + 4 * i: [rng.random() < 0.9 for _ in range(300)]
            for i in range(8)
        }
        sequences[0x200] = [False] * 300
        trace = interleave(sequences)
        shared = GsharePredictor(history_bits=2, pht_bits=2).accuracy(trace)
        private = InterferenceFreeGshare(2).accuracy(trace)
        assert private > shared

    def test_fast_path_matches_generic_loop(self, small_benchmark_trace):
        trace = small_benchmark_trace[:2000]
        fast = InterferenceFreeGshare(6).simulate(trace)
        slow = simulate(InterferenceFreeGshare(6), trace)
        assert np.array_equal(fast, slow)

    def test_invalid_history(self):
        with pytest.raises(ValueError):
            InterferenceFreeGshare(history_bits=-1)

    @settings(max_examples=20)
    @given(st.lists(st.booleans(), min_size=1, max_size=150))
    def test_property_fast_path_equals_slow_path(self, outcomes):
        trace = trace_from_outcomes(outcomes)
        fast = InterferenceFreeGshare(5).simulate(trace)
        slow = simulate(InterferenceFreeGshare(5), trace)
        assert np.array_equal(fast, slow)


class TestInterferenceFreePAs:
    def test_learns_alternation(self):
        trace = trace_from_outcomes([True, False] * 300)
        assert InterferenceFreePAs(4).accuracy(trace) > 0.97

    def test_immune_to_interleaved_noise(self):
        rng = random.Random(2)
        periodic = [True, True, False] * 300
        noise = [rng.random() < 0.5 for _ in range(900)]
        trace = interleave({0x100: periodic, 0x200: noise})
        correct = InterferenceFreePAs(6).simulate(trace)
        periodic_indices = trace.indices_by_pc()[0x100]
        assert correct[periodic_indices].mean() > 0.97

    def test_cannot_predict_loop_exit_beyond_history(self):
        # A loop of 20 iterations with an 4-bit history: every exit is a
        # surprise -- the paper's point about IF PAs and long loops.
        loop = ([True] * 20 + [False]) * 50
        trace = trace_from_outcomes(loop)
        accuracy = InterferenceFreePAs(4).accuracy(trace)
        assert accuracy <= 20.5 / 21

    def test_predicts_loop_exit_within_history(self):
        loop = ([True] * 3 + [False]) * 200
        trace = trace_from_outcomes(loop)
        assert InterferenceFreePAs(6).accuracy(trace) > 0.97

    def test_fast_path_matches_generic_loop(self, small_benchmark_trace):
        trace = small_benchmark_trace[:2000]
        fast = InterferenceFreePAs(6).simulate(trace)
        slow = simulate(InterferenceFreePAs(6), trace)
        assert np.array_equal(fast, slow)

    def test_invalid_history(self):
        with pytest.raises(ValueError):
            InterferenceFreePAs(history_bits=-1)

    def test_if_pas_beats_pas_under_destructive_bht_aliasing(self):
        # A periodic branch sharing its lone history register with a
        # random branch: the shared register scrambles the periodic
        # branch's position information, private histories do not.
        rng = random.Random(5)
        periodic = [True, True, False] * 200
        noise = [rng.random() < 0.5 for _ in range(600)]
        trace = interleave({0x100: periodic, 0x104: noise})
        pas = PAsPredictor(history_bits=4, bht_bits=0, pht_select_bits=0)
        if_pas = InterferenceFreePAs(4)
        pas_correct = pas.simulate(trace)
        if_correct = if_pas.simulate(trace)
        periodic_indices = trace.indices_by_pc()[0x100]
        assert (
            if_correct[periodic_indices].mean()
            > pas_correct[periodic_indices].mean() + 0.05
        )

    @settings(max_examples=20)
    @given(st.lists(st.booleans(), min_size=1, max_size=150))
    def test_property_fast_path_equals_slow_path(self, outcomes):
        trace = trace_from_outcomes(outcomes)
        fast = InterferenceFreePAs(5).simulate(trace)
        slow = simulate(InterferenceFreePAs(5), trace)
        assert np.array_equal(fast, slow)
