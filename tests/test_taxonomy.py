"""Tests for the GAg/PAg taxonomy points."""

import numpy as np

from repro.predictors.base import simulate
from repro.predictors.twolevel import (
    GAgPredictor,
    GAsPredictor,
    PAgPredictor,
    PAsPredictor,
)

from conftest import interleave, trace_from_outcomes


class TestGAg:
    def test_equals_gas_with_zero_select_bits(self):
        trace = trace_from_outcomes([True, True, False] * 100)
        gag = GAgPredictor(6)
        gas = GAsPredictor(6, 0)
        assert np.array_equal(simulate(gag, trace), simulate(gas, trace))

    def test_learns_single_branch_pattern(self):
        trace = trace_from_outcomes([True, False] * 200)
        assert GAgPredictor(6).accuracy(trace) > 0.95

    def test_suffers_shared_pht_interference(self):
        # With no history, GAg is a single shared counter: two opposing
        # always-taken / always-not-taken branches thrash it, while
        # GAs's address-selected counters keep them apart.
        trace = interleave({0x100: [True] * 300, 0x104: [False] * 300})
        gag = GAgPredictor(0).accuracy(trace)
        gas = GAsPredictor(0, 2).accuracy(trace)
        assert gas > gag + 0.2

    def test_name(self):
        assert GAgPredictor(8).name == "gag-8h"


class TestPAg:
    def test_equals_pas_with_zero_select_bits(self):
        trace = trace_from_outcomes([True, False, False] * 100)
        pag = PAgPredictor(5, 8)
        pas = PAsPredictor(5, 8, 0)
        assert np.array_equal(simulate(pag, trace), simulate(pas, trace))

    def test_learns_local_patterns(self):
        trace = interleave(
            {1: [True, False] * 150, 2: [True, True, False] * 100}
        )
        assert PAgPredictor(6, 8).accuracy(trace) > 0.9

    def test_second_level_interference(self):
        # Branch A is always taken (local pattern 11 -> taken); branch B
        # repeats T T F, whose pattern 11 -> not-taken.  PAg's shared
        # PHT conflates the two pattern-11 entries, PAs separates them
        # by address.
        trace = interleave(
            {0x100: [True] * 300, 0x104: [True, True, False] * 100}
        )
        pag_correct = PAgPredictor(2, 8).simulate(trace)
        pas_correct = PAsPredictor(2, 8, 4).simulate(trace)
        # A's constant stream keeps the shared entry saturated taken, so
        # B's pattern-11 exits are the interference victims.
        b_indices = trace.indices_by_pc()[0x104]
        assert (
            pas_correct[b_indices].mean() > pag_correct[b_indices].mean() + 0.05
        )

    def test_name(self):
        assert PAgPredictor(6, 10).name == "pag-6h-10b"
