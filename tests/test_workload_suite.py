"""Tests for the benchmark suite and generator."""

import pytest

from repro.trace.stats import compute_statistics
from repro.workloads.generator import BenchmarkProfile, build_program
from repro.workloads.program import execute_program
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    PAPER_BRANCH_COUNTS,
    benchmark_spec,
    load_benchmark,
    load_suite,
    scaled_length,
)


class TestSuiteRegistry:
    def test_eight_benchmarks_in_paper_order(self):
        assert BENCHMARK_NAMES == [
            "compress",
            "gcc",
            "go",
            "ijpeg",
            "m88ksim",
            "perl",
            "vortex",
            "xlisp",
        ]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            benchmark_spec("spice")

    def test_scaled_lengths_preserve_proportions(self):
        longest = max(PAPER_BRANCH_COUNTS.values())
        for name in BENCHMARK_NAMES:
            expected = PAPER_BRANCH_COUNTS[name] / longest
            actual = scaled_length(name, 100_000) / 100_000
            assert actual == pytest.approx(expected, abs=0.02)

    def test_vortex_is_the_longest(self):
        lengths = {name: scaled_length(name, 50_000) for name in BENCHMARK_NAMES}
        assert max(lengths, key=lengths.get) == "vortex"

    def test_load_benchmark_caches(self):
        a = load_benchmark("compress", length=3000, run_seed=7)
        b = load_benchmark("compress", length=3000, run_seed=7)
        assert a is b

    def test_load_benchmark_distinct_seeds(self):
        a = load_benchmark("compress", length=3000, run_seed=7)
        b = load_benchmark("compress", length=3000, run_seed=8)
        assert a != b

    def test_load_suite_lengths(self):
        suite = load_suite(max_length=5000)
        assert set(suite) == set(BENCHMARK_NAMES)
        assert len(suite["vortex"]) == 5000
        assert len(suite["perl"]) < len(suite["gcc"])


class TestGenerator:
    def test_unknown_unit_kind_rejected(self):
        profile = BenchmarkProfile(name="x", seed=1, units={"nonsense": 1})
        with pytest.raises(ValueError, match="unknown unit kind"):
            build_program(profile)

    def test_same_seed_same_program(self):
        profile = BenchmarkProfile(
            name="x", seed=5, units={"biased": 3, "for_loop": 2}
        )
        a = execute_program(build_program(profile), 2000, seed=1)
        b = execute_program(build_program(profile), 2000, seed=1)
        assert a == b

    def test_every_unit_kind_builds_and_runs(self):
        units = {
            kind: 1
            for kind in (
                "biased_run",
                "biased",
                "noise",
                "data",
                "markov",
                "selfdep",
                "phase",
                "corr_pair",
                "corr_triple",
                "corr_quad",
                "assign_corr",
                "chain",
                "for_loop",
                "while_loop",
                "loop_nest",
                "gated_loop",
                "pattern",
                "block",
                "call",
            )
        }
        profile = BenchmarkProfile(name="all", seed=3, units=units)
        trace = execute_program(build_program(profile), 3000, seed=2)
        assert len(trace) == 3000
        assert trace.num_static_branches() > 20


class TestSuiteCharacteristics:
    """The tuned shape constraints the experiments rely on."""

    @pytest.fixture(scope="class")
    def stats(self):
        return {
            name: compute_statistics(load_benchmark(name, length=15000, run_seed=5))
            for name in ("gcc", "go", "m88ksim", "vortex")
        }

    def test_gcc_has_the_most_static_branches(self, stats):
        assert stats["gcc"].num_static == max(
            s.num_static for s in stats.values()
        )

    def test_biased_mass_ordering(self, stats):
        # vortex and m88ksim are dominated by >99%-biased branches.
        assert stats["vortex"].biased_99_dynamic_fraction > 0.35
        assert stats["m88ksim"].biased_99_dynamic_fraction > 0.3
        assert stats["go"].biased_99_dynamic_fraction < 0.3

    def test_go_is_least_statically_predictable(self, stats):
        assert stats["go"].ideal_static_accuracy == min(
            s.ideal_static_accuracy for s in stats.values()
        )

    def test_traces_have_backward_branches(self, stats):
        for name, s in stats.items():
            assert s.backward_rate > 0.005, name
