"""Tests for the section-4.1.1 loop predictor."""


from repro.predictors.loop import MAX_TRIP_COUNT, LoopPredictor

from conftest import interleave, trace_from_outcomes


def for_type(trips, repeats):
    """For-type loop outcomes: taken (trips-1) times, not-taken once."""
    return ([True] * (trips - 1) + [False]) * repeats


def while_type(trips, repeats):
    """While-type loop outcomes: not-taken trips times, taken once."""
    return ([False] * trips + [True]) * repeats


class TestLoopPredictor:
    def test_perfect_on_stable_for_loop(self):
        trace = trace_from_outcomes(for_type(7, 100))
        correct = LoopPredictor().simulate(trace)
        # After the first (training) loop execution, everything is
        # predictable, including the exit.
        assert correct[7:].all()

    def test_perfect_on_stable_while_loop(self):
        trace = trace_from_outcomes(while_type(5, 100))
        correct = LoopPredictor().simulate(trace)
        assert correct[6:].all()

    def test_long_loop_beyond_any_history(self):
        # 40-iteration loops: two-level predictors with short histories
        # miss every exit; the loop predictor does not.
        trace = trace_from_outcomes(for_type(40, 40))
        correct = LoopPredictor().simulate(trace)
        assert correct[40:].all()

    def test_trip_count_change_costs_bounded_mispredictions(self):
        outcomes = for_type(6, 20) + for_type(9, 20)
        trace = trace_from_outcomes(outcomes)
        correct = LoopPredictor().simulate(trace)
        # Only the transition executions may mispredict.
        assert (~correct[6:]).sum() <= 4

    def test_adapts_direction_bit(self):
        # Start at a loop's exit iteration: the first outcome (the rare
        # direction) sets the direction bit wrong; the predictor must
        # recover.
        outcomes = [False] + for_type(5, 50)
        trace = trace_from_outcomes(outcomes)
        correct = LoopPredictor().simulate(trace)
        assert correct[12:].all()

    def test_saturates_at_max_trip_count(self):
        trips = MAX_TRIP_COUNT + 50
        trace = trace_from_outcomes(for_type(trips, 3))
        accuracy = LoopPredictor().accuracy(trace)
        # Body predictions are fine; only exits are missed.
        assert accuracy >= 1.0 - 2 * 3 / (3 * trips)

    def test_separate_state_per_branch(self):
        trace = interleave(
            {0x100: for_type(4, 50), 0x200: while_type(3, 50)}
        )
        correct = LoopPredictor().simulate(trace)
        assert correct[20:].mean() > 0.98

    def test_btb_size_counts_branches(self):
        predictor = LoopPredictor()
        trace = interleave({1: [True] * 4, 2: [False] * 4})
        predictor.simulate(trace)
        assert predictor.btb_size() == 2

    def test_first_prediction_is_taken(self):
        assert LoopPredictor().predict(0x100, 0x80) is True

    def test_alternating_branch_is_not_catastrophic(self):
        # T/N alternation is a degenerate "loop" of one body iteration;
        # the predictor should track it after warmup rather than diverge.
        trace = trace_from_outcomes([True, False] * 100)
        assert LoopPredictor().accuracy(trace) > 0.9
