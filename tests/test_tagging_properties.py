"""Property tests: the collector vs a brute-force reference model.

The correlation collector is the most intricate piece of the
reproduction (packed entries, dual tagging, dedup, depth filtering).
These tests re-derive every tag state with a direct, obviously-correct
window scan and require exact agreement on randomised traces.
"""

from typing import Dict

from hypothesis import given, settings, strategies as st


from repro.correlation.selection import (
    SelectionConfig,
    joint_ideal_accuracy,
    single_tag_score,
)
from repro.correlation.tagging import (
    STATE_ABSENT,
    STATE_NOT_TAKEN,
    STATE_TAKEN,
    TAG_BACKWARD,
    TAG_OCCURRENCE,
    TagKey,
    collect_correlation_data,
)

from conftest import trace_from_steps


def reference_tag_states(trace, index: int, window: int) -> Dict[TagKey, int]:
    """Brute-force tag states for the branch at trace position ``index``.

    Scans the window most-recent-first, numbering occurrences from the
    current branch and counting backward branches strictly between the
    tagged instance and the current branch; the shallowest appearance of
    a tag wins.
    """
    states: Dict[TagKey, int] = {}
    occurrence_counts: Dict[int, int] = {}
    backward_count = 0
    for depth in range(1, min(index, window) + 1):
        j = index - depth
        pc = int(trace.pc[j])
        taken = bool(trace.taken[j])
        state = STATE_TAKEN if taken else STATE_NOT_TAKEN
        occurrence = occurrence_counts.get(pc, 0)
        occurrence_counts[pc] = occurrence + 1
        occ_tag = (TAG_OCCURRENCE, pc, occurrence)
        if occ_tag not in states:
            states[occ_tag] = state
        bwd_tag = (TAG_BACKWARD, pc, backward_count)
        if bwd_tag not in states:
            states[bwd_tag] = state
        if int(trace.target[j]) < pc:
            backward_count += 1
    return states


step_lists = st.lists(
    st.tuples(
        st.sampled_from([0x10, 0x20, 0x30]),
        st.sampled_from([0x08, 0x40]),  # backward or forward target
        st.booleans(),
    ),
    min_size=2,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(steps=step_lists, window=st.sampled_from([1, 2, 4, 8, 16]))
def test_property_collector_matches_reference(steps, window):
    """Every tag state derivable from the collected data must equal the
    brute-force reference, for every instance and every window."""
    trace = trace_from_steps(steps)
    data = collect_correlation_data(trace, window=32)

    instance_counters: Dict[int, int] = {}
    for i in range(len(trace)):
        pc = int(trace.pc[i])
        instance = instance_counters.get(pc, 0)
        instance_counters[pc] = instance + 1
        expected = reference_tag_states(trace, i, window)
        branch = data.branches[pc]
        # Every expected tag must be present with the right state...
        for tag, state in expected.items():
            assert branch.state_vector(tag, window)[instance] == state
        # ...and every collected tag absent from the reference must be
        # reported absent for this instance under this window.
        for tag in branch.tag_entries:
            if tag not in expected:
                assert (
                    branch.state_vector(tag, window)[instance] == STATE_ABSENT
                )


@settings(max_examples=40, deadline=None)
@given(steps=step_lists)
def test_property_single_tag_score_at_least_bias(steps):
    """Bucketing by any tag can never reduce ideal-table accuracy below
    the branch's bias (per-bucket majorities dominate the global one)."""
    trace = trace_from_steps(steps)
    data = collect_correlation_data(trace, window=16)
    for branch in data.branches.values():
        outcomes = branch.outcomes
        bias = max(outcomes.mean(), 1 - outcomes.mean()) if len(outcomes) else 0
        for tag in branch.tag_entries:
            score = single_tag_score(branch, tag, window=16)
            assert score >= bias - 1e-12


@settings(max_examples=40, deadline=None)
@given(steps=step_lists)
def test_property_joint_score_at_least_best_single(steps):
    """Adding a second tag can never reduce the ideal-table accuracy."""
    trace = trace_from_steps(steps)
    data = collect_correlation_data(trace, window=16)
    for branch in data.branches.values():
        tags = list(branch.tag_entries)[:4]
        if len(tags) < 2:
            continue
        first = branch.state_vector(tags[0], 16)
        second = branch.state_vector(tags[1], 16)
        single = joint_ideal_accuracy([first], branch.outcomes)
        joint = joint_ideal_accuracy([first, second], branch.outcomes)
        assert joint >= single - 1e-12


@settings(max_examples=30, deadline=None)
@given(steps=step_lists, count=st.sampled_from([1, 2, 3]))
def test_property_selection_never_crashes_and_bounds(steps, count):
    """The oracle handles arbitrary traces; scores stay in [0, 1]."""
    from repro.correlation.selection import select_for_trace

    trace = trace_from_steps(steps)
    data = collect_correlation_data(trace, window=16)
    selections = select_for_trace(data, count, SelectionConfig(window=16))
    for pc, selection in selections.items():
        assert 0.0 <= selection.ideal_accuracy <= 1.0
        assert len(selection.tags) <= count
        for tag in selection.tags:
            assert tag in data.branches[pc].tag_entries
