"""Tests for the selective-history predictor (section 3.4)."""

import random

import numpy as np
import pytest

from repro.correlation.selection import SelectionConfig
from repro.predictors.base import simulate
from repro.predictors.selective import SelectiveHistoryPredictor
from repro.predictors.twolevel import GsharePredictor

from conftest import trace_from_outcomes, trace_from_steps
from test_selection import _fig1a_trace, _fig1c_trace


class TestSelectiveHistoryPredictor:
    def test_requires_fit(self):
        predictor = SelectiveHistoryPredictor(1)
        with pytest.raises(RuntimeError):
            predictor.predict(1, 2)

    def test_captures_fig1a_correlation(self):
        trace = _fig1a_trace()
        predictor = SelectiveHistoryPredictor(1, SelectionConfig(window=8))
        correct = predictor.fit(trace).simulate(trace)
        x_indices = trace.indices_by_pc()[0x300]
        # X is ~75% predictable from Y alone (fully determined when Y is
        # not taken).
        assert correct[x_indices][20:].mean() > 0.68

    def test_two_branches_capture_fig1c(self):
        trace = _fig1c_trace()
        one = SelectiveHistoryPredictor(1, SelectionConfig(window=8)).fit(trace)
        two = SelectiveHistoryPredictor(2, SelectionConfig(window=8)).fit(trace)
        x_indices = trace.indices_by_pc()[0x300]
        acc_one = one.simulate(trace)[x_indices][30:].mean()
        acc_two = two.simulate(trace)[x_indices][30:].mean()
        assert acc_two > 0.93
        assert acc_two > acc_one + 0.1

    def test_simulate_requires_same_trace(self):
        trace = _fig1a_trace(100)
        other = _fig1a_trace(150)
        predictor = SelectiveHistoryPredictor(1, SelectionConfig(window=8))
        predictor.fit(trace)
        with pytest.raises(ValueError):
            predictor.simulate(other)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            SelectiveHistoryPredictor(0)

    def test_online_path_matches_fast_replay_fig1a(self):
        trace = _fig1a_trace(150)
        config = SelectionConfig(window=8)
        online = SelectiveHistoryPredictor(2, config).fit(trace)
        replay = SelectiveHistoryPredictor(2, config).fit(trace)
        online_correct = simulate(online, trace)
        replay_correct = replay.simulate(trace)
        assert np.array_equal(online_correct, replay_correct)

    def test_online_path_matches_fast_replay_random_trace(self):
        rng = random.Random(23)
        steps = []
        for _ in range(400):
            pc = rng.choice([0x10, 0x20, 0x30, 0x40])
            target = rng.choice([pc - 8, pc + 8])
            steps.append((pc, target, rng.random() < 0.6))
        trace = trace_from_steps(steps)
        config = SelectionConfig(window=8)
        online = SelectiveHistoryPredictor(3, config).fit(trace)
        replay = SelectiveHistoryPredictor(3, config).fit(trace)
        assert np.array_equal(simulate(online, trace), replay.simulate(trace))

    def test_online_matches_replay_with_backward_branches(self):
        # Loop-heavy trace: exercises the backward-count tagging scheme
        # in both the online window scan and the collector.
        rng = random.Random(29)
        steps = []
        for _ in range(60):
            trips = rng.randint(2, 4)
            for i in range(trips):
                steps.append((0x50, 0x60, rng.random() < 0.8))
                steps.append((0x70, 0x40, i < trips - 1))  # backward
            steps.append((0x90, 0xA0, rng.random() < 0.5))
        trace = trace_from_steps(steps)
        config = SelectionConfig(window=8)
        online = SelectiveHistoryPredictor(3, config).fit(trace)
        replay = SelectiveHistoryPredictor(3, config).fit(trace)
        assert np.array_equal(simulate(online, trace), replay.simulate(trace))

    def test_captures_loop_via_self_history(self):
        # A 3-iteration loop branch: its own previous outcomes are in the
        # selective window, so the oracle can pick the branch itself.
        outcomes = ([True, True, False]) * 150
        trace = trace_from_outcomes(outcomes)
        predictor = SelectiveHistoryPredictor(2, SelectionConfig(window=8))
        correct = predictor.fit(trace).simulate(trace)
        assert correct[30:].mean() > 0.95

    def test_selective_beats_gshare_on_pure_correlation(self):
        # The headline table-2 effect: a correlated branch gshare
        # struggles with (cold, fragmented patterns) that one selected
        # branch captures.
        trace = _fig1a_trace(400)
        selective = SelectiveHistoryPredictor(1, SelectionConfig(window=8))
        selective_correct = selective.fit(trace).simulate(trace)
        gshare_correct = GsharePredictor(16, 16).simulate(trace)
        x_indices = trace.indices_by_pc()[0x300]
        assert (
            selective_correct[x_indices].mean()
            >= gshare_correct[x_indices].mean() - 0.02
        )
