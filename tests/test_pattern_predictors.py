"""Tests for fixed-length and block-pattern predictors (section 4.1.2)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.predictors.base import simulate
from repro.predictors.pattern import (
    BlockPatternPredictor,
    FixedLengthPatternPredictor,
    MAX_PATTERN_LENGTH,
    best_fixed_length_correct,
    fixed_length_correct,
)

from conftest import interleave, trace_from_outcomes


class TestFixedLengthPredictor:
    def test_perfect_on_matching_period(self):
        pattern = [True, False, False, True, True]
        trace = trace_from_outcomes(pattern * 100)
        predictor = FixedLengthPatternPredictor(k=5)
        correct = predictor.simulate(trace)
        assert correct[5:].all()

    def test_multiple_of_period_also_perfect(self):
        pattern = [True, False, False]
        trace = trace_from_outcomes(pattern * 100)
        correct = FixedLengthPatternPredictor(k=6).simulate(trace)
        assert correct[6:].all()

    def test_wrong_period_imperfect(self):
        pattern = [True, False, False]
        trace = trace_from_outcomes(pattern * 100)
        accuracy = FixedLengthPatternPredictor(k=2).accuracy(trace)
        assert accuracy < 0.75

    def test_warmup_predicts_taken(self):
        trace = trace_from_outcomes([True, True, False, True])
        correct = FixedLengthPatternPredictor(k=4).simulate(trace)
        assert list(correct[:4]) == [True, True, False, True]

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            FixedLengthPatternPredictor(0)
        with pytest.raises(ValueError):
            FixedLengthPatternPredictor(MAX_PATTERN_LENGTH + 1)
        FixedLengthPatternPredictor(MAX_PATTERN_LENGTH)

    def test_per_branch_state(self):
        trace = interleave(
            {1: [True, False] * 50, 2: [False, True, True] * 40}
        )
        correct = FixedLengthPatternPredictor(k=6).simulate(trace)
        assert correct[20:].mean() > 0.97

    @settings(max_examples=25)
    @given(
        st.lists(st.booleans(), min_size=1, max_size=120),
        st.integers(1, 8),
    )
    def test_property_vectorised_matches_predictor(self, outcomes, k):
        trace = trace_from_outcomes(outcomes)
        vectorised = fixed_length_correct(trace, k)
        looped = simulate(FixedLengthPatternPredictor(k), trace)
        assert np.array_equal(vectorised, looped)


class TestBestFixedLength:
    def test_picks_each_branch_its_own_k(self):
        trace = interleave(
            {1: [True, False] * 60, 2: [True, True, False] * 40}
        )
        correct = best_fixed_length_correct(trace)
        assert correct[10:].mean() > 0.97

    def test_at_least_as_good_as_any_single_k(self):
        rng = random.Random(9)
        outcomes = [rng.random() < 0.6 for _ in range(300)]
        trace = trace_from_outcomes(outcomes)
        best = best_fixed_length_correct(trace).mean()
        for k in (1, 2, 3, 7, 16, 32):
            assert best >= fixed_length_correct(trace, k).mean()

    @settings(max_examples=15)
    @given(st.lists(st.booleans(), min_size=1, max_size=80))
    def test_property_best_of_dominates_k1(self, outcomes):
        trace = trace_from_outcomes(outcomes)
        assert (
            best_fixed_length_correct(trace, max_k=8).sum()
            >= fixed_length_correct(trace, 1).sum()
        )


class TestBlockPatternPredictor:
    def test_perfect_on_stable_blocks(self):
        outcomes = ([True] * 4 + [False] * 7) * 60
        trace = trace_from_outcomes(outcomes)
        correct = BlockPatternPredictor().simulate(trace)
        assert correct[22:].all()

    def test_asymmetric_blocks(self):
        outcomes = ([True] * 9 + [False] * 2) * 60
        trace = trace_from_outcomes(outcomes)
        correct = BlockPatternPredictor().simulate(trace)
        assert correct[22:].all()

    def test_block_predictor_handles_what_loop_cannot(self):
        # n taken / m not-taken with m > 1 is block behaviour, not loop
        # behaviour: the loop predictor expects a single exit outcome.
        from repro.predictors.loop import LoopPredictor

        outcomes = ([True] * 5 + [False] * 5) * 60
        trace = trace_from_outcomes(outcomes)
        block = BlockPatternPredictor().accuracy(trace)
        loop = LoopPredictor().accuracy(trace)
        assert block > loop

    def test_first_prediction_is_taken(self):
        assert BlockPatternPredictor().predict(1, 2) is True

    def test_per_branch_state(self):
        trace = interleave(
            {
                1: ([True] * 3 + [False] * 2) * 50,
                2: ([False] * 4 + [True] * 4) * 30,
            }
        )
        correct = BlockPatternPredictor().simulate(trace)
        assert correct[40:].mean() > 0.97

    def test_btb_size(self):
        predictor = BlockPatternPredictor()
        predictor.simulate(interleave({1: [True] * 3, 2: [False] * 3}))
        assert predictor.btb_size() == 2
