"""Corrupt cache entries are quarantined, not silently trusted."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.cache import QUARANTINE_DIRNAME, ResultCache
from repro.analysis.config import LabConfig
from repro.analysis.parallel import prime_labs
from repro.analysis.runner import Lab
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.workloads.suite import load_benchmark

SMALL = 2000


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "c")


def store_bitmap(cache, digest="d" * 32, key="loop|v1"):
    bitmap = np.array([True, False, True, True], dtype=bool)
    cache.store_bitmap(digest, key, bitmap)
    return bitmap, cache.entry_path("bitmap", cache.bitmap_key(digest, key))


class TestQuarantine:
    def test_truncated_entry_is_quarantined_on_load(self, cache):
        _, path = store_bitmap(cache)
        with open(path, "r+b") as fh:
            fh.truncate(8)
        assert cache.load_bitmap("d" * 32, "loop|v1") is None
        assert not path.exists()
        assert cache.quarantine_count() == 1
        (moved,) = cache.quarantined_entries()
        assert moved.parent.name == QUARANTINE_DIRNAME
        # Forensic bytes survive the move.
        assert moved.read_bytes() == moved.read_bytes()[:8]
        assert cache.stats.quarantined == 1
        assert cache.stats.errors == 1
        assert "quarantined" in cache.stats.summary()

    def test_recompute_overwrites_cleanly(self, cache):
        bitmap, path = store_bitmap(cache)
        with open(path, "r+b") as fh:
            fh.truncate(8)
        assert cache.load_bitmap("d" * 32, "loop|v1") is None
        cache.store_bitmap("d" * 32, "loop|v1", bitmap)
        reloaded = cache.load_bitmap("d" * 32, "loop|v1")
        assert np.array_equal(reloaded, bitmap)
        assert cache.quarantine_count() == 1  # evidence is kept

    def test_quarantine_excluded_from_entries_but_cleared(self, cache):
        _, path = store_bitmap(cache)
        with open(path, "r+b") as fh:
            fh.truncate(8)
        cache.load_bitmap("d" * 32, "loop|v1")
        assert cache.entry_count() == 0
        assert cache.total_bytes() == 0
        removed = cache.clear()
        assert removed == 1
        assert cache.quarantine_count() == 0

    def test_clean_cache_reports_zero(self, cache):
        assert cache.quarantine_count() == 0
        assert "quarantined" not in cache.stats.summary()


class TestCorruptFaultRoundTrip:
    """The injected 'corrupt' fault exercises the full quarantine path."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_corrupt_then_reload_recomputes_identically(
        self, tmp_path, jobs
    ):
        trace = load_benchmark("gcc", length=SMALL, run_seed=12345)
        config = LabConfig()

        cache = ResultCache(tmp_path / "c")
        labs = {"gcc": Lab(trace, config, cache=cache)}
        prime_labs(
            labs,
            jobs=jobs,
            cache=cache,
            tasks=("loop",),
            policy=RetryPolicy(max_attempts=1),
            injector=FaultInjector.from_spec("gcc/loop:1:corrupt"),
        )
        reference = labs["gcc"].correct("loop")

        # A later run over the poisoned cache: the load quarantines the
        # torn entry and the task recomputes bit-identically.
        cache2 = ResultCache(tmp_path / "c")
        labs2 = {"gcc": Lab(trace, config, cache=cache2)}
        prime_labs(labs2, jobs=jobs, cache=cache2, tasks=("loop",))
        assert cache2.stats.quarantined == 1
        assert np.array_equal(labs2["gcc"].correct("loop"), reference)

        # And a third run hits the rewritten clean entry.
        cache3 = ResultCache(tmp_path / "c")
        labs3 = {"gcc": Lab(trace, config, cache=cache3)}
        prime_labs(labs3, jobs=jobs, cache=cache3, tasks=("loop",))
        assert cache3.stats.quarantined == 0
        assert cache3.stats.misses == 0
        assert np.array_equal(labs3["gcc"].correct("loop"), reference)
