"""Tests for the offender report and the JSON export."""

import json

import numpy as np
import pytest

from repro.analysis.offenders import render_offenders, top_offenders
from repro.analysis.runner import Lab
from repro.experiments.base import run_experiment
from repro.experiments.export import export_results, to_jsonable
from repro.workloads.suite import load_benchmark

from conftest import interleave


class TestTopOffenders:
    def test_ranking_by_misprediction_count(self):
        trace = interleave({1: [True] * 10, 2: [True] * 10})
        correct = np.ones(20, dtype=bool)
        idx1 = trace.indices_by_pc()[1]
        idx2 = trace.indices_by_pc()[2]
        correct[idx1[:5]] = False
        correct[idx2[:2]] = False
        offenders = top_offenders(trace, correct)
        assert [o.pc for o in offenders] == [1, 2]
        assert offenders[0].mispredictions == 5
        assert offenders[0].misprediction_share == pytest.approx(5 / 7)

    def test_perfect_branches_excluded(self):
        trace = interleave({1: [True] * 5, 2: [True] * 5})
        correct = np.ones(10, dtype=bool)
        correct[trace.indices_by_pc()[2]] = False
        offenders = top_offenders(trace, correct)
        assert [o.pc for o in offenders] == [2]

    def test_count_limits_output(self):
        trace = interleave({pc: [True] * 4 for pc in range(8)})
        correct = np.zeros(32, dtype=bool)
        assert len(top_offenders(trace, correct, count=3)) == 3

    def test_validation(self):
        trace = interleave({1: [True] * 4})
        with pytest.raises(ValueError):
            top_offenders(trace, np.ones(3, bool))
        with pytest.raises(ValueError):
            top_offenders(trace, np.ones(4, bool), count=0)

    def test_render(self):
        trace = interleave({0x40: [True] * 6})
        correct = np.array([False] * 3 + [True] * 3)
        text = render_offenders(top_offenders(trace, correct))
        assert "0x40" in text
        assert "50.00%" in text


class TestJsonExport:
    @pytest.fixture(scope="class")
    def labs(self):
        return {
            "gcc": Lab(load_benchmark("gcc", length=3000, run_seed=19)),
        }

    @pytest.mark.parametrize(
        "experiment_id",
        ["table1", "fig4", "fig5", "table2", "fig6", "table3", "fig7", "fig8", "fig9"],
    )
    def test_every_result_is_jsonable(self, labs, experiment_id):
        result = run_experiment(experiment_id, labs)
        payload = to_jsonable(result)
        text = json.dumps(payload)  # must not raise
        assert experiment_id in text

    def test_export_results_round_trip(self, labs, tmp_path):
        result = run_experiment("table2", labs)
        path = tmp_path / "out.json"
        export_results({"table2": result}, str(path))
        data = json.loads(path.read_text())
        assert data["table2"]["experiment_id"] == "table2"
        assert "gcc" in data["table2"]["rows"]

    def test_numpy_scalars_converted(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.int32(3)) == 3
        assert to_jsonable(np.bool_(True)) is True
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestSerializationContract:
    @pytest.fixture(scope="class")
    def result(self):
        labs = {
            "gcc": Lab(load_benchmark("gcc", length=3000, run_seed=19)),
        }
        return run_experiment("table2", labs)

    def test_to_dict_is_schema_versioned(self, result):
        from repro.experiments.base import RESULT_SCHEMA_VERSION

        payload = result.to_dict()
        assert payload["schema_version"] == RESULT_SCHEMA_VERSION
        assert payload["experiment_id"] == "table2"
        assert payload["title"] == result.title

    def test_to_dict_is_superset_of_legacy_layout(self, result):
        # Version-1 readers index the flat field keys; version 2 must
        # keep every one of them with identical values.
        legacy = to_jsonable(result)
        modern = result.to_dict()
        for key, value in legacy.items():
            assert modern[key] == value

    def test_to_json_is_deterministic(self, result):
        text = result.to_json()
        assert text == result.to_json()
        assert json.loads(text)["experiment_id"] == "table2"

    def test_export_uses_versioned_contract(self, result, tmp_path):
        path = tmp_path / "out.json"
        export_results({"table2": result}, str(path))
        data = json.loads(path.read_text())
        assert data["table2"]["schema_version"] == 2
