"""Tests for the e-gskew skewed predictor."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.predictors.base import simulate
from repro.predictors.skewed import SkewedPredictor, _rotate
from repro.predictors.twolevel import GsharePredictor

from conftest import interleave, trace_from_outcomes


class TestRotate:
    def test_identity(self):
        assert _rotate(0b1011, 0, 4) == 0b1011

    def test_simple_rotation(self):
        assert _rotate(0b0001, 1, 4) == 0b0010
        assert _rotate(0b1000, 1, 4) == 0b0001

    def test_full_rotation_is_identity(self):
        assert _rotate(0b1011, 4, 4) == 0b1011

    @given(st.integers(0, 255), st.integers(0, 16))
    def test_property_rotation_preserves_bits(self, value, amount):
        rotated = _rotate(value, amount, 8)
        assert bin(rotated).count("1") == bin(value & 0xFF).count("1")


class TestSkewedPredictor:
    def test_learns_bias(self):
        trace = trace_from_outcomes([True] * 400)
        assert SkewedPredictor(8, 8).accuracy(trace) > 0.99

    def test_learns_periodic_pattern(self):
        trace = trace_from_outcomes([True, True, False] * 300)
        assert SkewedPredictor(8, 10).accuracy(trace) > 0.95

    def test_majority_vote_resists_single_bank_conflicts(self):
        # Many branches thrash a tiny gshare PHT; e-gskew's voting over
        # three differently-indexed banks of the same total budget keeps
        # more accuracy.
        rng = random.Random(7)
        sequences = {
            0x100 + 4 * i: [
                rng.random() < (0.97 if i % 2 == 0 else 0.03)
                for _ in range(150)
            ]
            for i in range(24)
        }
        trace = interleave(sequences)
        gshare = GsharePredictor(history_bits=5, pht_bits=5)
        skewed = SkewedPredictor(history_bits=5, bank_bits=5)
        assert skewed.accuracy(trace) > gshare.accuracy(trace) + 0.03

    def test_fast_path_matches_generic_loop(self, small_benchmark_trace):
        trace = small_benchmark_trace[:1500]
        fast = SkewedPredictor(6, 8).simulate(trace)
        slow = simulate(SkewedPredictor(6, 8), trace)
        assert np.array_equal(fast, slow)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SkewedPredictor(history_bits=-1)
        with pytest.raises(ValueError):
            SkewedPredictor(bank_bits=1)

    @settings(max_examples=20)
    @given(st.lists(st.booleans(), min_size=1, max_size=150))
    def test_property_fast_path_equals_slow_path(self, outcomes):
        trace = trace_from_outcomes(outcomes)
        fast = SkewedPredictor(5, 6).simulate(trace)
        slow = simulate(SkewedPredictor(5, 6), trace)
        assert np.array_equal(fast, slow)
