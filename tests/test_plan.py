"""Tests for the task-graph planner (repro.plan)."""

import pytest

from repro.plan import Plan, PlanError, PlanTask, build_plan, tasks_by_id_task
from repro.spec import EngineOptions, RunSpec, SweepSpec, WorkloadSpec
from repro.workloads.suite import BENCHMARK_NAMES


def fig9_spec(**overrides) -> RunSpec:
    defaults = dict(
        experiments=("fig9",),
        workload=WorkloadSpec(max_length=2000, seed=7),
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


class TestPlainPlan:
    def test_one_trace_task_per_benchmark(self):
        plan = build_plan(fig9_spec())
        traces = [t for t in plan.tasks if t.kind == "trace"]
        assert [t.benchmark for t in traces] == BENCHMARK_NAMES
        assert all(t.point == 0 for t in traces)

    def test_only_declared_sims_are_planned(self):
        # fig9 declares requires=("gshare", "pas").
        plan = build_plan(fig9_spec())
        assert plan.sim_task_names(0) == ("gshare", "pas")
        sims = [t for t in plan.tasks if t.kind == "sim"]
        assert len(sims) == 2 * len(BENCHMARK_NAMES)

    def test_sim_depends_on_its_trace(self):
        plan = build_plan(fig9_spec())
        for task in plan.tasks:
            if task.kind == "sim":
                assert task.deps == (f"p0/trace/{task.benchmark}",)

    def test_experiment_depends_on_required_sims(self):
        plan = build_plan(fig9_spec())
        experiment = plan.task_by_id("p0/experiment/fig9")
        assert experiment.experiment_id == "fig9"
        assert len(experiment.deps) == 2 * len(BENCHMARK_NAMES)
        assert {tasks_by_id_task(dep) for dep in experiment.deps} == {
            "gshare",
            "pas",
        }

    def test_statistics_only_experiment_falls_back_to_traces(self):
        # table1 requires no simulations; its deps are the traces.
        plan = build_plan(fig9_spec(experiments=("table1",)))
        assert plan.sim_task_names(0) == ()
        experiment = plan.task_by_id("p0/experiment/table1")
        assert all("/trace/" in dep for dep in experiment.deps)

    def test_render_closes_the_graph(self):
        plan = build_plan(fig9_spec(experiments=("table1", "fig9")))
        render = plan.task_by_id("p0/render")
        assert render.deps == (
            "p0/experiment/table1",
            "p0/experiment/fig9",
        )

    def test_benchmark_subset_is_honoured(self):
        spec = fig9_spec(
            workload=WorkloadSpec(
                max_length=2000, seed=7, benchmarks=("gcc", "compress")
            )
        )
        plan = build_plan(spec)
        traces = [t for t in plan.tasks if t.kind == "trace"]
        assert [t.benchmark for t in traces] == ["gcc", "compress"]

    def test_unknown_experiment_raises(self):
        from repro.errors import UnknownExperimentError

        with pytest.raises(UnknownExperimentError, match="fig99"):
            build_plan(fig9_spec(experiments=("fig99",)))

    def test_no_dedup_within_a_single_point(self):
        plan = build_plan(fig9_spec())
        assert plan.stats()["deduped"] == 0


class TestSweepPlan:
    def sweep_spec(self):
        return fig9_spec(
            sweep=SweepSpec(axes=(("gshare_history_bits", (8, 12)),))
        )

    def test_traces_dedupe_across_points(self):
        plan = build_plan(self.sweep_spec())
        point1_traces = [
            t for t in plan.tasks if t.kind == "trace" and t.point == 1
        ]
        assert point1_traces, "point 1 must still list its traces"
        for task in point1_traces:
            assert task.deduped_from == f"p0/trace/{task.benchmark}"

    def test_unaffected_sims_dedupe_affected_do_not(self):
        # The axis resizes gshare only; pas artefacts are shared.
        plan = build_plan(self.sweep_spec())
        for task in plan.tasks:
            if task.kind != "sim" or task.point != 1:
                continue
            if task.task == "pas":
                assert task.deduped_from == f"p0/sim/{task.benchmark}/pas"
            else:
                assert task.task == "gshare"
                assert task.deduped_from is None

    def test_experiments_rerun_per_point(self):
        plan = build_plan(self.sweep_spec())
        experiments = [t for t in plan.tasks if t.kind == "experiment"]
        assert len(experiments) == 2
        assert all(t.deduped_from is None for t in experiments)
        assert experiments[0].key != experiments[1].key

    def test_deduped_points_still_need_their_sims(self):
        plan = build_plan(self.sweep_spec())
        assert plan.sim_task_names(0) == ("gshare", "pas")
        assert plan.sim_task_names(1) == ("gshare", "pas")

    def test_stats_count_the_sharing(self):
        plan = build_plan(self.sweep_spec())
        stats = plan.stats()
        benchmarks = len(BENCHMARK_NAMES)
        assert stats["trace"] == 2 * benchmarks
        assert stats["sim"] == 4 * benchmarks
        assert stats["experiment"] == 2
        assert stats["render"] == 2
        # Point 1 shares every trace and every pas sim with point 0.
        assert stats["deduped"] == 2 * benchmarks
        assert stats["total"] == sum(
            stats[kind] for kind in ("trace", "sim", "experiment", "render")
        )

    def test_describe_shows_points_and_dedup(self):
        plan = build_plan(self.sweep_spec())
        text = plan.describe()
        assert "2 point(s)" in text
        assert "gshare_history_bits=8" in text
        assert "gshare_history_bits=12" in text
        assert "dedup ->" in text


class TestPlanLookup:
    def test_task_by_id(self):
        plan = build_plan(fig9_spec())
        task = plan.task_by_id("p0/sim/gcc/gshare")
        assert isinstance(task, PlanTask)
        assert task.benchmark == "gcc"
        assert task.task == "gshare"

    def test_point_tasks_partition_the_plan(self):
        plan = build_plan(
            fig9_spec(
                sweep=SweepSpec(axes=(("gshare_history_bits", (8, 12)),))
            )
        )
        assert isinstance(plan, Plan)
        both = plan.point_tasks(0) + plan.point_tasks(1)
        assert len(both) == len(plan.tasks)


class TestRequiresValidation:
    """build_plan fails fast on unplannable requires= declarations."""

    def test_unknown_required_task_raises_plan_error(self):
        from repro.experiments import base

        @base.register("test-bad-requires", requires=("gshar", "gshare"))
        def bad(labs):
            return None

        try:
            with pytest.raises(PlanError) as excinfo:
                build_plan(fig9_spec(experiments=("test-bad-requires",)))
            message = str(excinfo.value)
            assert "test-bad-requires" in message
            assert "'gshar'" in message
            assert "'gshare'" not in message.split("plannable set")[0]
            assert "correlation" in message  # the selective hint
        finally:
            base._REGISTRY.pop("test-bad-requires", None)
            base._REQUIRES.pop("test-bad-requires", None)

    def test_plan_error_is_a_value_error(self):
        assert issubclass(PlanError, ValueError)

    def test_sound_declarations_still_plan(self):
        assert isinstance(build_plan(fig9_spec()), Plan)


class TestChunkedPlan:
    def chunked_spec(self, chunk_branches=512, **overrides):
        return fig9_spec(
            engine=EngineOptions(chunk_branches=chunk_branches), **overrides
        )

    def test_chunkable_sims_expand_into_chunk_tasks(self):
        plan = build_plan(self.chunked_spec())
        chunked = [t for t in plan.tasks if t.chunk is not None]
        assert chunked, "expected chunk tasks at window 512"
        for task in chunked:
            assert task.kind == "sim"
            assert task.id.endswith(f"/c{task.chunk}")
            assert task.num_chunks >= 2
            assert f"|chunk={task.chunk}/{task.num_chunks}@512" in task.key

    def test_chunks_chain_through_the_lane(self):
        plan = build_plan(self.chunked_spec())
        lanes = {}
        for task in plan.tasks:
            if task.chunk is not None:
                lanes.setdefault((task.benchmark, task.task), []).append(task)
        for (benchmark, _), lane in lanes.items():
            lane.sort(key=lambda t: t.chunk)
            trace_id = f"p0/trace/{benchmark}"
            assert lane[0].deps == (trace_id,)
            for previous, current in zip(lane, lane[1:]):
                assert current.deps == (trace_id, previous.id)

    def test_experiments_depend_on_each_lanes_final_chunk(self):
        plan = build_plan(self.chunked_spec())
        final_ids = {
            max(
                (t for t in plan.tasks
                 if t.chunk is not None
                 and (t.benchmark, t.task) == (benchmark, task_name)),
                key=lambda t: t.chunk,
            ).id
            for benchmark in {t.benchmark for t in plan.tasks if t.chunk is not None}
            for task_name in {t.task for t in plan.tasks if t.chunk is not None}
        }
        (experiment,) = [t for t in plan.tasks if t.kind == "experiment"]
        sim_deps = {dep for dep in experiment.deps if "/sim/" in dep}
        assert sim_deps <= final_ids | {dep for dep in sim_deps if "/c" not in dep}
        assert any(dep in final_ids for dep in sim_deps)
        # No intermediate chunk may feed the experiment directly.
        for dep in sim_deps:
            if dep[-2] == "c" or "/c" in dep.rsplit("/", 1)[-1]:
                assert dep in final_ids

    def test_task_name_lookup_strips_the_chunk_segment(self):
        assert tasks_by_id_task("p0/sim/gcc/gshare/c3") == "gshare"
        assert tasks_by_id_task("p0/sim/gcc/gshare") == "gshare"

    def test_window_wider_than_every_trace_means_no_chunking(self):
        wide = build_plan(self.chunked_spec(chunk_branches=1 << 20))
        plain = build_plan(fig9_spec())
        assert [t.id for t in wide.tasks] == [t.id for t in plain.tasks]
        assert all(t.chunk is None for t in wide.tasks)

    def test_window_is_normalized_into_chunk_keys(self):
        plan = build_plan(self.chunked_spec(chunk_branches=510))
        chunked = [t for t in plan.tasks if t.chunk is not None]
        assert chunked
        assert all("@512" in t.key for t in chunked)


class TestMixAxisPlan:
    """Workload-mix sweep axes: trace tasks key on the effective mix."""

    def test_mix_point_gets_its_own_trace_tasks(self):
        spec = fig9_spec(sweep=SweepSpec(axes=(("mix.noise", (1, 2)),)))
        plan = build_plan(spec)
        point0 = [t for t in plan.tasks if t.kind == "trace" and t.point == 0]
        point1 = [t for t in plan.tasks if t.kind == "trace" and t.point == 1]
        # Weight 1 is the identity: point 0 keeps the legacy keys.
        for task in point0:
            assert "mix=" not in task.key
            assert task.deduped_from is None
        # Weight 2 regenerates: distinct keys, no dedup against point 0.
        for task in point1:
            assert "mix=noise=2" in task.key
            assert task.deduped_from is None

    def test_identity_mix_point_keeps_legacy_keys(self):
        swept = build_plan(
            fig9_spec(sweep=SweepSpec(axes=(("mix.noise", (1,)),)))
        )
        plain = build_plan(fig9_spec())
        swept_keys = {t.key for t in swept.tasks if t.kind == "trace"}
        plain_keys = {t.key for t in plain.tasks if t.kind == "trace"}
        assert swept_keys == plain_keys

    def test_unchanged_traces_dedupe_across_config_points(self):
        # A config axis crossed with a fixed mix: the mixed traces are
        # identical at both config points, so point 1 reuses point 0's.
        spec = fig9_spec(
            sweep=SweepSpec(
                axes=(
                    ("gshare_history_bits", (8, 12)),
                    ("mix.noise", (2,)),
                )
            )
        )
        plan = build_plan(spec)
        point1 = [t for t in plan.tasks if t.kind == "trace" and t.point == 1]
        assert point1, "point 1 must still list its traces"
        for task in point1:
            assert task.deduped_from == f"p0/trace/{task.benchmark}"

    def test_mix_axis_splits_sim_tasks_too(self):
        spec = fig9_spec(sweep=SweepSpec(axes=(("mix.noise", (1, 2)),)))
        plan = build_plan(spec)
        point1_sims = [
            t for t in plan.tasks if t.kind == "sim" and t.point == 1
        ]
        assert point1_sims
        for task in point1_sims:
            assert "mix=noise=2" in task.key
            assert task.deduped_from is None

    def test_imported_source_plans_from_entries(self):
        from repro.spec import ImportedSource, TraceEntry

        spec = RunSpec(
            experiments=("fig9",),
            workload=ImportedSource(
                traces=(
                    TraceEntry(
                        name="toy",
                        digest="a" * 32,
                        path="toy.bpt",
                        format="bpt",
                        branches=4000,
                    ),
                )
            ),
        )
        plan = build_plan(spec)
        traces = [t for t in plan.tasks if t.kind == "trace"]
        assert [t.benchmark for t in traces] == ["toy"]
        assert "digest=" + "a" * 32 in traces[0].key
