"""Tests for the classification layer (sections 4 and 5)."""

import numpy as np
import pytest

from repro.analysis.config import LabConfig
from repro.analysis.runner import Lab
from repro.classify.global_local import best_predictor_distribution
from repro.classify.per_address import PER_ADDRESS_CLASSES, classify_per_address

from conftest import interleave, trace_from_outcomes


def synthetic_class_trace():
    """One branch per per-address class, interleaved."""
    import random

    rng = random.Random(31)
    n = 600
    return interleave(
        {
            # ideal-static: heavily biased
            0x10: [True] * n,
            # loop: taken 14x then not-taken (beyond a 6-bit PAs history)
            0x20: ([True] * 14 + [False]) * (n // 15),
            # repeating: fixed pattern of length 5
            0x30: [True, False, True, True, False] * (n // 5),
            # non-repeating: own-history function with flips
            0x40: _selfdep_outcomes(n, rng),
        }
    )


def _selfdep_outcomes(n, rng):
    table = [True, False, False, True]  # XNOR of last two
    history = 0
    outcomes = []
    for _ in range(n):
        value = table[history]
        if rng.random() < 0.06:
            value = not value
        outcomes.append(value)
        history = ((history << 1) | value) & 0b11
    return outcomes


class TestPerAddressClassification:
    @pytest.fixture(scope="class")
    def classification(self):
        lab = Lab(synthetic_class_trace(), LabConfig(if_pas_history_bits=6))
        return classify_per_address(lab)

    def test_biased_branch_is_static(self, classification):
        assert classification.class_of[0x10] == "ideal_static"

    def test_loop_branch_detected(self, classification):
        assert classification.class_of[0x20] == "loop"

    def test_pattern_branch_detected(self, classification):
        assert classification.class_of[0x30] == "repeating"

    def test_selfdep_branch_is_non_repeating(self, classification):
        assert classification.class_of[0x40] == "non_repeating"

    def test_fractions_sum_to_one(self, classification):
        assert sum(classification.dynamic_fractions.values()) == pytest.approx(1.0)

    def test_fraction_labels(self, classification):
        assert set(classification.dynamic_fractions) == set(PER_ADDRESS_CLASSES)

    def test_members_partition(self, classification):
        all_members = set()
        for label in PER_ADDRESS_CLASSES:
            members = classification.members(label)
            assert not (members & all_members)
            all_members |= members
        assert all_members == set(classification.class_of)

    def test_members_unknown_label_rejected(self, classification):
        with pytest.raises(KeyError):
            classification.members("mystery")

    def test_static_best_biased_fraction(self, classification):
        # The only static-best branch is 100% biased.
        assert classification.static_best_biased_fraction == pytest.approx(1.0)


class TestBestPredictorDistribution:
    def test_static_wins_ties(self):
        trace = interleave({1: [True] * 10})
        static = np.ones(10, dtype=bool)
        same = np.ones(10, dtype=bool)
        dist = best_predictor_distribution(trace, {"dyn": [same]}, static)
        assert dist.best_of[1] == "ideal_static"

    def test_group_best_member_counts(self):
        trace = interleave({1: [True] * 10})
        weak = np.zeros(10, dtype=bool)
        strong = np.ones(10, dtype=bool)
        static = np.zeros(10, dtype=bool)
        dist = best_predictor_distribution(
            trace, {"dyn": [weak, strong]}, static
        )
        assert dist.best_of[1] == "dyn"

    def test_earlier_group_wins_ties(self):
        trace = interleave({1: [True] * 10})
        bitmap = np.ones(10, dtype=bool)
        static = np.zeros(10, dtype=bool)
        dist = best_predictor_distribution(
            trace, {"first": [bitmap], "second": [bitmap.copy()]}, static
        )
        assert dist.best_of[1] == "first"

    def test_fractions_are_dynamic_weighted(self):
        trace = interleave({1: [True] * 9, 2: [True]})
        static = np.zeros(10, dtype=bool)
        a = np.zeros(10, dtype=bool)
        idx1 = trace.indices_by_pc()[1]
        a[idx1] = True
        dist = best_predictor_distribution(trace, {"a": [a]}, static)
        assert dist.dynamic_fractions["a"] == pytest.approx(0.9)

    def test_empty_group_rejected(self):
        trace = interleave({1: [True]})
        with pytest.raises(ValueError):
            best_predictor_distribution(trace, {"a": []}, np.ones(1, bool))

    def test_misaligned_bitmaps_rejected(self):
        trace = interleave({1: [True] * 3})
        with pytest.raises(ValueError):
            best_predictor_distribution(
                trace, {"a": [np.ones(2, bool)]}, np.ones(3, bool)
            )
