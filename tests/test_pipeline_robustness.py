"""Pipeline fuzzing: the full analysis stack on arbitrary traces.

Users can bring their own traces (text or .bpt), which will not look
like our workloads: duplicate addresses, degenerate outcomes, single
branches, pathological targets.  Every analysis entry point must handle
them without crashing and with its invariants intact.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.offenders import top_offenders
from repro.analysis.percentile import percentile_difference_curve
from repro.analysis.runner import Lab
from repro.analysis.warmup import warmup_curve
from repro.classify.global_local import best_predictor_distribution
from repro.classify.per_address import PER_ADDRESS_CLASSES, classify_per_address

from conftest import trace_from_steps

arbitrary_traces = st.lists(
    st.tuples(
        st.integers(0, 40),
        st.integers(0, 40),
        st.booleans(),
    ),
    min_size=1,
    max_size=100,
).map(lambda steps: trace_from_steps([(pc * 4, t * 4, k) for pc, t, k in steps]))


@settings(max_examples=25, deadline=None)
@given(trace=arbitrary_traces)
def test_lab_runs_every_predictor_on_arbitrary_traces(trace):
    lab = Lab(trace)
    for name in lab.available_predictors():
        bitmap = lab.correct(name)
        assert len(bitmap) == len(trace)
        assert bitmap.dtype == bool


@settings(max_examples=20, deadline=None)
@given(trace=arbitrary_traces)
def test_classification_invariants_on_arbitrary_traces(trace):
    lab = Lab(trace)
    classification = classify_per_address(lab)
    assert set(classification.class_of) == set(
        int(pc) for pc in trace.static_pcs()
    )
    assert sum(classification.dynamic_fractions.values()) == pytest.approx(1.0)
    for label in classification.dynamic_fractions:
        assert label in PER_ADDRESS_CLASSES
    assert 0.0 <= classification.static_best_biased_fraction <= 1.0


@settings(max_examples=20, deadline=None)
@given(trace=arbitrary_traces)
def test_distribution_invariants_on_arbitrary_traces(trace):
    lab = Lab(trace)
    dist = best_predictor_distribution(
        trace,
        {"g": [lab.correct("gshare")], "p": [lab.correct("pas")]},
        lab.correct("ideal_static"),
    )
    assert sum(dist.dynamic_fractions.values()) == pytest.approx(1.0)
    # Ideal static wins ties, so nothing can beat it on fully biased
    # branches; fractions stay in range regardless.
    for fraction in dist.dynamic_fractions.values():
        assert 0.0 <= fraction <= 1.0


@settings(max_examples=20, deadline=None)
@given(trace=arbitrary_traces)
def test_curves_and_offenders_on_arbitrary_traces(trace):
    lab = Lab(trace)
    gshare = lab.correct("gshare")
    pas = lab.correct("pas")
    curve = percentile_difference_curve(trace, gshare, pas)
    assert list(curve.differences) == sorted(curve.differences)
    assert -100.0 <= curve.tail(0) <= curve.tail(100) <= 100.0

    warm = warmup_curve(trace, gshare)
    assert sum(warm.counts) == len(trace)

    offenders = top_offenders(trace, gshare, count=5)
    assert len(offenders) <= 5
    shares = sum(o.misprediction_share for o in offenders)
    assert shares <= 1.0 + 1e-9


@settings(max_examples=10, deadline=None)
@given(trace=arbitrary_traces)
def test_selective_pipeline_on_arbitrary_traces(trace):
    lab = Lab(trace)
    bitmap = lab.selective_correct(2, window=8)
    assert len(bitmap) == len(trace)
    for selection in lab.selections(2, window=8).values():
        assert 0.0 <= selection.ideal_accuracy <= 1.0
