"""Integration: observability of whole report runs.

The acceptance bar for the observability layer:

* work-unit counters (``sim.simulations``, ``sim.correlation_collections``)
  and result-layer cache counters agree between ``jobs=1`` and ``jobs=4``
  -- worker metric deltas folded in the parent sum to exactly what a
  single process counts;
* experiment results are bit-identical across worker counts and across
  cold/warm cache runs -- instrumentation observes, never perturbs;
* every run manifest validates against the schema, and manifests of
  equivalent runs diff clean on their deterministic sections.
"""

import pytest

from repro.api import run_spec, spec_from_kwargs
from repro.obs.manifest import diff_manifests, validate_manifest


def run_report(experiments, **kwargs):
    return run_spec(spec_from_kwargs(experiments, **kwargs))

# fig5 declares the correlation task (so collections are actually
# scheduled -- the planner primes only declared work); fig6 brings the
# per-address predictor sims.
EXPERIMENTS = ["table1", "fig5", "fig6"]
MAX_LENGTH = 2000

#: Counters that must agree exactly between worker counts.  The
#: trace-layer cache counters are deliberately absent: workers re-read
#: the shared trace entry per task, so trace hits legitimately scale
#: with the schedule (see docs/observability.md).
CONSISTENT_COUNTERS = (
    "sim.simulations",
    "sim.correlation_collections",
    "sim.kernel_fastpath",
    "cache.bitmap.hits",
    "cache.bitmap.misses",
    "cache.bitmap.writes",
    "cache.corr.hits",
    "cache.corr.misses",
    "cache.corr.writes",
    "experiments.run",
)


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serial-cache")
    return run_report(
        EXPERIMENTS, max_length=MAX_LENGTH, jobs=1, cache_dir=str(cache_dir)
    )


@pytest.fixture(scope="module")
def parallel_cache(tmp_path_factory):
    return tmp_path_factory.mktemp("parallel-cache")


@pytest.fixture(scope="module")
def parallel_run(parallel_cache):
    return run_report(
        EXPERIMENTS,
        max_length=MAX_LENGTH,
        jobs=4,
        cache_dir=str(parallel_cache),
    )


class TestCrossProcessConsistency:
    def test_work_and_cache_counters_match(self, serial_run, parallel_run):
        serial = serial_run.metrics["counters"]
        parallel = parallel_run.metrics["counters"]
        for name in CONSISTENT_COUNTERS:
            assert serial.get(name, 0) == parallel.get(name, 0), name

    def test_simulations_actually_happened(self, serial_run):
        counters = serial_run.metrics["counters"]
        assert counters["sim.simulations"] > 0
        assert counters["sim.correlation_collections"] == 8

    def test_parallel_run_used_workers(self, parallel_run):
        assert parallel_run.metrics["gauges"]["parallel.workers"] == 4
        assert parallel_run.metrics["counters"]["parallel.jobs_executed"] > 0
        assert "parallel.job_seconds" in parallel_run.metrics["timers"]

    def test_results_bit_identical_across_worker_counts(
        self, serial_run, parallel_run
    ):
        for experiment_id in EXPERIMENTS:
            assert (
                serial_run.results[experiment_id].to_json()
                == parallel_run.results[experiment_id].to_json()
            )

    def test_manifests_validate_and_diff_clean(self, serial_run, parallel_run):
        assert validate_manifest(serial_run.manifest) == []
        assert validate_manifest(parallel_run.manifest) == []
        assert diff_manifests(serial_run.manifest, parallel_run.manifest) == []


class TestWarmCache:
    def test_warm_run_is_pure_hits_and_identical(
        self, parallel_run, parallel_cache
    ):
        warm = run_report(
            EXPERIMENTS,
            max_length=MAX_LENGTH,
            jobs=4,
            cache_dir=str(parallel_cache),
        )
        cache = warm.manifest["cache"]
        assert cache["result_misses"] == 0
        assert cache["result_hits"] > 0
        assert cache["hit_ratio"] == 1.0
        counters = warm.metrics["counters"]
        # Nothing was recomputed...
        assert counters.get("sim.simulations", 0) == 0
        assert counters.get("sim.correlation_collections", 0) == 0
        # ...and the outputs did not move.
        for experiment_id in EXPERIMENTS:
            assert (
                warm.results[experiment_id].to_json()
                == parallel_run.results[experiment_id].to_json()
            )
        assert diff_manifests(parallel_run.manifest, warm.manifest) == []
