"""Tests for oracle selection of correlated branches (section 3.4)."""

import pytest

from repro.correlation.selection import (
    SelectionConfig,
    joint_ideal_accuracy,
    select_for_branch,
    select_for_trace,
    single_tag_score,
)
from repro.correlation.tagging import (
    TAG_OCCURRENCE,
    collect_correlation_data,
)

import numpy as np

from conftest import trace_from_steps


def _fig1a_trace(n=300, seed=3):
    """Y: if (c1); X: if (c1 AND c2) -- X fully determined when Y not taken."""
    import random

    rng = random.Random(seed)
    steps = []
    for _ in range(n):
        c1 = rng.random() < 0.5
        c2 = rng.random() < 0.5
        steps.append((0x100, 0x200, c1))          # Y
        steps.append((0x300, 0x400, c1 and c2))   # X
    return trace_from_steps(steps)


def _fig1c_trace(n=300, seed=4):
    """Y: if (c1); Z: if (c2); X: if (c1 AND c2) -- needs both."""
    import random

    rng = random.Random(seed)
    steps = []
    for _ in range(n):
        c1 = rng.random() < 0.5
        c2 = rng.random() < 0.5
        steps.append((0x100, 0x200, c1))
        steps.append((0x500, 0x600, c2))
        steps.append((0x300, 0x400, c1 and c2))
    return trace_from_steps(steps)


class TestSingleTagScore:
    def test_perfectly_correlated_tag_scores_one(self):
        trace = _fig1a_trace()
        data = collect_correlation_data(trace, window=8)
        branch_x = data.branches[0x300]
        # Knowing Y (and c2 when Y taken is still uncertain): score of Y
        # = P(Y not taken) * 1 + P(Y taken) * max(c2, 1-c2) ~ 0.75.
        score = single_tag_score(branch_x, (TAG_OCCURRENCE, 0x100, 0), window=8)
        assert 0.65 < score < 0.85

    def test_uninformative_tag_scores_bias(self):
        import random

        rng = random.Random(5)
        steps = []
        for _ in range(300):
            steps.append((0x100, 0x200, rng.random() < 0.5))
            steps.append((0x300, 0x400, rng.random() < 0.7))
        trace = trace_from_steps(steps)
        data = collect_correlation_data(trace, window=8)
        branch = data.branches[0x300]
        score = single_tag_score(branch, (TAG_OCCURRENCE, 0x100, 0), window=8)
        assert score == pytest.approx(0.7, abs=0.08)


class TestJointScore:
    def test_two_tags_determine_fig1c(self):
        trace = _fig1c_trace()
        data = collect_correlation_data(trace, window=8)
        branch_x = data.branches[0x300]
        y_states = branch_x.state_vector((TAG_OCCURRENCE, 0x100, 0), 8)
        z_states = branch_x.state_vector((TAG_OCCURRENCE, 0x500, 0), 8)
        joint = joint_ideal_accuracy([y_states, z_states], branch_x.outcomes)
        assert joint > 0.99

    def test_empty_outcomes(self):
        assert joint_ideal_accuracy([], np.array([], dtype=bool)) == 0.0


class TestSelectForBranch:
    def test_selects_the_correlated_branch(self):
        trace = _fig1a_trace()
        data = collect_correlation_data(trace, window=8)
        selection = select_for_branch(
            data.branches[0x300], 1, SelectionConfig(window=8)
        )
        assert selection.tags[0][1] == 0x100  # Y's address

    def test_fig1c_needs_two_branches(self):
        trace = _fig1c_trace()
        data = collect_correlation_data(trace, window=8)
        config = SelectionConfig(window=8)
        one = select_for_branch(data.branches[0x300], 1, config)
        two = select_for_branch(data.branches[0x300], 2, config)
        assert two.ideal_accuracy > one.ideal_accuracy + 0.1
        assert {tag[1] for tag in two.tags} == {0x100, 0x500}

    def test_count_validation(self):
        trace = _fig1a_trace(50)
        data = collect_correlation_data(trace, window=8)
        with pytest.raises(ValueError):
            select_for_branch(data.branches[0x300], 0)

    def test_no_candidates_returns_bias(self):
        # A branch with a single instance: every tag falls below the
        # absolute support floor.
        trace = trace_from_steps([(1, 2, True), (3, 4, True)])
        data = collect_correlation_data(trace, window=8)
        selection = select_for_branch(
            data.branches[3], 1, SelectionConfig(window=8)
        )
        assert selection.tags == ()
        assert selection.ideal_accuracy == 1.0

    def test_more_branches_never_hurt_ideal_accuracy(self):
        trace = _fig1c_trace()
        data = collect_correlation_data(trace, window=8)
        config = SelectionConfig(window=8)
        branch = data.branches[0x300]
        scores = [
            select_for_branch(branch, count, config).ideal_accuracy
            for count in (1, 2, 3)
        ]
        assert scores == sorted(scores)


class TestSelectForTrace:
    def test_selects_for_every_branch(self):
        trace = _fig1a_trace(100)
        data = collect_correlation_data(trace, window=8)
        selections = select_for_trace(data, 1, SelectionConfig(window=8))
        assert set(selections) == {0x100, 0x300}

    def test_window_cannot_exceed_collection(self):
        trace = _fig1a_trace(50)
        data = collect_correlation_data(trace, window=8)
        with pytest.raises(ValueError):
            select_for_trace(data, 1, SelectionConfig(window=16))
