"""Tests for the worker-safety pass (repro.check.workers)."""

from pathlib import Path

import pytest

from repro.check.diagnostics import ERROR
from repro.check.workers import WORKER_SAFE_GLOBALS, analyze_worker_safety

FIXTURES = Path(__file__).parent / "fixtures" / "check_defects"
BAD_WORKER = FIXTURES / "bad_worker.py"


def codes(diagnostics):
    return [diag.code for diag in diagnostics]


def by_code(diagnostics, code):
    return [diag for diag in diagnostics if diag.code == code]


class TestRealTreeIsClean:
    def test_shipped_scheduler_passes(self):
        assert analyze_worker_safety() == []

    def test_telemetry_singletons_are_allowlisted(self):
        # The delta-shipping protocol depends on these staying exempt.
        assert "METRICS" in WORKER_SAFE_GLOBALS
        assert "TRACER" in WORKER_SAFE_GLOBALS


class TestSeededWorkerDefects:
    @pytest.fixture(scope="class")
    def diagnostics(self):
        return analyze_worker_safety(
            entry_path=str(BAD_WORKER),
            entry_functions=("compute_task",),
        )

    def test_exact_code_multiset(self, diagnostics):
        assert sorted(codes(diagnostics)) == [
            "WS001", "WS001", "WS001", "WS002", "WS002", "WS003",
            "WS004", "WS004",
        ]

    def test_all_findings_are_errors(self, diagnostics):
        assert all(diag.severity == ERROR for diag in diagnostics)

    def test_ws001_sees_through_reachable_helpers(self, diagnostics):
        # compute_task itself never mutates; _record and _fold do.
        messages = [diag.message for diag in by_code(diagnostics, "WS001")]
        assert any("'_RESULTS'" in m and "_record()" in m for m in messages)
        assert any("'_LOG'" in m and "_record()" in m for m in messages)
        assert any("'_SEEN'" in m and "_fold()" in m for m in messages)

    def test_ws002_flags_lambda_and_nested_function(self, diagnostics):
        messages = [diag.message for diag in by_code(diagnostics, "WS002")]
        assert any("lambda" in m for m in messages)
        assert any("'_local_job'" in m for m in messages)

    def test_ws003_flags_set_iteration_in_fold(self, diagnostics):
        (finding,) = by_code(diagnostics, "WS003")
        assert "set" in finding.message
        assert finding.location.endswith(":22")

    def test_ws004_flags_whole_trace_submissions(self, diagnostics):
        messages = [diag.message for diag in by_code(diagnostics, "WS004")]
        assert any("'.trace'" in m for m in messages)
        assert any("'loaded'" in m for m in messages)
        assert all("shared-memory" in m for m in messages)

    def test_clean_fold_stays_silent(self, diagnostics):
        # fold_clean's sorted() iteration must not fire WS003.
        assert not any(
            diag.location.endswith(":59") for diag in diagnostics
        )


class TestEntryResolution:
    def test_missing_entry_point_reports_ws000(self):
        diagnostics = analyze_worker_safety(
            entry_path=str(BAD_WORKER),
            entry_functions=("no_such_function",),
        )
        assert codes(diagnostics) == ["WS000"]
        assert "no_such_function" in diagnostics[0].message

    def test_suppression_comment_silences_a_finding(self, tmp_path):
        source = BAD_WORKER.read_text(encoding="utf-8")
        patched = source.replace(
            '    for task in {"gshare", "pas", "loop"}:',
            '    for task in {"gshare", "pas", "loop"}:  # check: ignore',
        )
        assert patched != source
        target = tmp_path / "suppressed_worker.py"
        target.write_text(patched, encoding="utf-8")
        diagnostics = analyze_worker_safety(
            entry_path=str(target), entry_functions=("compute_task",)
        )
        assert "WS003" not in codes(diagnostics)
        assert "WS001" in codes(diagnostics)  # the rest still fire
