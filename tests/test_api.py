"""Tests for the public facade (repro.api) and package re-exports."""

import pytest

from repro.api import (
    RESULT_SCHEMA,
    ReportRun,
    UnknownExperimentError,
    generate_suite,
    run_spec,
    spec_from_kwargs,
)


def report(experiments, **kwargs):
    outputs = {
        name: kwargs.pop(name)
        for name in (
            "json_out", "manifest_out", "result_out", "metrics_out",
            "trace_out", "echo",
        )
        if name in kwargs
    }
    return run_spec(spec_from_kwargs(experiments, **kwargs), **outputs)


class TestFacadeSurface:
    def test_package_reexports(self):
        import repro

        assert repro.run_spec is run_spec
        assert repro.spec_from_kwargs is spec_from_kwargs
        assert repro.ReportRun is ReportRun
        for name in (
            "Lab",
            "LabConfig",
            "EngineSession",
            "SpecError",
            "build_labs",
            "generate_suite",
            "run_experiment",
        ):
            assert hasattr(repro, name), name

    def test_run_report_shim_is_gone(self):
        import repro
        import repro.api

        assert not hasattr(repro, "run_report")
        assert not hasattr(repro.api, "run_report")

    def test_facade_matches_deep_paths(self):
        # The facade re-exports; it does not fork the implementation.
        import repro
        from repro.analysis.config import LabConfig as DeepConfig
        from repro.analysis.runner import Lab as DeepLab
        from repro.experiments.base import build_labs as deep_build_labs
        from repro.experiments.base import run_experiment as deep_run

        assert repro.Lab is DeepLab
        assert repro.LabConfig is DeepConfig
        assert repro.build_labs is deep_build_labs
        assert repro.run_experiment is deep_run

    def test_generate_suite_returns_paper_benchmarks(self):
        from repro.workloads.suite import BENCHMARK_NAMES

        traces = generate_suite(max_length=2000)
        assert sorted(traces) == sorted(BENCHMARK_NAMES)
        assert all(len(trace) > 0 for trace in traces.values())


class TestRunSpecFacade:
    def test_unknown_experiment_raises_spec_error(self):
        with pytest.raises(UnknownExperimentError, match="fig99"):
            report(["fig99"], max_length=2000, use_cache=False)
        # Pre-taxonomy callers caught ValueError; that still works.
        with pytest.raises(ValueError, match="fig99"):
            report(["fig99"], max_length=2000, use_cache=False)

    def test_single_experiment_run(self, tmp_path):
        run = report(
            ["table1"],
            max_length=2000,
            cache_dir=str(tmp_path / "c"),
            jobs=1,
        )
        assert isinstance(run, ReportRun)
        assert list(run.results) == ["table1"]
        assert run.results["table1"].experiment_id == "table1"
        assert len(run.labs) == 8
        assert validate_clean(run.manifest)
        assert run.metrics["counters"]["experiments.run"] == 1

    def test_duplicates_run_once(self, tmp_path):
        run = report(
            ["table1", "table1"],
            max_length=2000,
            cache_dir=str(tmp_path / "c"),
            jobs=1,
        )
        assert list(run.results) == ["table1"]
        assert run.metrics["counters"]["experiments.run"] == 1

    def test_echo_preserves_cli_progress_lines(self, tmp_path):
        lines = []
        report(
            ["table1"],
            max_length=2000,
            cache_dir=str(tmp_path / "c"),
            jobs=2,
            echo=lines.append,
        )
        text = "\n".join(lines)
        assert "building workload traces..." in text
        assert "running table1..." in text
        assert "jobs: 2" in text
        assert "cache:" in text

    def test_silent_without_echo(self, tmp_path, capsys):
        report(
            ["table1"], max_length=2000, cache_dir=str(tmp_path / "c"), jobs=1
        )
        captured = capsys.readouterr()
        assert captured.out == ""

    def test_no_cache_run_has_cache_disabled_manifest(self):
        run = report(["table1"], max_length=2000, use_cache=False, jobs=1)
        assert run.manifest["cache"]["enabled"] is False
        assert run.manifest["cache"]["dir"] is None

    def test_artifacts_written(self, tmp_path):
        import json

        manifest_path = tmp_path / "m.json"
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "spans.json"
        json_path = tmp_path / "results.json"
        report(
            ["table1"],
            max_length=2000,
            cache_dir=str(tmp_path / "c"),
            jobs=1,
            manifest_out=str(manifest_path),
            metrics_out=str(metrics_path),
            trace_out=str(trace_path),
            json_out=str(json_path),
        )
        manifest = json.loads(manifest_path.read_text())
        assert validate_clean(manifest)
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["experiments.run"] == 1
        spans = json.loads(trace_path.read_text())
        names = {event["name"] for event in spans["traceEvents"]}
        assert "report" in names
        assert "build_labs" in names
        results = json.loads(json_path.read_text())
        assert results["table1"]["schema_version"] == 2


class TestResultEnvelope:
    def test_report_envelope_shape(self, tmp_path):
        run = report(
            ["table1"], max_length=2000, cache_dir=str(tmp_path / "c"), jobs=1
        )
        doc = run.to_dict()
        assert doc["schema"] == RESULT_SCHEMA
        assert doc["kind"] == "report"
        assert doc["ok"] is True
        assert doc["spec_digest"] == run.spec.digest()
        assert doc["spec"] == run.spec.identity()
        assert doc["manifest"] == run.manifest
        assert set(doc["results"]) == {"table1"}
        entry = doc["results"]["table1"]
        assert entry["payload"] == run.results["table1"].to_dict()
        assert entry["render"] == run.results["table1"].render()

    def test_result_out_writes_canonical_envelope(self, tmp_path):
        import json

        result_path = tmp_path / "result.json"
        run = report(
            ["table1"],
            max_length=2000,
            cache_dir=str(tmp_path / "c"),
            jobs=1,
            result_out=str(result_path),
        )
        on_disk = json.loads(result_path.read_text())
        assert on_disk == json.loads(
            json.dumps(run.to_dict(), sort_keys=True)
        )

    def test_envelope_is_engine_independent(self, tmp_path):
        # Same identity, different engine options: identical envelope
        # identity fields (the dedup/wire-compat property the server
        # depends on).
        one = report(
            ["table1"], max_length=2000, cache_dir=str(tmp_path / "a"), jobs=1
        )
        two = report(
            ["table1"], max_length=2000, cache_dir=str(tmp_path / "b"), jobs=2
        )
        assert one.to_dict()["spec"] == two.to_dict()["spec"]
        assert one.to_dict()["spec_digest"] == two.to_dict()["spec_digest"]

    def test_sweep_envelope_embeds_point_envelopes(self, tmp_path):
        import dataclasses

        from repro.spec import SweepSpec

        spec = spec_from_kwargs(
            ["fig9"], max_length=2000, cache_dir=str(tmp_path / "c"), jobs=1
        )
        spec = dataclasses.replace(
            spec, sweep=SweepSpec(axes=(("gshare_history_bits", (4, 6)),))
        )
        sweep = run_spec(spec)
        doc = sweep.to_dict()
        assert doc["schema"] == RESULT_SCHEMA
        assert doc["kind"] == "sweep"
        assert len(doc["points"]) == 2
        for point in doc["points"]:
            assert point["schema"] == RESULT_SCHEMA
            assert point["kind"] == "point"
            assert point["report"]["kind"] == "report"


def validate_clean(manifest):
    from repro.obs.manifest import validate_manifest

    errors = validate_manifest(manifest)
    assert errors == [], errors
    return True
