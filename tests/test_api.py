"""Tests for the public facade (repro.api) and package re-exports."""

import pytest

from repro.api import ReportRun, generate_suite, run_report


class TestFacadeSurface:
    def test_package_reexports(self):
        import repro

        assert repro.run_report is run_report
        assert repro.ReportRun is ReportRun
        for name in (
            "Lab",
            "LabConfig",
            "build_labs",
            "generate_suite",
            "run_experiment",
        ):
            assert hasattr(repro, name), name

    def test_facade_matches_deep_paths(self):
        # The facade re-exports; it does not fork the implementation.
        import repro
        from repro.analysis.config import LabConfig as DeepConfig
        from repro.analysis.runner import Lab as DeepLab
        from repro.experiments.base import build_labs as deep_build_labs
        from repro.experiments.base import run_experiment as deep_run

        assert repro.Lab is DeepLab
        assert repro.LabConfig is DeepConfig
        assert repro.build_labs is deep_build_labs
        assert repro.run_experiment is deep_run

    def test_generate_suite_returns_paper_benchmarks(self):
        from repro.workloads.suite import BENCHMARK_NAMES

        traces = generate_suite(max_length=2000)
        assert sorted(traces) == sorted(BENCHMARK_NAMES)
        assert all(len(trace) > 0 for trace in traces.values())


class TestRunReport:
    def test_unknown_experiment_raises_keyerror(self):
        with pytest.raises(KeyError, match="fig99"):
            run_report(["fig99"], max_length=2000, use_cache=False)

    def test_single_experiment_run(self, tmp_path):
        run = run_report(
            ["table1"],
            max_length=2000,
            cache_dir=str(tmp_path / "c"),
            jobs=1,
        )
        assert isinstance(run, ReportRun)
        assert list(run.results) == ["table1"]
        assert run.results["table1"].experiment_id == "table1"
        assert len(run.labs) == 8
        assert validate_clean(run.manifest)
        assert run.metrics["counters"]["experiments.run"] == 1

    def test_duplicates_run_once(self, tmp_path):
        run = run_report(
            ["table1", "table1"],
            max_length=2000,
            cache_dir=str(tmp_path / "c"),
            jobs=1,
        )
        assert list(run.results) == ["table1"]
        assert run.metrics["counters"]["experiments.run"] == 1

    def test_echo_preserves_cli_progress_lines(self, tmp_path):
        lines = []
        run_report(
            ["table1"],
            max_length=2000,
            cache_dir=str(tmp_path / "c"),
            jobs=2,
            echo=lines.append,
        )
        text = "\n".join(lines)
        assert "building workload traces..." in text
        assert "running table1..." in text
        assert "jobs: 2" in text
        assert "cache:" in text

    def test_silent_without_echo(self, tmp_path, capsys):
        run_report(
            ["table1"], max_length=2000, cache_dir=str(tmp_path / "c"), jobs=1
        )
        captured = capsys.readouterr()
        assert captured.out == ""

    def test_no_cache_run_has_cache_disabled_manifest(self):
        run = run_report(["table1"], max_length=2000, use_cache=False, jobs=1)
        assert run.manifest["cache"]["enabled"] is False
        assert run.manifest["cache"]["dir"] is None

    def test_artifacts_written(self, tmp_path):
        import json

        manifest_path = tmp_path / "m.json"
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "spans.json"
        json_path = tmp_path / "results.json"
        run_report(
            ["table1"],
            max_length=2000,
            cache_dir=str(tmp_path / "c"),
            jobs=1,
            manifest_out=str(manifest_path),
            metrics_out=str(metrics_path),
            trace_out=str(trace_path),
            json_out=str(json_path),
        )
        manifest = json.loads(manifest_path.read_text())
        assert validate_clean(manifest)
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["experiments.run"] == 1
        spans = json.loads(trace_path.read_text())
        names = {event["name"] for event in spans["traceEvents"]}
        assert "report" in names
        assert "build_labs" in names
        results = json.loads(json_path.read_text())
        assert results["table1"]["schema_version"] == 2


def validate_clean(manifest):
    from repro.obs.manifest import validate_manifest

    errors = validate_manifest(manifest)
    assert errors == [], errors
    return True
