"""Tests for span tracing (repro.obs.tracing)."""

import json

from repro.obs.tracing import Tracer


class TestSpanTree:
    def test_spans_nest_into_children(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        assert outer.children == [inner]
        assert inner.children == []

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (root,) = tracer.roots
        assert [child.name for child in root.children] == ["a", "b"]

    def test_span_records_attrs_and_duration(self):
        tracer = Tracer()
        with tracer.span("work", predictor="gshare", n=3) as node:
            pass
        assert node.attrs == {"predictor": "gshare", "n": 3}
        assert node.duration >= 0.0
        assert node.start >= 0.0

    def test_span_closed_even_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("fails"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        # The next span must be a new root, not a child of "fails".
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["fails", "after"]

    def test_reset_drops_spans(self):
        tracer = Tracer()
        with tracer.span("old"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.chrome_events() == []


class TestChromeExport:
    def test_events_flatten_whole_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = tracer.chrome_events()
        assert [event["name"] for event in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)

    def test_child_event_names_its_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer_event, inner_event = tracer.chrome_events()
        assert "parent" not in outer_event["args"]
        assert inner_event["args"]["parent"] == "outer"

    def test_foreign_worker_events_are_appended(self):
        tracer = Tracer()
        foreign = [{"name": "job", "ph": "X", "ts": 0, "dur": 1,
                    "pid": 999, "tid": 1, "args": {}}]
        tracer.add_events(foreign)
        events = tracer.chrome_events()
        assert events[-1]["pid"] == 999

    def test_write_emits_trace_events_envelope(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run", seed=1):
            pass
        path = tmp_path / "spans.json"
        tracer.write(str(path))
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["traceEvents"][0]["name"] == "run"
        assert payload["displayTimeUnit"] == "ms"
