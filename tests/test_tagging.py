"""Tests for instance tagging and correlation-data collection."""

import numpy as np
import pytest

from repro.correlation.tagging import (
    STATE_ABSENT,
    STATE_NOT_TAKEN,
    STATE_TAKEN,
    TAG_BACKWARD,
    TAG_OCCURRENCE,
    collect_correlation_data,
)

from conftest import trace_from_steps, trace_from_string


class TestCollection:
    def test_window_bounds(self):
        trace = trace_from_string("TNT")
        with pytest.raises(ValueError):
            collect_correlation_data(trace, window=0)
        with pytest.raises(ValueError):
            collect_correlation_data(trace, window=33)

    def test_every_branch_collected(self):
        trace = trace_from_steps([(1, 2, True), (3, 4, False), (1, 2, True)])
        data = collect_correlation_data(trace, window=8)
        assert set(data.branches) == {1, 3}
        assert data.branches[1].num_instances() == 2
        assert data.branches[3].num_instances() == 1

    def test_outcomes_and_indices_align(self):
        trace = trace_from_steps(
            [(1, 2, True), (3, 4, False), (1, 2, False), (3, 4, True)]
        )
        data = collect_correlation_data(trace, window=8)
        branch = data.branches[1]
        assert list(branch.trace_indices) == [0, 2]
        assert list(branch.outcomes) == [True, False]

    def test_occurrence_tags_number_from_most_recent(self):
        # Trace: A A A B -- at B, A appears three times: A0 (depth 1),
        # A1 (depth 2), A2 (depth 3).
        steps = [(10, 20, True), (10, 20, False), (10, 20, True), (99, 100, True)]
        trace = trace_from_steps(steps)
        data = collect_correlation_data(trace, window=8)
        branch_b = data.branches[99]
        for occurrence, expected_depth, expected_outcome in [
            (0, 1, True),
            (1, 2, False),
            (2, 3, True),
        ]:
            tag = (TAG_OCCURRENCE, 10, occurrence)
            indices, depths, outcomes = branch_b.decode_tag(tag)
            assert list(depths) == [expected_depth]
            assert list(outcomes) == [int(expected_outcome)]

    def test_backward_tags_count_intervening_backward_branches(self):
        # Layout: X (forward), L (backward), X2 (forward), B.
        steps = [
            (0x100, 0x200, True),   # X: forward
            (0x300, 0x100, True),   # L: backward (loop-closing)
            (0x400, 0x500, False),  # X2: forward
            (0x600, 0x700, True),   # B: current
        ]
        trace = trace_from_steps(steps)
        data = collect_correlation_data(trace, window=8)
        branch_b = data.branches[0x600]
        # X2 has no backward branches between itself and B.
        assert (TAG_BACKWARD, 0x400, 0) in branch_b.tag_entries
        # L: nothing backward strictly between L and B except X2 (forward).
        assert (TAG_BACKWARD, 0x300, 0) in branch_b.tag_entries
        # X is separated from B by L (one backward branch).
        assert (TAG_BACKWARD, 0x100, 1) in branch_b.tag_entries

    def test_backward_tag_duplicates_keep_most_recent(self):
        # A executes twice between backward branches: both instances get
        # backward count 0; only the most recent is recorded.
        steps = [
            (10, 20, True),    # A (older, depth 2)
            (10, 20, False),   # A (newer, depth 1)
            (99, 100, True),   # current
        ]
        trace = trace_from_steps(steps)
        data = collect_correlation_data(trace, window=8)
        branch = data.branches[99]
        indices, depths, outcomes = branch.decode_tag((TAG_BACKWARD, 10, 0))
        assert list(depths) == [1]
        assert list(outcomes) == [0]
        # The occurrence scheme still distinguishes them.
        assert (TAG_OCCURRENCE, 10, 0) in branch.tag_entries
        assert (TAG_OCCURRENCE, 10, 1) in branch.tag_entries


class TestStateVectors:
    def test_three_states(self):
        # Branch B at trace positions 1, 3, 5; A precedes it at 0 and 4
        # but not at position 2.
        steps = [
            (10, 20, True),    # A taken
            (99, 100, True),   # B instance 0: A0 present taken
            (99, 100, False),  # B instance 1: A0 at depth 2
            (10, 20, False),   # A not taken
            (99, 100, True),   # B instance 2
        ]
        trace = trace_from_steps(steps)
        data = collect_correlation_data(trace, window=1)
        branch = data.branches[99]
        states = branch.state_vector((TAG_OCCURRENCE, 10, 0), window=1)
        assert states[0] == STATE_TAKEN
        assert states[1] == STATE_ABSENT  # depth 2 > window 1
        assert states[2] == STATE_NOT_TAKEN

    def test_window_filtering_uses_depth(self):
        steps = [
            (10, 20, True),
            (11, 21, True),
            (12, 22, True),
            (99, 100, True),
        ]
        trace = trace_from_steps(steps)
        data = collect_correlation_data(trace, window=8)
        branch = data.branches[99]
        tag = (TAG_OCCURRENCE, 10, 0)  # depth 3 from the current branch
        assert branch.state_vector(tag, window=3)[0] == STATE_TAKEN
        assert branch.state_vector(tag, window=2)[0] == STATE_ABSENT

    def test_self_correlation_possible(self):
        # A branch sees its own previous instances in its history --
        # required for loop behaviour to be capturable as correlation.
        trace = trace_from_string("TNTNTN")
        data = collect_correlation_data(trace, window=4)
        branch = data.branches[0x100]
        tag = (TAG_OCCURRENCE, 0x100, 0)
        states = branch.state_vector(tag, window=4)
        assert states[0] == STATE_ABSENT  # first instance has no history
        assert states[1] == STATE_TAKEN
        assert states[2] == STATE_NOT_TAKEN

    def test_collection_window_caps_depth(self):
        steps = [(10, 20, True)] + [(50 + i, 60, False) for i in range(5)] + [
            (99, 100, True)
        ]
        trace = trace_from_steps(steps)
        data = collect_correlation_data(trace, window=4)
        branch = data.branches[99]
        # Branch 10 is 6 deep; with a collection window of 4 it is never
        # recorded.
        assert (TAG_OCCURRENCE, 10, 0) not in branch.tag_entries
