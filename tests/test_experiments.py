"""Tests for the experiment suite (every table and figure runs)."""

import pytest

from repro.analysis.runner import Lab
from repro.experiments.base import (
    EXPERIMENT_IDS,
    EXTENSION_IDS,
    build_labs,
    experiment_ids,
    run_experiment,
)
from repro.experiments.fig5 import HISTORY_LENGTHS
from repro.workloads.suite import BENCHMARK_NAMES, load_benchmark


@pytest.fixture(scope="module")
def labs():
    """Small labs over a 3-benchmark subset (keeps the module fast)."""
    return {
        name: Lab(load_benchmark(name, length=6000, run_seed=19))
        for name in ("gcc", "m88ksim", "vortex")
    }


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        registered = set(experiment_ids())
        assert set(EXPERIMENT_IDS) <= registered
        assert set(EXTENSION_IDS) <= registered
        assert len(EXPERIMENT_IDS) == 9

    def test_unknown_experiment_rejected(self, labs):
        with pytest.raises(KeyError):
            run_experiment("fig99", labs)

    def test_build_labs_covers_suite(self):
        labs = build_labs(max_length=3000)
        assert set(labs) == set(BENCHMARK_NAMES)


class TestEveryExperimentRuns:
    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_runs_and_renders(self, labs, experiment_id):
        result = run_experiment(experiment_id, labs)
        assert result.experiment_id == experiment_id
        text = result.render()
        assert text
        # Every per-benchmark experiment mentions each benchmark.
        for name in labs:
            assert name in text
        assert experiment_id in str(result)


class TestExperimentSemantics:
    def test_table1_row_counts(self, labs):
        result = run_experiment("table1", labs)
        assert result.rows["gcc"].trace_length == 6000
        assert result.rows["gcc"].static_branches > 100

    def test_fig4_accuracies_in_range(self, labs):
        result = run_experiment("fig4", labs)
        for row in result.rows.values():
            for value in (
                row.selective_1,
                row.selective_2,
                row.selective_3,
                row.if_gshare,
                row.gshare,
            ):
                assert 50.0 < value <= 100.0

    def test_fig4_selective_monotone_in_ideal_terms(self, labs):
        # Counter replay can dip slightly, but 3 branches should never be
        # far below 1 branch.
        result = run_experiment("fig4", labs)
        for row in result.rows.values():
            assert row.selective_3 >= row.selective_1 - 0.5

    def test_fig5_has_all_history_lengths(self, labs):
        result = run_experiment("fig5", labs)
        for curve in result.curves.values():
            assert set(curve) == set(HISTORY_LENGTHS)

    def test_table2_combiner_never_below_gshare(self, labs):
        result = run_experiment("table2", labs)
        for row in result.rows.values():
            assert row.gshare_with_corr >= row.gshare
            assert row.if_gshare_with_corr >= row.if_gshare

    def test_table2_gcc_gains_most(self, labs):
        result = run_experiment("table2", labs)
        gains = {name: row.gain for name, row in result.rows.items()}
        assert gains["gcc"] == max(gains.values())

    def test_fig6_fractions_sum_to_one(self, labs):
        result = run_experiment("fig6", labs)
        for classification in result.classifications.values():
            assert sum(classification.dynamic_fractions.values()) == pytest.approx(1.0)

    def test_table3_loop_combiner_changes_only_loop_branches(self, labs):
        result = run_experiment("table3", labs)
        for row in result.rows.values():
            # Gains may be small but the construction must not corrupt
            # overall accuracy ranges.
            assert 50.0 < row.pas_with_loop <= 100.0

    def test_fig7_fractions_sum_to_one(self, labs):
        result = run_experiment("fig7", labs)
        for dist in result.distributions.values():
            assert sum(dist.dynamic_fractions.values()) == pytest.approx(1.0)

    def test_fig8_static_best_no_larger_than_fig7(self, labs):
        # Richer predictors can only shrink the static-best set.
        fig7 = run_experiment("fig7", labs)
        fig8 = run_experiment("fig8", labs)
        for name in labs:
            assert (
                fig8.distributions[name].dynamic_fractions["ideal_static"]
                <= fig7.distributions[name].dynamic_fractions["ideal_static"] + 1e-9
            )

    def test_fig9_curve_monotone(self, labs):
        result = run_experiment("fig9", labs)
        for curve in result.curves.values():
            diffs = list(curve.differences)
            assert diffs == sorted(diffs)
