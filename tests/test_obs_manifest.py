"""Tests for run manifests (repro.obs.manifest) and the obs CLI."""

import json

import pytest

from repro.analysis.config import LabConfig
from repro.obs.manifest import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    config_digest,
    diff_manifests,
    read_manifest,
    summarize_manifest,
    validate_manifest,
    write_manifest,
)


class FakeTrace:
    def __init__(self, digest, length):
        self._digest = digest
        self._length = length

    def digest(self):
        return self._digest

    def __len__(self):
        return self._length


class FakeLab:
    def __init__(self, digest, length):
        self.trace = FakeTrace(digest, length)


class FakeResult:
    def __init__(self, experiment_id, title, value):
        self.experiment_id = experiment_id
        self.title = title
        self.value = value

    def to_json(self, indent=None):
        return json.dumps(
            {"experiment_id": self.experiment_id, "value": self.value},
            sort_keys=True,
        )


def make_manifest(value=1.0, seed=12345):
    return build_manifest(
        command=["repro", "report"],
        config=LabConfig(),
        run_seed=seed,
        max_length=2000,
        jobs=2,
        cache_enabled=True,
        cache_dir=".repro-cache",
        labs={"gcc": FakeLab("abc123", 2000)},
        results={"table1": FakeResult("table1", "Table 1", value)},
        experiment_timings=[{"id": "table1", "seconds": 0.5}],
        metrics={
            "counters": {
                "cache.bitmap.hits": 3,
                "cache.bitmap.misses": 1,
                "cache.corr.hits": 1,
                "sim.simulations": 1,
            },
            "gauges": {"parallel.workers": 2},
            "timers": {},
        },
        timings={"total_seconds": 1.25},
    )


class TestBuildManifest:
    def test_manifest_validates_clean(self):
        assert validate_manifest(make_manifest()) == []

    def test_identity_fields(self):
        manifest = make_manifest()
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["kind"] == MANIFEST_KIND
        assert manifest["config_digest"] == config_digest(LabConfig())
        assert manifest["traces"]["gcc"] == {"digest": "abc123", "length": 2000}

    def test_cache_section_aggregates_result_layer(self):
        cache = make_manifest()["cache"]
        # bitmap 3 hits + corr 1 hit over 5 result-layer probes.
        assert cache["result_hits"] == 4
        assert cache["result_misses"] == 1
        assert cache["hit_ratio"] == pytest.approx(0.8)

    def test_hit_ratio_none_when_nothing_probed(self):
        manifest = build_manifest(
            command=None,
            config=LabConfig(),
            run_seed=1,
            max_length=None,
            jobs=1,
            cache_enabled=False,
            cache_dir=None,
            labs={},
            results={},
            experiment_timings=[],
            metrics={"counters": {}, "gauges": {}, "timers": {}},
            timings={},
        )
        assert manifest["cache"]["hit_ratio"] is None
        assert validate_manifest(manifest) == []

    def test_manifest_is_json_round_trippable(self, tmp_path):
        manifest = make_manifest()
        path = tmp_path / "run_manifest.json"
        write_manifest(manifest, str(path))
        assert read_manifest(str(path)) == json.loads(json.dumps(manifest))


class TestValidateManifest:
    def test_rejects_non_object(self):
        assert validate_manifest([1, 2]) == ["manifest: not a JSON object"]

    def test_reports_missing_and_mistyped_fields(self):
        manifest = make_manifest()
        del manifest["run_seed"]
        manifest["jobs"] = "two"
        errors = validate_manifest(manifest)
        assert any("missing field 'run_seed'" in e for e in errors)
        assert any("'jobs'" in e and "expected int" in e for e in errors)

    def test_rejects_wrong_kind_and_version(self):
        manifest = make_manifest()
        manifest["kind"] = "something.else"
        manifest["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        errors = validate_manifest(manifest)
        assert any("kind" in e for e in errors)
        assert any("schema_version" in e for e in errors)

    def test_read_manifest_raises_on_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            read_manifest(str(path))


class TestDiffManifests:
    def test_equivalent_runs_diff_clean(self):
        first, second = make_manifest(), make_manifest()
        # Timings and timestamps are expected to differ.
        second["created_unix"] += 100.0
        second["timings"]["total_seconds"] = 9.9
        second["experiments"][0]["seconds"] = 9.9
        assert diff_manifests(first, second) == []

    def test_result_drift_is_reported(self):
        differences = diff_manifests(make_manifest(1.0), make_manifest(2.0))
        assert len(differences) == 1
        assert "experiments[table1].result_digest" in differences[0]

    def test_seed_drift_is_reported(self):
        differences = diff_manifests(
            make_manifest(seed=1), make_manifest(seed=2)
        )
        assert any(d.startswith("run_seed:") for d in differences)


class TestObsCli:
    def _write(self, tmp_path, name="m.json", **kwargs):
        path = tmp_path / name
        write_manifest(make_manifest(**kwargs), str(path))
        return str(path)

    def test_show_valid_manifest(self, tmp_path, capsys):
        from repro.obs.cli import main

        assert main(["show", self._write(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"run manifest (schema v{MANIFEST_SCHEMA_VERSION}" in out
        assert "table1" in out

    def test_validate_invalid_exits_1(self, tmp_path, capsys):
        from repro.obs.cli import main

        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["validate", str(path)]) == 1
        assert "missing field" in capsys.readouterr().err

    def test_diff_exit_codes(self, tmp_path, capsys):
        from repro.obs.cli import main

        same_a = self._write(tmp_path, "a.json", value=1.0)
        same_b = self._write(tmp_path, "b.json", value=1.0)
        other = self._write(tmp_path, "c.json", value=2.0)
        assert main(["diff", same_a, same_b]) == 0
        assert main(["diff", same_a, other]) == 1

    def test_missing_file_exits_1(self, capsys):
        from repro.obs.cli import main

        assert main(["show", "/nonexistent/m.json"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_summarize_mentions_disabled_cache(self):
        manifest = make_manifest()
        manifest["cache"]["enabled"] = False
        assert "cache:       disabled" in summarize_manifest(manifest)
