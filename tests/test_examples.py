"""The example scripts run end-to-end as real subprocesses.

Each example imports cleanly (guarding against API drift) and executes
with ``python examples/<name>.py`` on a tiny workload: the examples
honour ``REPRO_EXAMPLE_LENGTH`` so the tests do not pay full-scale
trace lengths, and ``reproduce_paper`` takes its length on argv.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_DIR = Path(__file__).parent.parent
EXAMPLES_DIR = REPO_DIR / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Tiny per-example trace length; big enough that every behaviour class
#: (loops, correlated branches) still occurs, small enough to be quick.
TINY_LENGTH = "4000"


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_example(path: Path, *argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_DIR / "src")
    env["REPRO_EXAMPLE_LENGTH"] = TINY_LENGTH
    return subprocess.run(
        [sys.executable, str(path), *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_DIR),
        timeout=600,
    )


class TestExamples:
    def test_all_examples_present(self):
        names = {path.stem for path in EXAMPLES}
        assert {
            "quickstart",
            "correlation_analysis",
            "custom_workload",
            "hybrid_predictors",
            "pipeline_cost",
            "reproduce_paper",
            "offender_analysis",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_imports(self, path):
        module = load_example(path)
        assert hasattr(module, "main")
        assert module.__doc__, "examples must explain themselves"


class TestExamplesAsSubprocesses:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_runs(self, path, tmp_path):
        argv = ()
        if path.stem == "reproduce_paper":
            # Takes [max_length] [report.txt] on argv instead of the env
            # override; write the report into tmp to keep the tree clean.
            argv = ("2000", str(tmp_path / "report.txt"))
        result = run_example(path, *argv)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip(), "examples must print something"

    def test_custom_workload_output(self):
        result = run_example(EXAMPLES_DIR / "custom_workload.py")
        assert result.returncode == 0, result.stderr
        assert "per-branch classification" in result.stdout
        assert "loop" in result.stdout

    def test_pipeline_cost_output(self):
        result = run_example(EXAMPLES_DIR / "pipeline_cost.py", "compress")
        assert result.returncode == 0, result.stderr
        assert "CPI" in result.stdout
        assert "speedup" in result.stdout
