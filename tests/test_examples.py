"""Smoke tests for the example scripts.

Each example imports cleanly (guarding against API drift), and the two
cheap ones run end-to-end.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_present(self):
        names = {path.stem for path in EXAMPLES}
        assert {
            "quickstart",
            "correlation_analysis",
            "custom_workload",
            "hybrid_predictors",
            "pipeline_cost",
            "reproduce_paper",
            "offender_analysis",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_imports(self, path):
        module = load_example(path)
        assert hasattr(module, "main")
        assert module.__doc__, "examples must explain themselves"

    def test_custom_workload_runs(self, capsys):
        module = load_example(EXAMPLES_DIR / "custom_workload.py")
        module.main()
        out = capsys.readouterr().out
        assert "per-branch classification" in out
        assert "loop" in out

    def test_pipeline_cost_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["pipeline_cost.py", "compress"])
        module = load_example(EXAMPLES_DIR / "pipeline_cost.py")
        module.main()
        out = capsys.readouterr().out
        assert "CPI" in out
        assert "speedup" in out
