"""Tests for the extension experiments."""

import pytest

from repro.analysis.runner import Lab
from repro.experiments.base import EXTENSION_IDS, run_experiment
from repro.workloads.suite import load_benchmark


@pytest.fixture(scope="module")
def labs():
    return {
        name: Lab(load_benchmark(name, length=5000, run_seed=19))
        for name in ("gcc", "vortex")
    }


class TestExtensionExperiments:
    @pytest.mark.parametrize("experiment_id", EXTENSION_IDS)
    def test_runs_and_renders(self, labs, experiment_id):
        result = run_experiment(experiment_id, labs)
        assert result.experiment_id == experiment_id
        text = result.render()
        for name in labs:
            assert name in text

    def test_interference_conflicts_hurt(self, labs):
        result = run_experiment("ext_interference", labs)
        for name, row in result.rows.items():
            conflict_rate, conflict_miss, private_miss, occupancy = row
            assert 0.0 <= conflict_rate <= 1.0
            assert 0.0 < occupancy <= 1.0
            if conflict_rate > 0.01:
                assert conflict_miss > private_miss, name

    def test_hybrid_close_to_best_component(self, labs):
        result = run_experiment("ext_hybrid", labs)
        for name, row in result.rows.items():
            gshare, pas, hybrid, oracle, speedup = row
            assert hybrid >= min(gshare, pas)
            assert oracle >= max(gshare, pas) - 1e-9
            assert speedup > 0.9

    def test_taxonomy_orderings(self, labs):
        result = run_experiment("ext_taxonomy", labs)
        for name, row in result.rows.items():
            # Address-selected PHTs beat a single shared PHT, and the
            # idealised per-address second level beats both.
            assert row["GAs"] > row["GAg"], name
            assert row["PAp*"] >= row["PAg"] - 0.5, name

    def test_profile_same_input_beats_cross_input(self, labs):
        result = run_experiment("ext_profile", labs)
        for name, row in result.rows.items():
            adaptive, same, cross, chang = row
            assert same >= cross, name
            assert same >= adaptive - 0.5, name
