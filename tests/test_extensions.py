"""Tests for the extension experiments."""

import pytest

from repro.analysis.runner import Lab
from repro.experiments.base import EXTENSION_IDS, run_experiment
from repro.workloads.suite import load_benchmark


@pytest.fixture(scope="module")
def labs():
    return {
        name: Lab(load_benchmark(name, length=5000, run_seed=19))
        for name in ("gcc", "vortex")
    }


class TestExtensionExperiments:
    # ext_characterize probes its own fixed mix points rather than the
    # session labs, so lab names never appear in its render.
    LAB_INDEPENDENT = ("ext_characterize",)

    @pytest.mark.parametrize("experiment_id", EXTENSION_IDS)
    def test_runs_and_renders(self, labs, experiment_id):
        result = run_experiment(experiment_id, labs)
        assert result.experiment_id == experiment_id
        text = result.render()
        if experiment_id not in self.LAB_INDEPENDENT:
            for name in labs:
                assert name in text

    def test_interference_conflicts_hurt(self, labs):
        result = run_experiment("ext_interference", labs)
        for name, row in result.rows.items():
            conflict_rate, conflict_miss, private_miss, occupancy = row
            assert 0.0 <= conflict_rate <= 1.0
            assert 0.0 < occupancy <= 1.0
            if conflict_rate > 0.01:
                assert conflict_miss > private_miss, name

    def test_hybrid_close_to_best_component(self, labs):
        result = run_experiment("ext_hybrid", labs)
        for name, row in result.rows.items():
            gshare, pas, hybrid, oracle, speedup = row
            assert hybrid >= min(gshare, pas)
            assert oracle >= max(gshare, pas) - 1e-9
            assert speedup > 0.9

    def test_taxonomy_orderings(self, labs):
        result = run_experiment("ext_taxonomy", labs)
        for name, row in result.rows.items():
            # Address-selected PHTs beat a single shared PHT, and the
            # idealised per-address second level beats both.
            assert row["GAs"] > row["GAg"], name
            assert row["PAp*"] >= row["PAg"] - 0.5, name

    def test_profile_same_input_beats_cross_input(self, labs):
        result = run_experiment("ext_profile", labs)
        for name, row in result.rows.items():
            adaptive, same, cross, chang = row
            assert same >= cross, name
            assert same >= adaptive - 0.5, name


class TestCharacterize:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_characterize", {})

    def test_probes_every_simplex_corner(self, result):
        from repro.workloads.motifs import MIX_CLASSES

        assert set(result.rows) == {"baseline", "blend", *MIX_CLASSES}

    def test_rows_carry_all_registry_predictors(self, result):
        from repro.experiments.characterize import PROBE_PREDICTORS

        for point, row in result.rows.items():
            assert set(row[2]) == set(PROBE_PREDICTORS), point
            for accuracy in row[2].values():
                assert 0.0 <= accuracy <= 1.0

    def test_is_deterministic(self, result):
        again = run_experiment("ext_characterize", {})
        assert again.to_json() == result.to_json()

    def test_loop_corner_flatters_the_loop_predictor(self, result):
        # Boosting loop behaviour must not make the loop predictor
        # worse than it is at the correlated corner.
        loop_acc = result.rows["loop"][2]["loop"]
        corr_acc = result.rows["correlated"][2]["loop"]
        assert loop_acc > corr_acc
