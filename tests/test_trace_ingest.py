"""Tests for foreign-trace ingestion (repro.trace.ingest)."""

import numpy as np
import pytest

from repro.errors import IngestError, ReproError
from repro.trace.ingest import (
    BINARY_RECORD,
    detect_format,
    ingest_file,
    load_imported_trace,
)
from repro.trace.stream import TraceStream, write_trace
from repro.trace.trace import Trace


def make_trace(n=1000, seed=3):
    rng = np.random.default_rng(seed)
    pc = rng.integers(0, 2**40, size=n, dtype=np.uint64)
    target = rng.integers(0, 2**40, size=n, dtype=np.uint64)
    taken = rng.random(n) < 0.6
    return Trace(pc, target, taken)


def write_text(path, trace, three_field=True):
    with open(path, "w") as fh:
        fh.write("# header comment\n\n")
        for pc, target, taken in zip(trace.pc, trace.target, trace.taken):
            outcome = "T" if taken else "N"
            if three_field:
                fh.write(f"{int(pc):#x} {int(target):#x} {outcome}\n")
            else:
                fh.write(f"{int(pc):#x} {outcome}\n")


def write_binary(path, trace):
    records = np.zeros(len(trace), dtype=BINARY_RECORD)
    records["pc"] = trace.pc
    records["taken"] = trace.taken.astype(np.uint8)
    records.tofile(path)


class TestRoundTrips:
    def test_text_to_bpt_digest_is_bit_identical(self, tmp_path):
        trace = make_trace()
        source = tmp_path / "trace.txt"
        write_text(source, trace)
        result = ingest_file(source, tmp_path / "trace.bpt")
        assert result.branches == len(trace)
        assert result.digest == trace.digest()
        assert TraceStream.open(result.path).digest() == trace.digest()

    def test_two_field_text_synthesises_targets(self, tmp_path):
        trace = make_trace()
        source = tmp_path / "trace.txt"
        write_text(source, trace, three_field=False)
        result = ingest_file(source, tmp_path / "trace.bpt")
        loaded = load_imported_trace(result.path)
        assert np.array_equal(loaded.pc, trace.pc)
        assert np.array_equal(loaded.taken, trace.taken)
        assert np.array_equal(loaded.target, trace.pc + np.uint64(4))

    def test_outcome_spellings(self, tmp_path):
        source = tmp_path / "trace.txt"
        source.write_text(
            "0x10 T\n0x10 N\n0x10 1\n0x10 0\n0x10 taken\n0x10 not-taken\n"
        )
        loaded = load_imported_trace(source)
        assert loaded.taken.tolist() == [True, False, True, False, True, False]

    def test_binary_to_bpt_digest_is_bit_identical(self, tmp_path):
        trace = make_trace()
        source = tmp_path / "trace.bin"
        write_binary(source, trace)
        result = ingest_file(source, tmp_path / "trace.bpt")
        assert result.branches == len(trace)
        loaded = load_imported_trace(result.path, expected_digest=result.digest)
        assert np.array_equal(loaded.pc, trace.pc)
        assert np.array_equal(loaded.taken, trace.taken)

    def test_native_bpt_is_validated_in_place(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "native.bpt"
        write_trace(trace, path)
        result = ingest_file(path)
        assert result.path == str(path)
        assert result.format == "bpt"
        assert result.digest == trace.digest()

    def test_chunked_spill_matches_whole_trace_digest(self, tmp_path):
        trace = make_trace(n=5000)
        source = tmp_path / "trace.txt"
        write_text(source, trace)
        result = ingest_file(
            source, tmp_path / "trace.bpt", chunk_branches=256
        )
        assert result.digest == trace.digest()
        assert load_imported_trace(
            result.path, expected_digest=trace.digest()
        ).digest() == trace.digest()

    def test_result_entry_pins_the_identity(self, tmp_path):
        trace = make_trace()
        source = tmp_path / "trace.txt"
        write_text(source, trace)
        entry = ingest_file(source, tmp_path / "trace.bpt").to_entry()
        assert entry.name == "trace"
        assert entry.digest == trace.digest()
        assert entry.branches == len(trace)
        assert entry.format == "bpt"


class TestDetection:
    def test_magic_wins(self, tmp_path):
        trace = make_trace(n=16)
        path = tmp_path / "oddly_named.txt"
        write_trace(trace, path)
        assert detect_format(path) == "bpt"

    def test_extension_fallback(self, tmp_path):
        binary = tmp_path / "t.bin"
        binary.write_bytes(b"\x00" * 9)
        assert detect_format(binary) == "binary"
        text = tmp_path / "t.out"
        text.write_text("0x10 T\n")
        assert detect_format(text) == "text"


class TestRejections:
    def test_garbage_line_reports_path_and_line(self, tmp_path):
        source = tmp_path / "bad.txt"
        source.write_text("0x10 T\n0x10 T\nnot a branch line\n")
        with pytest.raises(IngestError) as exc:
            ingest_file(source, tmp_path / "bad.bpt")
        assert f"{source}:3" in str(exc.value)
        assert not (tmp_path / "bad.bpt").exists()

    def test_bad_address(self, tmp_path):
        source = tmp_path / "bad.txt"
        source.write_text("0xzz T\n")
        with pytest.raises(IngestError, match="bad address"):
            ingest_file(source, tmp_path / "bad.bpt")

    def test_address_out_of_range(self, tmp_path):
        source = tmp_path / "bad.txt"
        source.write_text(f"{2**64} T\n")
        with pytest.raises(IngestError, match="uint64"):
            ingest_file(source, tmp_path / "bad.bpt")

    def test_bad_outcome_word(self, tmp_path):
        source = tmp_path / "bad.txt"
        source.write_text("0x10 maybe\n")
        with pytest.raises(IngestError, match="bad outcome"):
            ingest_file(source, tmp_path / "bad.bpt")

    def test_truncated_binary_reports_offset(self, tmp_path):
        source = tmp_path / "bad.bin"
        source.write_bytes(b"\x00" * (9 * 3 + 4))
        with pytest.raises(IngestError, match="truncated record"):
            ingest_file(source, tmp_path / "bad.bpt")

    def test_binary_outcome_byte_must_be_boolean(self, tmp_path):
        source = tmp_path / "bad.bin"
        source.write_bytes(b"\x00" * 8 + b"\x02")
        with pytest.raises(IngestError, match="bad outcome byte 2"):
            ingest_file(source, tmp_path / "bad.bpt")

    def test_empty_text_trace(self, tmp_path):
        source = tmp_path / "empty.txt"
        source.write_text("# only a comment\n")
        with pytest.raises(IngestError, match="no branches"):
            ingest_file(source, tmp_path / "empty.bpt")
        assert not (tmp_path / "empty.bpt").exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(IngestError, match="cannot read"):
            ingest_file(tmp_path / "nope.txt")

    def test_ingest_error_is_usage_not_traceback(self):
        assert issubclass(IngestError, ReproError)
        assert issubclass(IngestError, ValueError)
        assert IngestError("x").exit_code == 2
        assert IngestError("x").http_status == 400


class TestLoadImported:
    def test_digest_mismatch_is_rejected(self, tmp_path):
        trace = make_trace()
        source = tmp_path / "trace.txt"
        write_text(source, trace)
        result = ingest_file(source, tmp_path / "trace.bpt")
        with pytest.raises(IngestError, match="does not match"):
            load_imported_trace(
                result.path, expected_digest="0" * 32
            )

    def test_loads_foreign_formats_directly(self, tmp_path):
        trace = make_trace()
        source = tmp_path / "trace.bin"
        write_binary(source, trace)
        loaded = load_imported_trace(source, format="binary")
        assert np.array_equal(loaded.pc, trace.pc)

    def test_empty_trace_is_rejected(self, tmp_path):
        source = tmp_path / "empty.txt"
        source.write_text("")
        with pytest.raises(IngestError, match="no branches"):
            load_imported_trace(source)
