"""End-to-end checkpoint/resume and graceful degradation for reports."""

from __future__ import annotations

import pytest

import repro.api as api
from repro.api import run_spec, spec_from_kwargs
from repro.resilience.journal import RunJournal

SMALL = 2000


def digests(run):
    return {
        entry["id"]: entry["result_digest"]
        for entry in run.manifest["experiments"]
    }


def report(tmp_path, experiments, **kwargs):
    kwargs.setdefault("max_length", SMALL)
    kwargs.setdefault("cache_dir", str(tmp_path / "c"))
    kwargs.setdefault("jobs", 1)
    return run_spec(spec_from_kwargs(experiments, **kwargs))


class TestJournaling:
    def test_report_journals_each_experiment(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        run = report(
            tmp_path, ["table1", "fig4"], journal_path=str(journal_path)
        )
        entries = RunJournal(journal_path).load()
        assert {eid for eid, _ in entries} == {"table1", "fig4"}
        # Journal digests are the manifest's result digests.
        run_digests = digests(run)
        for (experiment_id, _), entry in entries.items():
            assert entry["result_digest"] == run_digests[experiment_id]

    def test_no_journal_path_writes_nothing(self, tmp_path):
        run = report(tmp_path, ["table1"])
        assert run.manifest["resilience"]["journal"] is None

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        report(tmp_path, ["table1", "fig4"], journal_path=str(journal_path))
        report(tmp_path, ["table1"], journal_path=str(journal_path))
        entries = RunJournal(journal_path).load()
        assert {eid for eid, _ in entries} == {"table1"}


class TestResume:
    def test_resume_replays_bit_identically(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        clean = report(
            tmp_path, ["table1", "fig4"], journal_path=str(journal_path)
        )
        resumed = report(
            tmp_path,
            ["table1", "fig4"],
            journal_path=str(journal_path),
            resume=True,
        )
        assert resumed.replayed == ["table1", "fig4"]
        assert digests(resumed) == digests(clean)
        assert resumed.manifest["resilience"]["resumed"] is True
        assert resumed.manifest["resilience"]["replayed"] == [
            "table1", "fig4",
        ]
        for experiment_id in ("table1", "fig4"):
            assert (
                resumed.results[experiment_id].to_dict()
                == clean.results[experiment_id].to_dict()
            )
            assert (
                resumed.results[experiment_id].render()
                == clean.results[experiment_id].render()
            )

    def test_partial_journal_runs_only_the_missing(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        report(tmp_path, ["table1"], journal_path=str(journal_path))
        resumed = report(
            tmp_path,
            ["table1", "fig4"],
            journal_path=str(journal_path),
            resume=True,
        )
        assert resumed.replayed == ["table1"]
        assert set(resumed.results) == {"table1", "fig4"}
        # The freshly-run fig4 was journaled, so a second resume
        # replays both.
        again = report(
            tmp_path,
            ["table1", "fig4"],
            journal_path=str(journal_path),
            resume=True,
        )
        assert again.replayed == ["table1", "fig4"]

    def test_journal_from_other_run_inputs_never_matches(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        report(tmp_path, ["table1"], journal_path=str(journal_path))
        resumed = report(
            tmp_path,
            ["table1"],
            seed=54321,  # different workload data set, same journal
            journal_path=str(journal_path),
            resume=True,
        )
        assert resumed.replayed == []
        assert set(resumed.results) == {"table1"}


class TestGracefulDegradation:
    def test_experiment_failure_is_recorded_and_run_continues(
        self, tmp_path, monkeypatch
    ):
        real_run_experiment = api.run_experiment

        def flaky(experiment_id, labs):
            if experiment_id == "table1":
                raise RuntimeError("synthetic experiment explosion")
            return real_run_experiment(experiment_id, labs)

        monkeypatch.setattr(api, "run_experiment", flaky)
        run = report(tmp_path, ["table1", "fig4"])
        assert not run.ok
        assert set(run.results) == {"fig4"}
        (failure,) = run.failures
        assert failure["scope"] == "experiment"
        assert failure["experiment_id"] == "table1"
        assert "synthetic experiment explosion" in failure["message"]
        assert run.manifest["resilience"]["failures"] == [failure]

    def test_clean_run_is_ok(self, tmp_path):
        run = report(tmp_path, ["table1"])
        assert run.ok
        assert run.failures == []
        assert run.manifest["resilience"]["task_failures"] == 0


class TestFaultSpecWiring:
    def test_malformed_spec_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="fault"):
            report(tmp_path, ["table1"], fault_spec="loop:zero:crash")

    def test_env_spec_is_picked_up(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "loop:1:crash")
        # fig6 declares the loop task, so the planner primes it and the
        # injected crash fires once per benchmark.
        run = report(tmp_path, ["fig6"], retries=2)
        assert run.ok
        assert (
            run.metrics["counters"]["resilience.faults.crash"]
            == len(run.labs)
        )
