"""Tests for the profile-based predictors (section 2.2 related work)."""

import pytest

from repro.predictors.profile_based import (
    BranchClassificationHybrid,
    StaticPhtGlobal,
    StaticPhtPAs,
)
from repro.predictors.static_ import AlwaysNotTakenPredictor
from repro.predictors.twolevel import PAsPredictor
from repro.workloads.suite import load_benchmark

from conftest import interleave, trace_from_outcomes


class TestStaticPhtGlobal:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            StaticPhtGlobal(4).predict(1, 2)

    def test_same_input_learns_periodic(self):
        trace = trace_from_outcomes([True, True, False] * 200)
        predictor = StaticPhtGlobal(6).fit(trace)
        assert predictor.accuracy(trace) > 0.97

    def test_unseen_pattern_falls_back_to_branch_bias(self):
        profile = trace_from_outcomes([False] * 50)
        predictor = StaticPhtGlobal(4).fit(profile)
        # Unknown branch entirely: defaults to taken.
        assert predictor.predict(0x999, 0) is True

    def test_invalid_history(self):
        with pytest.raises(ValueError):
            StaticPhtGlobal(-1)


class TestStaticPhtPAs:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            StaticPhtPAs(4).predict(1, 2)

    def test_same_input_rivals_adaptive(self):
        # The Sechrest et al. finding: with the same profiling and
        # testing set, a static PHT performs at least on par with 2-bit
        # counters.
        trace = load_benchmark("compress", length=8000, run_seed=21)
        static = StaticPhtPAs(6).fit(trace)
        adaptive = PAsPredictor(6, 12)
        assert static.accuracy(trace) >= adaptive.accuracy(trace)

    def test_cross_input_degrades(self):
        profile = load_benchmark("compress", length=8000, run_seed=21)
        test = load_benchmark("compress", length=8000, run_seed=22)
        same = StaticPhtPAs(6).fit(test).accuracy(test)
        cross = StaticPhtPAs(6).fit(profile).accuracy(test)
        assert cross < same

    def test_per_branch_histories_are_separate(self):
        trace = interleave(
            {1: [True, False] * 100, 2: [False, True] * 100}
        )
        predictor = StaticPhtPAs(4).fit(trace)
        assert predictor.accuracy(trace) > 0.95


class TestBranchClassificationHybrid:
    def test_requires_fit(self):
        hybrid = BranchClassificationHybrid(AlwaysNotTakenPredictor())
        with pytest.raises(RuntimeError):
            hybrid.predict(1, 2)
        with pytest.raises(RuntimeError):
            hybrid.is_static(1)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BranchClassificationHybrid(AlwaysNotTakenPredictor(), 0.4)

    def test_biased_branches_go_static(self):
        trace = interleave({1: [True] * 100, 2: [True, False] * 50})
        hybrid = BranchClassificationHybrid(
            AlwaysNotTakenPredictor(), bias_threshold=0.9
        ).fit(trace)
        assert hybrid.is_static(1)
        assert not hybrid.is_static(2)

    def test_static_branches_ignore_dynamic_component(self):
        trace = interleave({1: [True] * 100})
        hybrid = BranchClassificationHybrid(
            AlwaysNotTakenPredictor(), bias_threshold=0.9
        ).fit(trace)
        # The (terrible) dynamic component never sees branch 1.
        assert hybrid.accuracy(trace) == 1.0

    def test_weak_branches_use_dynamic_component(self):
        periodic = [True, False] * 150
        trace = trace_from_outcomes(periodic)
        hybrid = BranchClassificationHybrid(
            PAsPredictor(4, 8), bias_threshold=0.9
        ).fit(trace)
        assert not hybrid.is_static(0x100)
        assert hybrid.accuracy(trace) > 0.9

    def test_protects_against_profile_drift(self):
        # A branch that is strongly biased in the profile stays
        # statically predicted even if the dynamic component is bad.
        profile = interleave({1: [True] * 100, 2: [True, False] * 50})
        test = interleave({1: [True] * 60, 2: [False, True] * 30})
        hybrid = BranchClassificationHybrid(
            AlwaysNotTakenPredictor(), bias_threshold=0.9
        ).fit(profile)
        correct = hybrid.simulate(test)
        idx1 = test.indices_by_pc()[1]
        assert correct[idx1].all()
