"""Tests for the crash-safe run journal (checkpoint/resume)."""

from __future__ import annotations

import json

from repro.experiments.base import ReplayedResult
from repro.resilience.journal import (
    JOURNAL_KIND,
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    payload_digest,
    run_key,
)


class FakeResult:
    """Minimal ExperimentResult stand-in for journal round-trips."""

    title = "Fake table"

    def __init__(self, value=1):
        self.value = value

    def to_dict(self):
        return {"schema_version": 2, "value": self.value}

    def render(self):
        return f"rendered {self.value}"


class FakeLab:
    def __init__(self, digest):
        self.trace = self
        self._digest = digest

    def digest(self):
        return self._digest


class TestRunKey:
    def test_same_inputs_same_key(self):
        labs = {"gcc": FakeLab("aa"), "perl": FakeLab("bb")}
        assert run_key("cfg", 1, labs) == run_key("cfg", 1, labs)

    def test_key_covers_config_seed_and_traces(self):
        labs = {"gcc": FakeLab("aa")}
        base = run_key("cfg", 1, labs)
        assert run_key("cfg2", 1, labs) != base
        assert run_key("cfg", 2, labs) != base
        assert run_key("cfg", 1, {"gcc": FakeLab("cc")}) != base
        assert run_key("cfg", 1, {"go": FakeLab("aa")}) != base

    def test_benchmark_order_does_not_matter(self):
        a = {"gcc": FakeLab("aa"), "perl": FakeLab("bb")}
        b = {"perl": FakeLab("bb"), "gcc": FakeLab("aa")}
        assert run_key("cfg", 1, a) == run_key("cfg", 1, b)


class TestRoundTrip:
    def test_record_then_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            entry = journal.record("table1", "key1", FakeResult(7))
        loaded = RunJournal(path).load()
        assert loaded == {("table1", "key1"): entry}
        record = loaded[("table1", "key1")]
        assert record["kind"] == JOURNAL_KIND
        assert record["schema_version"] == JOURNAL_SCHEMA_VERSION
        assert record["payload"] == {"schema_version": 2, "value": 7}
        assert record["render"] == "rendered 7"
        assert record["result_digest"] == payload_digest(record["payload"])

    def test_replayed_result_is_bit_identical(self, tmp_path):
        path = tmp_path / "j.jsonl"
        original = FakeResult(3)
        with RunJournal(path) as journal:
            journal.record("fig4", "k", original)
        entry = RunJournal(path).lookup("fig4", "k")
        replayed = ReplayedResult(entry["payload"], entry["render"])
        assert replayed.to_dict() == original.to_dict()
        assert replayed.render() == original.render()
        assert payload_digest(replayed.to_dict()) == entry["result_digest"]

    def test_later_entry_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("table1", "k", FakeResult(1))
            journal.record("table1", "k", FakeResult(2))
        entry = RunJournal(path).lookup("table1", "k")
        assert entry["payload"]["value"] == 2

    def test_fresh_truncates_existing_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("table1", "k", FakeResult(1))
        with RunJournal(path, fresh=True) as journal:
            journal.record("fig4", "k", FakeResult(2))
        loaded = RunJournal(path).load()
        assert set(loaded) == {("fig4", "k")}


class TestCorruptionTolerance:
    def test_missing_file_loads_empty(self, tmp_path):
        assert RunJournal(tmp_path / "nope.jsonl").load() == {}

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("table1", "k", FakeResult(1))
            journal.record("fig4", "k", FakeResult(2))
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # kill-mid-write
        loaded = RunJournal(path).load()
        assert set(loaded) == {("table1", "k")}

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("table1", "k", FakeResult(1))
        with open(path, "a") as fh:
            fh.write("not json at all\n")
            fh.write('"a bare string"\n')
            fh.write(json.dumps({"kind": "something-else"}) + "\n")
        assert set(RunJournal(path).load()) == {("table1", "k")}

    def test_digest_mismatch_drops_the_entry(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("table1", "k", FakeResult(1))
        entry = json.loads(path.read_text())
        entry["payload"]["value"] = 999  # bit rot / hand edit
        path.write_text(json.dumps(entry) + "\n")
        assert RunJournal(path).load() == {}

    def test_wrong_schema_version_is_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("table1", "k", FakeResult(1))
        entry = json.loads(path.read_text())
        entry["schema_version"] = JOURNAL_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry) + "\n")
        assert RunJournal(path).load() == {}

    def test_lookup_misses_on_other_run_key(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("table1", "key-a", FakeResult(1))
        journal = RunJournal(path)
        assert journal.lookup("table1", "key-b") is None
        assert journal.lookup("fig4", "key-a") is None
        assert journal.lookup("table1", "key-a") is not None
