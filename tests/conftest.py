"""Shared test fixtures and trace-building helpers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np
import pytest

from repro.trace.trace import Trace, TraceBuilder


def trace_from_outcomes(
    outcomes: Iterable[bool],
    pc: int = 0x100,
    target: int = 0x200,
) -> Trace:
    """A single-branch trace with the given outcome sequence."""
    outcome_list = [bool(x) for x in outcomes]
    n = len(outcome_list)
    return Trace(
        np.full(n, pc, dtype=np.uint64),
        np.full(n, target, dtype=np.uint64),
        np.array(outcome_list, dtype=bool),
    )


def trace_from_string(spec: str, pc: int = 0x100, target: int = 0x200) -> Trace:
    """A single-branch trace from a string like ``"TTNTTN"``."""
    return trace_from_outcomes(
        [c in "Tt1" for c in spec if c.strip()], pc=pc, target=target
    )


def trace_from_steps(
    steps: Sequence[Tuple[int, int, bool]]
) -> Trace:
    """A trace from explicit (pc, target, taken) steps."""
    builder = TraceBuilder()
    for pc, target, taken in steps:
        builder.append(pc, target, taken)
    return builder.build()


def interleave(sequences: Dict[int, List[bool]], target_offset: int = 0x1000) -> Trace:
    """Round-robin interleave several branches' outcome sequences.

    Branch ``pc`` emits its next outcome each round until all sequences
    are exhausted (shorter sequences simply stop contributing).
    """
    builder = TraceBuilder()
    longest = max((len(s) for s in sequences.values()), default=0)
    for i in range(longest):
        for pc in sorted(sequences):
            outcomes = sequences[pc]
            if i < len(outcomes):
                builder.append(pc, pc + target_offset, outcomes[i])
    return builder.build()


@pytest.fixture(scope="session")
def small_benchmark_trace() -> Trace:
    """A small but structurally-rich suite benchmark trace."""
    from repro.workloads.suite import load_benchmark

    return load_benchmark("compress", length=8000, run_seed=42)


@pytest.fixture(scope="session")
def small_gcc_trace() -> Trace:
    """A small correlation-rich benchmark trace."""
    from repro.workloads.suite import load_benchmark

    return load_benchmark("gcc", length=12000, run_seed=42)
