"""Tests for repro.trace.trace (Trace and TraceBuilder)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.trace.record import BranchRecord
from repro.trace.trace import Trace, TraceBuilder

from conftest import trace_from_steps, trace_from_string


class TestTraceConstruction:
    def test_empty(self):
        trace = Trace.empty()
        assert len(trace) == 0
        assert trace.num_static_branches() == 0
        assert trace.taken_rate() == 0.0

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace([1, 2], [3], [True, False])

    def test_from_records_round_trip(self):
        records = [
            BranchRecord(0x10, 0x20, True),
            BranchRecord(0x14, 0x8, False),
        ]
        trace = Trace.from_records(records)
        assert list(trace) == records

    def test_builder_appends(self):
        builder = TraceBuilder()
        assert len(builder) == 0
        builder.append(1, 2, True)
        builder.append_record(BranchRecord(3, 4, False))
        assert len(builder) == 2
        trace = builder.build()
        assert trace[0] == BranchRecord(1, 2, True)
        assert trace[1] == BranchRecord(3, 4, False)

    def test_builder_rejects_negative(self):
        builder = TraceBuilder()
        with pytest.raises(ValueError):
            builder.append(-1, 0, True)

    def test_columns_read_only(self):
        trace = trace_from_string("TNT")
        with pytest.raises(ValueError):
            trace.taken[0] = False


class TestTraceAccessors:
    def test_len_and_getitem(self):
        trace = trace_from_steps([(1, 2, True), (3, 4, False), (5, 6, True)])
        assert len(trace) == 3
        assert trace[1] == BranchRecord(3, 4, False)

    def test_negative_index(self):
        trace = trace_from_steps([(1, 2, True), (3, 4, False)])
        assert trace[-1] == BranchRecord(3, 4, False)

    def test_slice_returns_trace(self):
        trace = trace_from_steps([(1, 2, True), (3, 4, False), (5, 6, True)])
        sliced = trace[1:]
        assert isinstance(sliced, Trace)
        assert len(sliced) == 2
        assert sliced[0] == BranchRecord(3, 4, False)

    def test_is_backward(self):
        trace = trace_from_steps([(0x100, 0x80, True), (0x100, 0x180, True)])
        assert list(trace.is_backward) == [True, False]

    def test_taken_rate(self):
        trace = trace_from_string("TTTN")
        assert trace.taken_rate() == pytest.approx(0.75)

    def test_equality(self):
        a = trace_from_string("TNT")
        b = trace_from_string("TNT")
        c = trace_from_string("TNN")
        assert a == b
        assert a != c

    def test_repr_mentions_length(self):
        assert "len=3" in repr(trace_from_string("TNT"))


class TestTraceGrouping:
    def test_static_pcs(self):
        trace = trace_from_steps([(5, 6, True), (3, 4, False), (5, 6, True)])
        assert list(trace.static_pcs()) == [3, 5]

    def test_indices_by_pc(self):
        trace = trace_from_steps([(5, 6, True), (3, 4, False), (5, 6, False)])
        groups = trace.indices_by_pc()
        assert list(groups[5]) == [0, 2]
        assert list(groups[3]) == [1]

    def test_indices_preserve_execution_order(self):
        trace = trace_from_steps([(7, 8, True)] * 5)
        assert list(trace.indices_by_pc()[7]) == [0, 1, 2, 3, 4]

    def test_outcomes_by_pc(self):
        trace = trace_from_steps([(5, 6, True), (3, 4, False), (5, 6, False)])
        outcomes = trace.outcomes_by_pc()
        assert list(outcomes[5]) == [True, False]
        assert list(outcomes[3]) == [False]

    def test_dynamic_counts(self):
        trace = trace_from_steps([(5, 6, True)] * 3 + [(3, 4, False)])
        assert trace.dynamic_counts() == {5: 3, 3: 1}

    def test_grouping_cache_is_consistent(self):
        trace = trace_from_steps([(5, 6, True), (3, 4, False)])
        assert trace.indices_by_pc() is trace.indices_by_pc()

    def test_concat(self):
        a = trace_from_string("TN", pc=1)
        b = trace_from_string("T", pc=2)
        combined = a.concat(b)
        assert len(combined) == 3
        assert combined[2].pc == 2


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**40),
            st.integers(min_value=0, max_value=2**40),
            st.booleans(),
        ),
        max_size=60,
    )
)
def test_property_grouping_partitions_trace(steps):
    """indices_by_pc must partition [0, n) exactly."""
    trace = trace_from_steps(steps)
    groups = trace.indices_by_pc()
    all_indices = sorted(
        int(i) for indices in groups.values() for i in indices
    )
    assert all_indices == list(range(len(trace)))
    for pc, indices in groups.items():
        assert all(int(trace.pc[i]) == pc for i in indices)


@given(st.lists(st.booleans(), max_size=100))
def test_property_taken_rate_matches_mean(outcomes):
    from conftest import trace_from_outcomes

    trace = trace_from_outcomes(outcomes)
    if outcomes:
        assert trace.taken_rate() == pytest.approx(np.mean(outcomes))
    else:
        assert trace.taken_rate() == 0.0
