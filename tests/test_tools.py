"""Tests for the trace toolkit CLI."""

import pytest

from repro.tools import PREDICTOR_REGISTRY, main, parse_predictor_spec
from repro.trace.stream import read_trace


class TestParsePredictorSpec:
    def test_bare_name(self):
        predictor = parse_predictor_spec("loop")
        assert predictor.name == "loop"

    def test_with_arguments(self):
        predictor = parse_predictor_spec("gshare:history_bits=10,pht_bits=12")
        assert predictor.name == "gshare-10h-12p"

    def test_unknown_name(self):
        with pytest.raises(SystemExit, match="unknown predictor 'tage' in spec 'tage'"):
            parse_predictor_spec("tage")

    def test_malformed_argument(self):
        with pytest.raises(
            SystemExit, match="malformed predictor argument 'history_bits'"
        ):
            parse_predictor_spec("gshare:history_bits")

    def test_non_integer_argument(self):
        with pytest.raises(SystemExit, match="is not an integer"):
            parse_predictor_spec("gshare:history_bits=ten")

    def test_unknown_keyword_argument(self):
        with pytest.raises(
            SystemExit, match="bad arguments for predictor 'gshare'"
        ):
            parse_predictor_spec("gshare:nonsense=3")

    def test_every_registry_entry_constructs(self):
        for name in PREDICTOR_REGISTRY:
            predictor = parse_predictor_spec(name)
            assert predictor.name


class TestCommands:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "t.bpt"
        assert main(["generate", "compress", "-o", str(path), "--length", "3000"]) == 0
        return path

    def test_generate_writes_readable_trace(self, trace_file):
        trace = read_trace(trace_file)
        assert len(trace) == 3000

    def test_stats(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "dynamic branches:        3000" in out
        assert "taken rate" in out

    def test_simulate_default_predictors(self, trace_file, capsys):
        assert main(["simulate", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "gshare" in out and "pas" in out

    def test_simulate_explicit_predictors(self, trace_file, capsys):
        assert (
            main(
                [
                    "simulate",
                    str(trace_file),
                    "--predictor",
                    "loop",
                    "--predictor",
                    "bimodal:table_bits=8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "loop" in out and "bimodal-8b" in out

    def test_simulate_bad_predictor_raises_system_exit(self, trace_file):
        with pytest.raises(SystemExit, match="unknown predictor 'nope'"):
            main(["simulate", str(trace_file), "--predictor", "nope"])

    def test_interference(self, trace_file, capsys):
        assert (
            main(
                [
                    "interference",
                    str(trace_file),
                    "--history-bits",
                    "8",
                    "--pht-bits",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "conflict access rate" in out

    def test_missing_file_exits_2(self, capsys):
        assert main(["stats", "/nonexistent/file.bpt"]) == 2


class TestVersion:
    def test_version_flag(self, capsys):
        import re

        assert main(["--version"]) == 0
        out = capsys.readouterr().out.strip()
        assert re.fullmatch(r"repro-tools \d+[\w.]*", out)
