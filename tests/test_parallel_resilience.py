"""Scheduler resilience: retries, fault injection, failure records.

The determinism contract under test: the same fault spec produces the
same attempt sequence, the same resilience counters and the same folded
results whether the engine runs in-process (``jobs=1``) or across
worker processes (``jobs=4``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.parallel import prime_labs
from repro.experiments.base import build_labs
from repro.obs.metrics import METRICS
from repro.resilience.faults import FaultInjector, FaultSpecError
from repro.resilience.retry import RetryPolicy

SMALL = 2000

#: A policy with negligible backoff so retry tests stay fast.
FAST = dict(backoff_base=0.001, backoff_factor=1.0, backoff_cap=0.001)


def resilience_counters(delta: dict) -> dict:
    return {
        name: value
        for name, value in delta.get("counters", {}).items()
        if name.startswith("resilience.")
    }


@pytest.fixture()
def reference_loop():
    """Fault-free serial reference for the 'loop' task."""
    labs = build_labs(SMALL)
    prime_labs(labs, jobs=1, tasks=("loop",))
    return {name: lab.correct("loop") for name, lab in labs.items()}


class TestCrashRetry:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_attempt_one_crash_is_transparent(self, jobs, reference_loop):
        labs = build_labs(SMALL)
        injector = FaultInjector.from_spec("loop:1:crash")
        failures = []
        baseline = METRICS.snapshot()
        executed = prime_labs(
            labs,
            jobs=jobs,
            tasks=("loop",),
            policy=RetryPolicy(max_attempts=3, **FAST),
            injector=injector,
            failures=failures,
        )
        delta = METRICS.delta_since(baseline)
        assert executed == len(labs)
        assert failures == []
        counters = resilience_counters(delta)
        assert counters["resilience.faults.crash"] == len(labs)
        assert counters["resilience.retries"] == len(labs)
        assert "resilience.task_failures" not in counters
        for name, lab in labs.items():
            assert np.array_equal(lab.correct("loop"), reference_loop[name])

    def test_serial_and_parallel_counters_match(self):
        spec = "gcc/loop:1:crash,perl/loop:1:crash,perl/loop:2:crash"
        deltas = []
        for jobs in (1, 2):
            labs = build_labs(SMALL)
            baseline = METRICS.snapshot()
            prime_labs(
                labs,
                jobs=jobs,
                tasks=("loop",),
                policy=RetryPolicy(max_attempts=3, **FAST),
                injector=FaultInjector.from_spec(spec),
                failures=[],
            )
            deltas.append(
                resilience_counters(METRICS.delta_since(baseline))
            )
        assert deltas[0] == deltas[1]
        assert deltas[0]["resilience.faults.crash"] == 3
        assert deltas[0]["resilience.retries"] == 3


class TestExhaustedRetries:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_persistent_crash_becomes_structured_failure(self, jobs):
        labs = build_labs(SMALL)
        spec = ",".join(f"gcc/loop:{attempt}:crash" for attempt in (1, 2))
        failures = []
        baseline = METRICS.snapshot()
        prime_labs(
            labs,
            jobs=jobs,
            tasks=("loop",),
            policy=RetryPolicy(max_attempts=2, **FAST),
            injector=FaultInjector.from_spec(spec),
            failures=failures,
        )
        delta = METRICS.delta_since(baseline)
        assert len(failures) == 1
        failure = failures[0]
        assert failure["scope"] == "task"
        assert (failure["benchmark"], failure["task"]) == ("gcc", "loop")
        assert failure["attempts"] == 2
        assert failure["kind"] == "error"
        assert "InjectedCrash" in failure["message"]
        assert delta["counters"]["resilience.task_failures"] == 1
        # The run degraded, it did not die: every other lab is primed.
        assert not labs["gcc"].is_primed("loop")
        for name, lab in labs.items():
            if name != "gcc":
                assert lab.is_primed("loop")

    def test_failures_are_sorted_not_schedule_ordered(self):
        labs = build_labs(SMALL)
        spec = ",".join(
            f"{name}/loop:{attempt}:crash"
            for name in ("perl", "gcc")
            for attempt in (1, 2)
        )
        failures = []
        prime_labs(
            labs,
            jobs=2,
            tasks=("loop",),
            policy=RetryPolicy(max_attempts=2, **FAST),
            injector=FaultInjector.from_spec(spec),
            failures=failures,
        )
        assert [f["benchmark"] for f in failures] == ["gcc", "perl"]


class TestHangs:
    def test_hang_without_timeout_is_a_spec_error(self):
        labs = build_labs(SMALL)
        with pytest.raises(FaultSpecError, match="task timeout"):
            prime_labs(
                labs,
                jobs=1,
                tasks=("loop",),
                injector=FaultInjector.from_spec("loop:1:hang"),
            )

    def test_serial_hang_counts_as_timeout_and_retries(self):
        labs = build_labs(SMALL)
        failures = []
        baseline = METRICS.snapshot()
        prime_labs(
            labs,
            jobs=1,
            tasks=("loop",),
            policy=RetryPolicy(max_attempts=2, timeout=5.0, **FAST),
            injector=FaultInjector.from_spec("gcc/loop:1:hang"),
            failures=failures,
        )
        delta = METRICS.delta_since(baseline)
        assert failures == []
        assert delta["counters"]["resilience.timeouts"] == 1
        assert delta["counters"]["resilience.retries"] == 1
        assert labs["gcc"].is_primed("loop")


class TestBackoffAccounting:
    def test_nominal_backoff_seconds_are_deterministic(self):
        policy = RetryPolicy(max_attempts=3)
        spec = "gcc/loop:1:crash,gcc/loop:2:crash"
        totals = []
        for jobs in (1, 2):
            labs = build_labs(SMALL)
            baseline = METRICS.snapshot()
            prime_labs(
                labs,
                jobs=jobs,
                tasks=("loop",),
                policy=policy,
                injector=FaultInjector.from_spec(spec),
                failures=[],
            )
            delta = METRICS.delta_since(baseline)
            totals.append(delta["timers"]["resilience.backoff_seconds"])
        # Both runs charge exactly backoff(1) + backoff(2), as recorded
        # nominal values -- not measured sleeps.
        expected = policy.backoff(1) + policy.backoff(2)
        for total in totals:
            assert total["seconds"] == pytest.approx(expected)
            assert total["count"] == 2
