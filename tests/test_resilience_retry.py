"""Tests for the retry policy: resolution, backoff determinism."""

from __future__ import annotations

import pytest

from repro.resilience.retry import (
    DEFAULT_MAX_ATTEMPTS,
    ENV_MAX_RETRIES,
    ENV_TASK_TIMEOUT,
    RetryPolicy,
    TaskFailure,
)


class TestResolve:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(ENV_MAX_RETRIES, raising=False)
        monkeypatch.delenv(ENV_TASK_TIMEOUT, raising=False)
        policy = RetryPolicy.resolve()
        assert policy.max_attempts == DEFAULT_MAX_ATTEMPTS
        assert policy.timeout is None

    def test_retries_is_the_cli_spelling(self):
        # --retries counts retries AFTER the first attempt.
        assert RetryPolicy.resolve(retries=0).max_attempts == 1
        assert RetryPolicy.resolve(retries=2).max_attempts == 3
        assert RetryPolicy.resolve(retries=-1).max_attempts == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_MAX_RETRIES, "4")
        monkeypatch.setenv(ENV_TASK_TIMEOUT, "12.5")
        policy = RetryPolicy.resolve()
        assert policy.max_attempts == 5
        assert policy.timeout == 12.5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_MAX_RETRIES, "9")
        monkeypatch.setenv(ENV_TASK_TIMEOUT, "99")
        policy = RetryPolicy.resolve(retries=1, timeout=5.0)
        assert policy.max_attempts == 2
        assert policy.timeout == 5.0

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENV_MAX_RETRIES, "lots")
        monkeypatch.setenv(ENV_TASK_TIMEOUT, "soon")
        policy = RetryPolicy.resolve()
        assert policy.max_attempts == DEFAULT_MAX_ATTEMPTS
        assert policy.timeout is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)


class TestBackoff:
    def test_capped_geometric_series(self):
        policy = RetryPolicy(
            backoff_base=0.05, backoff_factor=2.0, backoff_cap=2.0
        )
        assert policy.backoff(1) == pytest.approx(0.05)
        assert policy.backoff(2) == pytest.approx(0.10)
        assert policy.backoff(3) == pytest.approx(0.20)
        # Far past the cap the series flattens.
        assert policy.backoff(20) == 2.0

    def test_deterministic_no_jitter(self):
        policy = RetryPolicy()
        sequences = [
            [policy.backoff(attempt) for attempt in range(1, 8)]
            for _ in range(5)
        ]
        assert all(seq == sequences[0] for seq in sequences)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestTaskFailure:
    def test_to_dict_shape(self):
        failure = TaskFailure(
            benchmark="gcc",
            task="gshare",
            attempts=3,
            kind="timeout",
            message="attempt exceeded 10s",
        )
        payload = failure.to_dict()
        assert payload == {
            "scope": "task",
            "benchmark": "gcc",
            "task": "gshare",
            "attempts": 3,
            "kind": "timeout",
            "message": "attempt exceeded 10s",
        }

    def test_extra_fields_flow_through(self):
        failure = TaskFailure(
            benchmark="gcc", task="loop", attempts=1, kind="error",
            extra={"note": "injected"},
        )
        assert failure.to_dict()["note"] == "injected"
