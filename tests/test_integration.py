"""End-to-end integration tests: the paper's headline shapes.

These run the real pipeline (workload generation -> simulation ->
analysis) on reduced traces and assert the qualitative findings that
DESIGN.md section 5 commits to.  They are slower than unit tests but
anchor the reproduction as a whole.
"""

import pytest

from repro.analysis.runner import Lab
from repro.classify.per_address import classify_per_address
from repro.predictors.hybrid import OracleCombiner
from repro.workloads.suite import load_benchmark


@pytest.fixture(scope="module")
def labs():
    lengths = {"gcc": 20000, "go": 14000, "m88ksim": 13000, "vortex": 26000, "ijpeg": 16000}
    return {
        name: Lab(load_benchmark(name, length=length, run_seed=12345))
        for name, length in lengths.items()
    }


class TestHeadlineShapes:
    def test_go_is_the_hardest_benchmark(self, labs):
        accuracies = {name: lab.accuracy("gshare") for name, lab in labs.items()}
        assert min(accuracies, key=accuracies.get) == "go"

    def test_vortex_and_m88ksim_are_easy(self, labs):
        for name in ("vortex", "m88ksim"):
            assert labs[name].accuracy("gshare") > labs["gcc"].accuracy("gshare")

    def test_interference_free_gshare_beats_gshare(self, labs):
        for name, lab in labs.items():
            assert lab.accuracy("if_gshare") >= lab.accuracy("gshare") - 0.002, name

    def test_interference_gap_largest_for_gcc_go(self, labs):
        gaps = {
            name: lab.accuracy("if_gshare") - lab.accuracy("gshare")
            for name, lab in labs.items()
        }
        for easy in ("m88ksim", "vortex", "ijpeg"):
            assert gaps["gcc"] > gaps[easy]
            assert gaps["go"] > gaps[easy]

    def test_selective_three_rivals_if_gshare(self, labs):
        # Figure 4's headline: 3 oracle-chosen branches get within a
        # couple of points of (here: meet or beat) an interference-free
        # gshare using every recent outcome.
        for name, lab in labs.items():
            assert lab.selective_accuracy(3) > lab.accuracy("if_gshare") - 0.02, name

    def test_selective_beats_plain_gshare(self, labs):
        for name, lab in labs.items():
            assert lab.selective_accuracy(1) > lab.accuracy("gshare") - 0.005, name

    def test_gshare_with_corr_gains_most_on_gcc_go(self, labs):
        gains = {}
        for name, lab in labs.items():
            combined = OracleCombiner.combine(
                lab.trace, lab.correct("gshare"), lab.selective_correct(1)
            )
            gains[name] = float(combined.mean()) - lab.accuracy("gshare")
        assert gains["gcc"] > gains["m88ksim"]
        assert gains["go"] > gains["vortex"]

    def test_loop_class_is_large_in_loop_benchmarks(self, labs):
        fractions = {
            name: classify_per_address(lab).dynamic_fractions["loop"]
            for name, lab in labs.items()
        }
        assert fractions["ijpeg"] > 0.2
        assert fractions["ijpeg"] > fractions["go"]

    def test_loop_combiner_helps_ijpeg(self, labs):
        lab = labs["ijpeg"]
        loop_members = classify_per_address(lab).members("loop")
        combined = OracleCombiner.combine_with_mask(
            lab.trace, lab.correct("pas"), lab.correct("loop"), loop_members
        )
        assert float(combined.mean()) > lab.accuracy("pas")

    def test_both_fig9_tails_exist(self, labs):
        from repro.analysis.percentile import percentile_difference_curve

        for name in ("gcc", "go"):
            lab = labs[name]
            curve = percentile_difference_curve(
                lab.trace, lab.correct("gshare"), lab.correct("pas")
            )
            assert curve.tail(5) < -2.0   # PAs much better somewhere
            assert curve.tail(97) > 0.5   # gshare much better somewhere

    def test_biased_mass_dominates_static_best(self, labs):
        # Most of the dynamic weight that no dynamic predictor beats
        # belongs to heavily biased branches.
        classification = classify_per_address(labs["vortex"])
        assert classification.dynamic_fractions["ideal_static"] > 0.5
        assert classification.static_best_biased_fraction > 0.3


class TestReproducibility:
    def test_full_pipeline_is_deterministic(self):
        a = Lab(load_benchmark("compress", length=5000, run_seed=3))
        b = Lab(load_benchmark("compress", length=5000, run_seed=3))
        assert a.accuracy("gshare") == b.accuracy("gshare")
        assert a.selective_accuracy(2) == b.selective_accuracy(2)

    def test_different_inputs_same_program(self):
        # Same static program (build seed), different "input data":
        # accuracies differ but only modestly.
        a = Lab(load_benchmark("compress", length=8000, run_seed=1))
        b = Lab(load_benchmark("compress", length=8000, run_seed=2))
        assert a.accuracy("gshare") != b.accuracy("gshare")
        assert abs(a.accuracy("gshare") - b.accuracy("gshare")) < 0.05
