"""Tests for static predictors."""

import numpy as np
import pytest

from repro.predictors.base import simulate
from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BackwardTakenPredictor,
    IdealStaticPredictor,
    ProfileStaticPredictor,
)

from conftest import interleave, trace_from_steps, trace_from_string


class TestAlwaysPredictors:
    def test_always_taken(self):
        trace = trace_from_string("TTNT")
        assert AlwaysTakenPredictor().accuracy(trace) == pytest.approx(0.75)

    def test_always_not_taken(self):
        trace = trace_from_string("TTNT")
        assert AlwaysNotTakenPredictor().accuracy(trace) == pytest.approx(0.25)

    def test_vectorised_matches_generic(self):
        trace = trace_from_string("TNTTNNT")
        predictor = AlwaysTakenPredictor()
        assert np.array_equal(predictor.simulate(trace), simulate(predictor, trace))


class TestBackwardTaken:
    def test_btfnt_rule(self):
        trace = trace_from_steps(
            [
                (0x100, 0x80, True),   # backward taken: correct
                (0x100, 0x80, False),  # backward not-taken: wrong
                (0x100, 0x180, False), # forward not-taken: correct
                (0x100, 0x180, True),  # forward taken: wrong
            ]
        )
        correct = BackwardTakenPredictor().simulate(trace)
        assert list(correct) == [True, False, True, False]

    def test_vectorised_matches_generic(self):
        trace = trace_from_steps(
            [(0x100, 0x80, True), (0x100, 0x200, False), (0x50, 0x10, True)]
        )
        predictor = BackwardTakenPredictor()
        assert np.array_equal(predictor.simulate(trace), simulate(predictor, trace))


class TestProfileStatic:
    def test_follows_profile(self):
        predictor = ProfileStaticPredictor({1: True, 2: False})
        assert predictor.predict(1, 0) is True
        assert predictor.predict(2, 0) is False

    def test_default_for_unknown(self):
        predictor = ProfileStaticPredictor({}, default=True)
        assert predictor.predict(99, 0) is True

    def test_from_trace_majority(self):
        trace = interleave({1: [True, True, False], 2: [False, False, True]})
        predictor = ProfileStaticPredictor.from_trace(trace)
        assert predictor.predict(1, 0) is True
        assert predictor.predict(2, 0) is False

    def test_train_test_split(self):
        train = trace_from_string("TTTT")
        test = trace_from_string("TTNN")
        predictor = ProfileStaticPredictor.from_trace(train)
        assert predictor.accuracy(test) == pytest.approx(0.5)


class TestIdealStatic:
    def test_requires_fit_for_online_use(self):
        with pytest.raises(RuntimeError):
            IdealStaticPredictor().predict(1, 0)

    def test_simulate_self_profiles(self):
        trace = trace_from_string("TTTN")
        predictor = IdealStaticPredictor()
        assert predictor.accuracy(trace) == pytest.approx(0.75)
        # After simulate, the profile is available for online queries.
        assert predictor.predict(0x100, 0) is True

    def test_ideal_static_beats_any_fixed_direction(self):
        trace = trace_from_string("NNNT")
        ideal = IdealStaticPredictor().accuracy(trace)
        taken = AlwaysTakenPredictor().accuracy(trace)
        not_taken = AlwaysNotTakenPredictor().accuracy(trace)
        assert ideal >= max(taken, not_taken)

    def test_per_branch_directions(self):
        trace = interleave({1: [True] * 5, 2: [False] * 5})
        predictor = IdealStaticPredictor()
        assert predictor.accuracy(trace) == 1.0
        assert predictor.predict(1, 0) is True
        assert predictor.predict(2, 0) is False

    def test_unknown_branch_after_fit(self):
        predictor = IdealStaticPredictor().fit(trace_from_string("T"))
        assert predictor.predict(0xDEAD, 0) is False
