"""Tests for the determinism-hazard AST lint (repro.check.lint)."""

from pathlib import Path

import repro
from repro.check.lint import lint_paths, lint_source


def codes(diagnostics):
    return [diag.code for diag in diagnostics]


class TestUnseededRng:
    def test_unseeded_random_random_flagged(self):
        source = "import random\nrng = random.Random()\n"
        assert codes(lint_source(source)) == ["DH001"]

    def test_unseeded_bare_random_flagged(self):
        source = "from random import Random\nrng = Random()\n"
        assert codes(lint_source(source)) == ["DH001"]

    def test_seeded_rng_is_clean(self):
        source = "import random\nrng = random.Random(1234)\n"
        assert lint_source(source) == []

    def test_module_level_random_call_flagged(self):
        source = "import random\nx = random.random()\n"
        assert codes(lint_source(source)) == ["DH002"]

    def test_module_level_shuffle_flagged(self):
        source = "import random\nrandom.shuffle(items)\n"
        assert codes(lint_source(source)) == ["DH002"]

    def test_instance_method_call_is_clean(self):
        source = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert lint_source(source) == []


class TestFloatEquality:
    def test_float_literal_equality_flagged(self):
        source = "ok = accuracy == 0.97\n"
        assert codes(lint_source(source)) == ["DH003"]

    def test_float_literal_inequality_flagged(self):
        source = "bad = rate != 1.0\n"
        assert codes(lint_source(source)) == ["DH003"]

    def test_float_ordering_is_clean(self):
        source = "ok = accuracy >= 0.97\n"
        assert lint_source(source) == []

    def test_int_equality_is_clean(self):
        source = "ok = count == 3\n"
        assert lint_source(source) == []


class TestSetIteration:
    def test_for_over_set_call_flagged(self):
        source = "for pc in set(pcs):\n    print(pc)\n"
        assert codes(lint_source(source)) == ["DH004"]

    def test_for_over_set_literal_flagged(self):
        source = "for x in {1, 2, 3}:\n    print(x)\n"
        assert codes(lint_source(source)) == ["DH004"]

    def test_comprehension_over_set_flagged(self):
        source = "rows = [f(x) for x in set(xs)]\n"
        assert codes(lint_source(source)) == ["DH004"]

    def test_sorted_set_is_clean(self):
        source = "for pc in sorted(set(pcs)):\n    print(pc)\n"
        assert lint_source(source) == []

    def test_list_iteration_is_clean(self):
        source = "for x in [1, 2]:\n    print(x)\n"
        assert lint_source(source) == []


class TestNumpyRng:
    def test_unseeded_default_rng_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(lint_source(source)) == ["DH005"]

    def test_seeded_default_rng_is_clean(self):
        source = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert lint_source(source) == []

    def test_bare_default_rng_import_flagged(self):
        source = (
            "from numpy.random import default_rng\nrng = default_rng()\n"
        )
        assert codes(lint_source(source)) == ["DH005"]

    def test_global_numpy_draw_flagged(self):
        source = "import numpy\nx = numpy.random.rand(3)\n"
        assert codes(lint_source(source)) == ["DH005"]

    def test_global_numpy_seed_flagged(self):
        source = "import numpy as np\nnp.random.seed(0)\n"
        assert codes(lint_source(source)) == ["DH005"]

    def test_unseeded_random_state_flagged(self):
        source = "import numpy as np\nrng = np.random.RandomState()\n"
        assert codes(lint_source(source)) == ["DH005"]

    def test_seeded_random_state_is_clean(self):
        source = "import numpy as np\nrng = np.random.RandomState(7)\n"
        assert lint_source(source) == []

    def test_generator_method_call_is_clean(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(9)\n"
            "x = rng.random()\n"
        )
        assert lint_source(source) == []


class TestSuppression:
    def test_ignore_marker_suppresses_finding(self):
        source = "import random\nrng = random.Random()  # check: ignore\n"
        assert lint_source(source) == []

    def test_ignore_marker_suppresses_dh005(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # check: ignore\n"
        )
        assert lint_source(source) == []


class TestSyntaxError:
    def test_unparseable_source_reports_dh000(self):
        assert codes(lint_source("def broken(:\n")) == ["DH000"]


class TestRepoIsClean:
    def test_package_source_has_no_hazards(self):
        package_root = Path(repro.__file__).parent
        diagnostics = lint_paths([package_root])
        assert diagnostics == [], "\n".join(str(d) for d in diagnostics)

    def test_lint_paths_accepts_single_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert codes(lint_paths([bad])) == ["DH002"]
