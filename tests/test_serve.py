"""End-to-end tests for the analysis server (repro.serve + repro.client).

The acceptance bar for analysis-as-a-service:

* three concurrent clients posting the same spec cause exactly one
  execution (dedup by spec digest), all see the identical manifest,
  and that manifest obs-diffs clean against a direct ``run_spec`` of
  the same spec;
* admission control is per client and bounded globally: over-limit
  submissions come back as HTTP 429 with stable ``admission.*`` codes,
  rehydrated client-side as :class:`AdmissionError`;
* the event stream is well-formed ``event/v1`` ND-JSON: contiguous
  sequence numbers, ``queued`` first, a terminal ``done``/``failed``.
"""

import dataclasses
import json
import threading

import pytest

from repro.api import run_spec
from repro.client import ServeClient
from repro.errors import AdmissionError, SpecError
from repro.obs.manifest import diff_manifests, validate_manifest
from repro.serve import EVENT_SCHEMA, AnalysisServer, ServerThread
from repro.spec import EngineOptions, spec_from_kwargs

MAX_LENGTH = 1500


def small_spec(**kwargs):
    kwargs.setdefault("max_length", MAX_LENGTH)
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("use_cache", False)
    # fig9 declares sims (gshare, pas) so sim.simulations counts real work.
    return spec_from_kwargs(["fig9"], **kwargs)


@pytest.fixture()
def server(tmp_path):
    options = EngineOptions(
        jobs=1,
        cache_dir=str(tmp_path / "serve-cache"),
        journal=str(tmp_path / "serve_journal.jsonl"),
        resume=True,
    )
    srv = AnalysisServer(options, instance_id="test-server", drain_grace=0.0)
    thread = ServerThread(srv)
    thread.start()
    yield srv, thread
    thread.stop()


@pytest.fixture()
def paused_server(tmp_path):
    """A server whose executor worker is not running: queues only fill."""
    options = EngineOptions(jobs=1, cache=False)
    srv = AnalysisServer(
        options,
        instance_id="test-paused",
        max_inflight=2,
        max_queue=3,
        autostart=False,
        drain_grace=0.0,
    )
    thread = ServerThread(srv)
    thread.start()
    yield srv, thread
    thread.call_soon(srv.start_worker)
    thread.stop()


class TestDedupAcrossClients:
    def test_three_clients_one_execution(self, server, tmp_path):
        srv, thread = server
        spec = small_spec()
        results = {}
        errors = []

        def submit_and_wait(client_id):
            try:
                client = ServeClient(thread.url, client_id=client_id)
                run_id, _created = client.submit(spec)
                results[client_id] = client.wait(run_id, timeout=120)
            except Exception as error:  # surfaced via the errors list
                errors.append((client_id, error))

        workers = [
            threading.Thread(target=submit_and_wait, args=(f"client-{i}",))
            for i in range(3)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=180)
        assert errors == []
        assert len(results) == 3

        docs = list(results.values())
        assert all(doc["status"] == "done" for doc in docs)
        assert len({doc["id"] for doc in docs}) == 1
        assert docs[0]["id"] == spec.digest()

        # All three clients see the identical result envelope.
        envelopes = [doc["result"] for doc in docs]
        canonical = json.dumps(envelopes[0], sort_keys=True)
        assert all(
            json.dumps(env, sort_keys=True) == canonical
            for env in envelopes
        )

        # Exactly one execution: one submission, two dedup hits, one
        # completion -- and the executed run simulated work only once.
        counters = ServeClient(thread.url).metrics()["counters"]
        assert counters["serve.submitted"] == 1
        assert counters["serve.dedup_hits"] == 2
        assert counters["serve.completed"] == 1
        run_counters = envelopes[0]["metrics"]["counters"]
        assert run_counters["sim.simulations"] > 0
        assert run_counters["experiments.run"] == 1

    def test_served_manifest_diffs_clean_against_direct_run(
        self, server, tmp_path
    ):
        srv, thread = server
        spec = small_spec()
        client = ServeClient(thread.url, client_id="diff-check")
        run_id, _ = client.submit(spec)
        doc = client.wait(run_id, timeout=120)
        served_manifest = doc["result"]["manifest"]
        assert validate_manifest(served_manifest) == []
        assert served_manifest["served_by"] == "test-server"

        direct_spec = dataclasses.replace(
            spec,
            engine=dataclasses.replace(
                spec.engine, cache_dir=str(tmp_path / "direct-cache")
            ),
        )
        direct = run_spec(direct_spec)
        assert direct.manifest["served_by"] is None
        assert diff_manifests(served_manifest, direct.manifest) == []
        # The spec executed is byte-for-byte the identity submitted.
        assert doc["result"]["spec_digest"] == direct_spec.digest()

    def test_completed_runs_dedupe_too(self, server):
        srv, thread = server
        spec = small_spec()
        client = ServeClient(thread.url, client_id="resubmit")
        run_id, created = client.submit(spec)
        assert created
        client.wait(run_id, timeout=120)
        again, created_again = client.submit(spec)
        assert again == run_id
        assert not created_again
        # Dedup onto a completed run returns the result immediately.
        assert client.status(run_id)["result"] is not None


class TestAdmissionControl:
    def test_per_client_inflight_limit(self, paused_server):
        srv, thread = paused_server
        client = ServeClient(thread.url, client_id="greedy")
        client.submit(small_spec(seed=1))
        client.submit(small_spec(seed=2))
        with pytest.raises(AdmissionError) as excinfo:
            client.submit(small_spec(seed=3))
        assert excinfo.value.code == "admission.client"
        assert excinfo.value.http_status == 429
        assert excinfo.value.retry_after is not None

    def test_global_queue_bound(self, paused_server):
        srv, thread = paused_server
        ServeClient(thread.url, client_id="a").submit(small_spec(seed=1))
        ServeClient(thread.url, client_id="b").submit(small_spec(seed=2))
        ServeClient(thread.url, client_id="c").submit(small_spec(seed=3))
        with pytest.raises(AdmissionError) as excinfo:
            ServeClient(thread.url, client_id="d").submit(small_spec(seed=4))
        assert excinfo.value.code == "admission.queue"

    def test_dedup_bypasses_admission(self, paused_server):
        # Resubmitting an already-queued spec is free: it never counts
        # against the limits.
        srv, thread = paused_server
        client = ServeClient(thread.url, client_id="greedy")
        one = small_spec(seed=1)
        client.submit(one)
        client.submit(small_spec(seed=2))
        run_id, created = client.submit(one)
        assert run_id == one.digest()
        assert not created

    def test_rejections_are_counted(self, paused_server):
        srv, thread = paused_server
        client = ServeClient(thread.url, client_id="greedy")
        client.submit(small_spec(seed=1))
        client.submit(small_spec(seed=2))
        with pytest.raises(AdmissionError):
            client.submit(small_spec(seed=3))
        counters = client.metrics()["counters"]
        assert counters["serve.rejected"] == 1
        assert counters["serve.client.greedy.submitted"] == 2


class TestWireFormat:
    def test_malformed_spec_is_spec_error(self, server):
        srv, thread = server
        client = ServeClient(thread.url, client_id="bad")
        status, payload = client._request(
            "POST", "/v1/runs", b'{"kind": "nonsense", "bogus": 1}'
        )
        assert status == 400
        assert payload["schema"] == "error/v1"
        assert payload["error"].startswith("spec.")
        with pytest.raises(SpecError):
            client._checked("POST", "/v1/runs", b'{"bogus": 1}')

    def test_unknown_run_is_404(self, server):
        srv, thread = server
        client = ServeClient(thread.url)
        status, payload = client._request("GET", "/v1/runs/deadbeef")
        assert status == 404
        assert payload["error"] == "run.unknown"

    def test_healthz(self, server):
        srv, thread = server
        doc = ServeClient(thread.url).healthz()
        assert doc["ok"] is True
        assert doc["served_by"] == "test-server"

    def test_event_stream_schema(self, server):
        srv, thread = server
        spec = small_spec()
        client = ServeClient(thread.url, client_id="events")
        run_id, _ = client.submit(spec)
        client.wait(run_id, timeout=120)
        events = list(client.events(run_id))

        assert [event["seq"] for event in events] == list(range(len(events)))
        assert all(event["schema"] == EVENT_SCHEMA for event in events)
        assert all(event["run"] == run_id for event in events)
        kinds = [event["type"] for event in events]
        assert kinds[0] == "queued"
        assert kinds[1] == "started"
        assert kinds[-1] == "done"
        assert "manifest" in kinds and "metrics" in kinds and "log" in kinds
        assert events[-1]["ok"] is True

        manifest_event = next(e for e in events if e["type"] == "manifest")
        envelope = client.status(run_id)["result"]
        assert (
            manifest_event["manifest"]["spec_digest"]
            == envelope["manifest"]["spec_digest"]
        )
        digests = {
            entry["id"]: entry["result_digest"]
            for entry in manifest_event["manifest"]["experiments"]
        }
        assert digests == {
            entry["id"]: entry["result_digest"]
            for entry in envelope["manifest"]["experiments"]
        }

    def test_status_embeds_untouched_envelope(self, server):
        srv, thread = server
        spec = small_spec()
        client = ServeClient(thread.url, client_id="envelope")
        run_id, _ = client.submit(spec)
        doc = client.wait(run_id, timeout=120)
        envelope = doc["result"]
        assert envelope["schema"] == "result/v1"
        assert envelope["kind"] == "report"
        assert envelope["spec"] == spec.identity()
        assert doc["served_by"] == "test-server"
