"""Tests for repro.trace.record."""

import pytest

from repro.trace.record import BranchRecord


class TestBranchRecord:
    def test_fields(self):
        record = BranchRecord(pc=0x100, target=0x80, taken=True)
        assert record.pc == 0x100
        assert record.target == 0x80
        assert record.taken is True

    def test_backward_branch(self):
        assert BranchRecord(pc=0x100, target=0x80, taken=True).is_backward

    def test_forward_branch(self):
        assert not BranchRecord(pc=0x100, target=0x180, taken=True).is_backward

    def test_self_target_is_not_backward(self):
        assert not BranchRecord(pc=0x100, target=0x100, taken=False).is_backward

    def test_negative_pc_rejected(self):
        with pytest.raises(ValueError):
            BranchRecord(pc=-1, target=0, taken=False)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            BranchRecord(pc=0, target=-4, taken=False)

    def test_frozen(self):
        record = BranchRecord(pc=1, target=2, taken=False)
        with pytest.raises(AttributeError):
            record.pc = 5

    def test_equality(self):
        assert BranchRecord(1, 2, True) == BranchRecord(1, 2, True)
        assert BranchRecord(1, 2, True) != BranchRecord(1, 2, False)
