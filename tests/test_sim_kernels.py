"""Kernel-equivalence property tests.

Every predictor that overrides ``simulate()`` with a vectorised kernel
(:mod:`repro.sim.kernels`) must be bit-identical to the generic scalar
predict-then-update loop -- from a fresh state, from a carried
(mid-trace) state, on every suite workload, and on random traces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.predictors.base import simulate as generic_simulate
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.interference_free import InterferenceFreePAs
from repro.predictors.loop import LoopPredictor
from repro.predictors.pattern import (
    BlockPatternPredictor,
    FixedLengthPatternPredictor,
)
from repro.trace.trace import Trace
from repro.workloads.suite import BENCHMARK_NAMES, load_benchmark

from conftest import trace_from_string

#: Every kernelised predictor, as (label, zero-arg factory).
KERNEL_FACTORIES = [
    ("bimodal-4b", lambda: BimodalPredictor(table_bits=4)),
    ("bimodal-12b", lambda: BimodalPredictor(table_bits=12)),
    ("bimodal-1bit", lambda: BimodalPredictor(table_bits=6, counter_bits=1)),
    ("if-pas-0h", lambda: InterferenceFreePAs(history_bits=0)),
    ("if-pas-2h", lambda: InterferenceFreePAs(history_bits=2)),
    ("if-pas-6h", lambda: InterferenceFreePAs(history_bits=6)),
    ("loop", LoopPredictor),
    ("block", BlockPatternPredictor),
    ("fixed-1", lambda: FixedLengthPatternPredictor(1)),
    ("fixed-3", lambda: FixedLengthPatternPredictor(3)),
    ("fixed-5", lambda: FixedLengthPatternPredictor(5)),
]

FACTORY_IDS = [label for label, _ in KERNEL_FACTORIES]
FACTORIES = [factory for _, factory in KERNEL_FACTORIES]


def random_trace(seed: int, n: int, num_branches: int, bias: float) -> Trace:
    rng = np.random.default_rng(seed)
    pcs = rng.integers(0, num_branches, n).astype(np.uint64) * np.uint64(4)
    pcs += np.uint64(0x1000)
    return Trace(pcs, pcs + np.uint64(16), rng.random(n) < bias)


@pytest.fixture(scope="module")
def suite_traces():
    return {name: load_benchmark(name, length=2500) for name in BENCHMARK_NAMES}


class TestKernelEquivalence:
    @pytest.mark.parametrize("factory", FACTORIES, ids=FACTORY_IDS)
    def test_all_suite_workloads(self, factory, suite_traces):
        for name, trace in suite_traces.items():
            fast = factory().simulate(trace)
            reference = generic_simulate(factory(), trace)
            assert np.array_equal(fast, reference), name

    @pytest.mark.parametrize("factory", FACTORIES, ids=FACTORY_IDS)
    def test_random_traces(self, factory):
        for seed in range(6):
            trace = random_trace(
                seed, n=400 + 137 * seed, num_branches=1 + 13 * seed,
                bias=(0.1, 0.5, 0.85, 0.97, 0.5, 0.3)[seed],
            )
            fast = factory().simulate(trace)
            reference = generic_simulate(factory(), trace)
            assert np.array_equal(fast, reference), seed

    @pytest.mark.parametrize("factory", FACTORIES, ids=FACTORY_IDS)
    def test_chained_simulate_carries_state(self, factory):
        """Two kernel calls must train across the split like one scalar run."""
        trace = load_benchmark("compress", length=3000)
        half = len(trace) // 2
        first, second = trace[:half], trace[half:]
        predictor = factory()
        fast = np.concatenate(
            [predictor.simulate(first), predictor.simulate(second)]
        )
        reference = generic_simulate(factory(), trace)
        assert np.array_equal(fast, reference)

    @pytest.mark.parametrize("factory", FACTORIES, ids=FACTORY_IDS)
    def test_edge_traces(self, factory):
        for spec in ("", "T", "N", "TN", "TTTN" * 12, "T" * 40, "NT" * 17):
            trace = trace_from_string(spec)
            fast = factory().simulate(trace)
            reference = generic_simulate(factory(), trace)
            assert np.array_equal(fast, reference), spec

    @settings(max_examples=40, deadline=None)
    @given(
        outcomes=st.lists(st.booleans(), max_size=120),
        pcs=st.lists(st.integers(0, 6), max_size=120),
        which=st.integers(0, len(KERNEL_FACTORIES) - 1),
    )
    def test_hypothesis_random(self, outcomes, pcs, which):
        n = min(len(outcomes), len(pcs))
        trace = Trace(
            np.asarray([0x400 + 4 * p for p in pcs[:n]], dtype=np.uint64),
            np.full(n, 0x80, dtype=np.uint64),
            np.asarray(outcomes[:n], dtype=bool),
        )
        factory = FACTORIES[which]
        fast = factory().simulate(trace)
        reference = generic_simulate(factory(), trace)
        assert np.array_equal(fast, reference)


class TestKernelStateWriteback:
    def test_loop_entries_match_scalar(self):
        trace = trace_from_string("TTTN" * 8 + "TTN" * 5)
        kernel = LoopPredictor()
        kernel.simulate(trace)
        scalar = LoopPredictor()
        generic_simulate(scalar, trace)
        assert kernel.btb_size() == scalar.btb_size()
        for pc, entry in scalar._entries.items():
            other = kernel._entries[pc]
            assert (
                entry.direction, entry.expected,
                entry.run_length, entry.opposite_streak,
            ) == (
                other.direction, other.expected,
                other.run_length, other.opposite_streak,
            )

    def test_bimodal_table_matches_scalar(self):
        trace = load_benchmark("go", length=1500)
        kernel = BimodalPredictor(table_bits=6)
        kernel.simulate(trace)
        scalar = BimodalPredictor(table_bits=6)
        generic_simulate(scalar, trace)
        assert np.array_equal(kernel._table.raw, scalar._table.raw)

    def test_fixed_ring_matches_scalar(self):
        trace = load_benchmark("perl", length=1200)
        kernel = FixedLengthPatternPredictor(4)
        kernel.simulate(trace)
        scalar = FixedLengthPatternPredictor(4)
        generic_simulate(scalar, trace)
        assert kernel._state == scalar._state
