"""Tests for the ``repro check`` CLI wiring (repro.check.cli)."""

import pytest

from repro.check import cli as check_cli
from repro.cli import main as repro_main
from repro.tools import main as tools_main


class TestCheckCli:
    def test_full_check_passes_on_seed_repo(self, capsys):
        assert check_cli.main([]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_single_pass_selection(self, capsys):
        assert check_cli.main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "lint:" in out
        assert "ir:" not in out

    def test_unknown_pass_rejected(self):
        with pytest.raises(SystemExit):
            check_cli.main(["nonsense"])

    def test_lint_root_failure_sets_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "hazard.py"
        bad.write_text("import random\nx = random.random()\n")
        assert check_cli.main(["lint", "--lint-root", str(tmp_path)]) == 1
        assert "DH002" in capsys.readouterr().out


class TestReproCliDispatch:
    def test_python_m_repro_check_dispatches(self, capsys):
        assert repro_main(["check", "lint"]) == 0
        assert "lint:" in capsys.readouterr().out

    def test_experiment_ids_still_rejected(self, capsys):
        assert repro_main(["not-an-experiment"]) == 2


class TestToolsCheckSubcommand:
    def test_tools_check_runs_lint_pass(self, capsys):
        assert tools_main(["check", "lint"]) == 0
        assert "lint:" in capsys.readouterr().out

    def test_tools_check_contracts_pass(self, capsys):
        assert tools_main(["check", "contracts"]) == 0
        out = capsys.readouterr().out
        assert "contracts:" in out
