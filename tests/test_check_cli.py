"""Tests for the ``repro check`` CLI wiring (repro.check.cli)."""

import json
from pathlib import Path

import pytest

from repro.check import cli as check_cli
from repro.cli import main as repro_main
from repro.tools import main as tools_main

FIXTURES = Path(__file__).parent / "fixtures" / "check_defects"

DEFECT_ARGS = [
    "deps", "workers",
    "--deps-experiments-root", str(FIXTURES / "experiments"),
    "--deps-config", str(FIXTURES / "bad_config.py"),
    "--workers-entry", str(FIXTURES / "bad_worker.py") + ":compute_task",
]


class TestCheckCli:
    def test_full_check_passes_on_seed_repo(self, capsys):
        assert check_cli.main([]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_single_pass_selection(self, capsys):
        assert check_cli.main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "lint:" in out
        assert "ir:" not in out

    def test_unknown_pass_rejected(self):
        with pytest.raises(SystemExit):
            check_cli.main(["nonsense"])

    def test_lint_root_failure_sets_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "hazard.py"
        bad.write_text("import random\nx = random.random()\n")
        assert check_cli.main(["lint", "--lint-root", str(tmp_path)]) == 1
        assert "DH002" in capsys.readouterr().out


class TestNewPasses:
    def test_deps_and_workers_in_pass_names(self):
        assert check_cli.PASS_NAMES == [
            "ir", "contracts", "lint", "deps", "workers"
        ]

    def test_deps_and_workers_clean_on_seed_repo(self, capsys):
        assert check_cli.main(["deps", "workers"]) == 0
        out = capsys.readouterr().out
        assert "deps:" in out
        assert "workers:" in out

    def test_defect_fixtures_fail_the_check(self, capsys):
        assert check_cli.main(DEFECT_ARGS) == 1
        out = capsys.readouterr().out
        for code in ("DS001", "DS002", "DS003", "DS004", "DS005",
                     "WS001", "WS002", "WS003", "WS004"):
            assert code in out


class TestJsonFormat:
    def test_json_document_shape(self, capsys):
        assert check_cli.main(DEFECT_ARGS + ["--format", "json"]) == 1
        out = capsys.readouterr().out
        document = json.loads(out)  # progress lines suppressed
        assert document["passes"] == ["deps", "workers"]
        assert document["errors"] == 12
        assert document["warnings"] == 2
        record = document["diagnostics"][0]
        assert set(record) == {
            "pass", "code", "severity", "message", "location", "file",
            "line",
        }
        assert all(
            r["line"] is None or isinstance(r["line"], int)
            for r in document["diagnostics"]
        )

    def test_json_clean_run(self, capsys):
        assert check_cli.main(["lint", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document == {
            "passes": ["lint"], "errors": 0, "warnings": 0,
            "diagnostics": [],
        }


class TestGithubAnnotations:
    def test_error_and_warning_lines_emitted(self, capsys):
        assert check_cli.main(DEFECT_ARGS + ["--github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "::warning file=" in out
        assert ",title=DS004::" in out
        assert ",line=" in out

    def test_no_annotations_on_clean_run(self, capsys):
        assert check_cli.main(["lint", "--github"]) == 0
        assert "::error" not in capsys.readouterr().out


class TestReproCliDispatch:
    def test_python_m_repro_check_dispatches(self, capsys):
        assert repro_main(["check", "lint"]) == 0
        assert "lint:" in capsys.readouterr().out

    def test_experiment_ids_still_rejected(self, capsys):
        assert repro_main(["not-an-experiment"]) == 2


class TestToolsCheckSubcommand:
    def test_tools_check_runs_lint_pass(self, capsys):
        assert tools_main(["check", "lint"]) == 0
        assert "lint:" in capsys.readouterr().out

    def test_tools_check_contracts_pass(self, capsys):
        assert tools_main(["check", "contracts"]) == 0
        out = capsys.readouterr().out
        assert "contracts:" in out

    def test_tools_check_forwards_new_passes_and_format(self, capsys):
        assert tools_main(["check", "deps", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["passes"] == ["deps"]
