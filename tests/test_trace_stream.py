"""Tests for the .bpt binary trace formats (BPT1 and chunked BPT2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.stream import (
    BPT2Writer,
    HEADER2_SIZE,
    MAGIC,
    MAGIC2,
    TraceFormatError,
    TraceStream,
    normalize_chunk_branches,
    read_trace,
    write_trace,
    write_trace_chunked,
)
from repro.trace.trace import Trace

from conftest import trace_from_steps, trace_from_string


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        trace = trace_from_steps([(1, 2, True), (3, 4, False), (5, 6, True)])
        path = tmp_path / "t.bpt"
        write_trace(trace, path)
        assert read_trace(path) == trace

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.bpt"
        write_trace(Trace.empty(), path)
        loaded = read_trace(path)
        assert len(loaded) == 0

    def test_large_addresses(self, tmp_path):
        trace = trace_from_steps([(2**60, 2**61, True)])
        path = tmp_path / "big.bpt"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded[0].pc == 2**60
        assert loaded[0].target == 2**61

    def test_non_multiple_of_eight_length(self, tmp_path):
        trace = trace_from_string("TNTNTNTNTNT")  # 11 outcomes
        path = tmp_path / "odd.bpt"
        write_trace(trace, path)
        assert read_trace(path) == trace

    def test_accepts_pathlike_and_str(self, tmp_path):
        trace = trace_from_string("TN")
        path = tmp_path / "p.bpt"
        write_trace(trace, str(path))
        assert read_trace(str(path)) == trace


class TestMalformedFiles:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bpt"
        path.write_bytes(b"XXXX" + b"\x00" * 16)
        with pytest.raises(TraceFormatError, match="bad magic"):
            read_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bpt"
        path.write_bytes(MAGIC + b"\x01")
        with pytest.raises(TraceFormatError, match="truncated header"):
            read_trace(path)

    def test_truncated_columns(self, tmp_path):
        path = tmp_path / "cols.bpt"
        path.write_bytes(MAGIC + np.uint64(10).tobytes() + b"\x00" * 8)
        with pytest.raises(TraceFormatError, match="truncated address"):
            read_trace(path)

    def test_truncated_outcomes(self, tmp_path):
        trace = trace_from_string("TNTN")
        path = tmp_path / "out.bpt"
        write_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-1])
        with pytest.raises(TraceFormatError, match="truncated outcome"):
            read_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "nil.bpt"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            read_trace(path)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**63 - 1),
            st.integers(min_value=0, max_value=2**63 - 1),
            st.booleans(),
        ),
        max_size=200,
    )
)
def test_property_round_trip_preserves_trace(tmp_path_factory, steps):
    trace = trace_from_steps(steps)
    path = tmp_path_factory.mktemp("bpt") / "prop.bpt"
    write_trace(trace, path)
    assert read_trace(path) == trace


class TestChunkSizeNormalization:
    def test_none_is_the_default_window(self):
        from repro.trace.stream import DEFAULT_CHUNK_BRANCHES

        assert normalize_chunk_branches(None) == DEFAULT_CHUNK_BRANCHES

    def test_rounds_up_to_a_multiple_of_eight(self):
        assert normalize_chunk_branches(1) == 8
        assert normalize_chunk_branches(8) == 8
        assert normalize_chunk_branches(13) == 16
        assert normalize_chunk_branches(65536) == 65536

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="chunk_branches"):
            normalize_chunk_branches(0)
        with pytest.raises(ValueError, match="chunk_branches"):
            normalize_chunk_branches(-4)


class TestBPT2RoundTrip:
    @pytest.fixture()
    def trace(self):
        rng = np.random.default_rng(3)
        n = 1000
        pcs = rng.integers(0, 64, n).astype(np.uint64) * np.uint64(4)
        return Trace(pcs, pcs + np.uint64(0x40), rng.random(n) < 0.6)

    def test_round_trip_multi_chunk(self, tmp_path, trace):
        path = tmp_path / "t2.bpt"
        write_trace_chunked(trace, path, chunk_branches=104)
        assert path.read_bytes()[:4] == MAGIC2
        assert read_trace(path) == trace

    def test_stream_chunks_tile_the_trace(self, tmp_path, trace):
        path = tmp_path / "t2.bpt"
        write_trace_chunked(trace, path, chunk_branches=104)
        stream = TraceStream.open(path)
        assert len(stream) == len(trace)
        assert stream.chunk_branches == 104
        assert stream.num_chunks == 10
        assert stream.spans()[0] == (0, 104)
        assert stream.spans()[-1] == (936, 1000)
        rebuilt = stream.whole()
        assert rebuilt == trace

    def test_chunk_random_access(self, tmp_path, trace):
        path = tmp_path / "t2.bpt"
        write_trace_chunked(trace, path, chunk_branches=104)
        stream = TraceStream.open(path)
        assert stream.chunk(3) == trace[312:416]
        with pytest.raises(IndexError, match="out of range"):
            stream.chunk(10)

    def test_streaming_digest_matches_whole_trace_digest(
        self, tmp_path, trace
    ):
        path = tmp_path / "t2.bpt"
        write_trace_chunked(trace, path, chunk_branches=104)
        assert TraceStream.open(path).digest() == trace.digest()
        assert TraceStream.from_trace(trace, 104).digest() == trace.digest()

    def test_bpt1_stream_digest_matches_too(self, tmp_path, trace):
        path = tmp_path / "t1.bpt"
        write_trace(trace, path)
        stream = TraceStream.open(path, chunk_branches=104)
        assert stream.digest() == trace.digest()
        assert stream.whole() == trace

    def test_single_short_chunk(self, tmp_path):
        trace = trace_from_string("TNTNT")
        path = tmp_path / "short.bpt"
        write_trace_chunked(trace, path, chunk_branches=64)
        stream = TraceStream.open(path)
        assert stream.num_chunks == 1
        assert stream.whole() == trace

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty2.bpt"
        write_trace_chunked(Trace.empty(), path)
        stream = TraceStream.open(path)
        assert stream.num_chunks == 0
        assert len(stream.whole()) == 0
        assert len(read_trace(path)) == 0


class TestBPT2Writer:
    def test_rejects_mismatched_columns(self, tmp_path):
        with BPT2Writer(tmp_path / "w.bpt", 8) as writer:
            with pytest.raises(ValueError, match="equal length"):
                writer.append_chunk([1, 2], [3, 4], [True])
            writer.append_chunk([1], [2], [True])

    def test_rejects_oversized_and_empty_chunks(self, tmp_path):
        with BPT2Writer(tmp_path / "w.bpt", 8) as writer:
            with pytest.raises(ValueError, match="outside"):
                writer.append_chunk([0] * 9, [0] * 9, [False] * 9)
            with pytest.raises(ValueError, match="outside"):
                writer.append_chunk([], [], [])
            writer.append_chunk([1], [2], [True])

    def test_only_the_final_chunk_may_be_short(self, tmp_path):
        writer = BPT2Writer(tmp_path / "w.bpt", 8)
        writer.append_chunk([0] * 4, [0] * 4, [False] * 4)  # short: final
        with pytest.raises(ValueError, match="final chunk"):
            writer.append_chunk([0] * 8, [0] * 8, [False] * 8)
        writer.close()

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = BPT2Writer(tmp_path / "w.bpt", 8)
        writer.append_chunk([1], [2], [True])
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            writer.append_chunk([1], [2], [True])


class TestMalformedBPT2:
    def _valid_file(self, tmp_path):
        trace = trace_from_string("TN" * 10)  # 20 branches, 3 chunks of 8
        path = tmp_path / "m2.bpt"
        write_trace_chunked(trace, path, chunk_branches=8)
        return path

    def _patch(self, path, offset, value):
        data = bytearray(path.read_bytes())
        data[offset : offset + 8] = int(value).to_bytes(8, "little")
        path.write_bytes(bytes(data))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "h.bpt"
        path.write_bytes(MAGIC2 + b"\x00" * (HEADER2_SIZE - 8))
        with pytest.raises(TraceFormatError, match="truncated header"):
            TraceStream.open(path)

    def test_unaligned_chunk_size_rejected(self, tmp_path):
        path = self._valid_file(tmp_path)
        self._patch(path, 16, 12)  # chunk_branches field
        with pytest.raises(TraceFormatError, match="multiple of 8"):
            TraceStream.open(path)

    def test_chunk_count_mismatch_rejected(self, tmp_path):
        path = self._valid_file(tmp_path)
        self._patch(path, 24, 7)  # num_chunks field
        with pytest.raises(TraceFormatError, match="chunks indexed"):
            TraceStream.open(path)

    def test_truncated_index_rejected(self, tmp_path):
        path = self._valid_file(tmp_path)
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(TraceFormatError, match="truncated chunk index"):
            TraceStream.open(path)

    def test_overrunning_chunk_offset_rejected(self, tmp_path):
        path = self._valid_file(tmp_path)
        index_offset = int.from_bytes(
            path.read_bytes()[32:40], "little"
        )
        self._patch(path, index_offset, 0)  # first chunk's offset
        with pytest.raises(TraceFormatError, match="overruns"):
            TraceStream.open(path)

    def test_unknown_magic_rejected(self, tmp_path):
        path = tmp_path / "x.bpt"
        path.write_bytes(b"BPT9" + b"\x00" * 64)
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceStream.open(path)


class TestTextFormat:
    def test_round_trip(self, tmp_path):
        from repro.trace.stream import read_text_trace, write_text_trace

        trace = trace_from_steps([(0x100, 0x80, True), (0x104, 0x200, False)])
        path = tmp_path / "t.txt"
        write_text_trace(trace, path)
        assert read_text_trace(path) == trace

    def test_comments_and_blanks_skipped(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "c.txt"
        path.write_text("# header\n\n0x10 0x20 T\n  \n0x14 0x8 N\n")
        trace = read_text_trace(path)
        assert len(trace) == 2
        assert trace[1].is_backward

    def test_outcome_spellings(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "s.txt"
        path.write_text("16 32 taken\n16 32 0\n16 32 N\n16 32 1\n")
        trace = read_text_trace(path)
        assert list(trace.taken) == [True, False, False, True]

    def test_decimal_addresses(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "d.txt"
        path.write_text("256 512 T\n")
        assert read_text_trace(path)[0].pc == 256

    def test_malformed_line_rejected(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "m.txt"
        path.write_text("0x10 T\n")
        with pytest.raises(TraceFormatError, match="expected"):
            read_text_trace(path)

    def test_bad_address_rejected(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "a.txt"
        path.write_text("zork 0x20 T\n")
        with pytest.raises(TraceFormatError, match="bad address"):
            read_text_trace(path)

    def test_bad_outcome_rejected(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "o.txt"
        path.write_text("0x10 0x20 maybe\n")
        with pytest.raises(TraceFormatError, match="bad outcome"):
            read_text_trace(path)

    def test_tools_accept_text_traces(self, tmp_path, capsys):
        from repro.tools import main

        path = tmp_path / "g.txt"
        assert main(["generate", "compress", "-o", str(path), "--length", "500"]) == 0
        assert main(["stats", str(path)]) == 0
        assert "dynamic branches:        500" in capsys.readouterr().out


class TestLargeRoundTrips:
    """Round-trip fidelity at batch-write / frombuffer-parse scale."""

    @pytest.fixture(scope="class")
    def big_trace(self):
        rng = np.random.default_rng(9)
        n = 100_000
        pcs = rng.integers(0, 500, n).astype(np.uint64) * np.uint64(4)
        pcs += np.uint64(0x10000)
        targets = pcs + rng.integers(-256, 256, n).astype(np.int64).astype(
            np.uint64
        )
        return Trace(pcs, targets, rng.random(n) < 0.6)

    def test_text_round_trip_100k(self, tmp_path, big_trace):
        from repro.trace.stream import read_text_trace, write_text_trace

        path = tmp_path / "big.txt"
        write_text_trace(big_trace, path)
        assert read_text_trace(path) == big_trace

    def test_binary_round_trip_100k(self, tmp_path, big_trace):
        path = tmp_path / "big.bpt"
        write_trace(big_trace, path)
        assert read_trace(path) == big_trace

    def test_text_chunk_boundary_lengths(self, tmp_path):
        # Exercise the join-chunk edges (chunk size 8192 lines).
        from repro.trace.stream import read_text_trace, write_text_trace

        for n in (8191, 8192, 8193):
            trace = trace_from_string("TN" * (n // 2) + "T" * (n % 2))
            path = tmp_path / f"c{n}.txt"
            write_text_trace(trace, path)
            assert read_text_trace(path) == trace
