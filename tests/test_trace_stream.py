"""Tests for the .bpt binary trace format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.stream import MAGIC, TraceFormatError, read_trace, write_trace
from repro.trace.trace import Trace

from conftest import trace_from_steps, trace_from_string


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        trace = trace_from_steps([(1, 2, True), (3, 4, False), (5, 6, True)])
        path = tmp_path / "t.bpt"
        write_trace(trace, path)
        assert read_trace(path) == trace

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.bpt"
        write_trace(Trace.empty(), path)
        loaded = read_trace(path)
        assert len(loaded) == 0

    def test_large_addresses(self, tmp_path):
        trace = trace_from_steps([(2**60, 2**61, True)])
        path = tmp_path / "big.bpt"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded[0].pc == 2**60
        assert loaded[0].target == 2**61

    def test_non_multiple_of_eight_length(self, tmp_path):
        trace = trace_from_string("TNTNTNTNTNT")  # 11 outcomes
        path = tmp_path / "odd.bpt"
        write_trace(trace, path)
        assert read_trace(path) == trace

    def test_accepts_pathlike_and_str(self, tmp_path):
        trace = trace_from_string("TN")
        path = tmp_path / "p.bpt"
        write_trace(trace, str(path))
        assert read_trace(str(path)) == trace


class TestMalformedFiles:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bpt"
        path.write_bytes(b"XXXX" + b"\x00" * 16)
        with pytest.raises(TraceFormatError, match="bad magic"):
            read_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bpt"
        path.write_bytes(MAGIC + b"\x01")
        with pytest.raises(TraceFormatError, match="truncated header"):
            read_trace(path)

    def test_truncated_columns(self, tmp_path):
        path = tmp_path / "cols.bpt"
        path.write_bytes(MAGIC + np.uint64(10).tobytes() + b"\x00" * 8)
        with pytest.raises(TraceFormatError, match="truncated address"):
            read_trace(path)

    def test_truncated_outcomes(self, tmp_path):
        trace = trace_from_string("TNTN")
        path = tmp_path / "out.bpt"
        write_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-1])
        with pytest.raises(TraceFormatError, match="truncated outcome"):
            read_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "nil.bpt"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            read_trace(path)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**63 - 1),
            st.integers(min_value=0, max_value=2**63 - 1),
            st.booleans(),
        ),
        max_size=200,
    )
)
def test_property_round_trip_preserves_trace(tmp_path_factory, steps):
    trace = trace_from_steps(steps)
    path = tmp_path_factory.mktemp("bpt") / "prop.bpt"
    write_trace(trace, path)
    assert read_trace(path) == trace


class TestTextFormat:
    def test_round_trip(self, tmp_path):
        from repro.trace.stream import read_text_trace, write_text_trace

        trace = trace_from_steps([(0x100, 0x80, True), (0x104, 0x200, False)])
        path = tmp_path / "t.txt"
        write_text_trace(trace, path)
        assert read_text_trace(path) == trace

    def test_comments_and_blanks_skipped(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "c.txt"
        path.write_text("# header\n\n0x10 0x20 T\n  \n0x14 0x8 N\n")
        trace = read_text_trace(path)
        assert len(trace) == 2
        assert trace[1].is_backward

    def test_outcome_spellings(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "s.txt"
        path.write_text("16 32 taken\n16 32 0\n16 32 N\n16 32 1\n")
        trace = read_text_trace(path)
        assert list(trace.taken) == [True, False, False, True]

    def test_decimal_addresses(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "d.txt"
        path.write_text("256 512 T\n")
        assert read_text_trace(path)[0].pc == 256

    def test_malformed_line_rejected(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "m.txt"
        path.write_text("0x10 T\n")
        with pytest.raises(TraceFormatError, match="expected"):
            read_text_trace(path)

    def test_bad_address_rejected(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "a.txt"
        path.write_text("zork 0x20 T\n")
        with pytest.raises(TraceFormatError, match="bad address"):
            read_text_trace(path)

    def test_bad_outcome_rejected(self, tmp_path):
        from repro.trace.stream import read_text_trace

        path = tmp_path / "o.txt"
        path.write_text("0x10 0x20 maybe\n")
        with pytest.raises(TraceFormatError, match="bad outcome"):
            read_text_trace(path)

    def test_tools_accept_text_traces(self, tmp_path, capsys):
        from repro.tools import main

        path = tmp_path / "g.txt"
        assert main(["generate", "compress", "-o", str(path), "--length", "500"]) == 0
        assert main(["stats", str(path)]) == 0
        assert "dynamic branches:        500" in capsys.readouterr().out


class TestLargeRoundTrips:
    """Round-trip fidelity at batch-write / frombuffer-parse scale."""

    @pytest.fixture(scope="class")
    def big_trace(self):
        rng = np.random.default_rng(9)
        n = 100_000
        pcs = rng.integers(0, 500, n).astype(np.uint64) * np.uint64(4)
        pcs += np.uint64(0x10000)
        targets = pcs + rng.integers(-256, 256, n).astype(np.int64).astype(
            np.uint64
        )
        return Trace(pcs, targets, rng.random(n) < 0.6)

    def test_text_round_trip_100k(self, tmp_path, big_trace):
        from repro.trace.stream import read_text_trace, write_text_trace

        path = tmp_path / "big.txt"
        write_text_trace(big_trace, path)
        assert read_text_trace(path) == big_trace

    def test_binary_round_trip_100k(self, tmp_path, big_trace):
        path = tmp_path / "big.bpt"
        write_trace(big_trace, path)
        assert read_trace(path) == big_trace

    def test_text_chunk_boundary_lengths(self, tmp_path):
        # Exercise the join-chunk edges (chunk size 8192 lines).
        from repro.trace.stream import read_text_trace, write_text_trace

        for n in (8191, 8192, 8193):
            trace = trace_from_string("TN" * (n // 2) + "T" * (n % 2))
            path = tmp_path / f"c{n}.txt"
            write_text_trace(trace, path)
            assert read_text_trace(path) == trace
