"""Tests for the metrics registry (repro.obs.metrics)."""

import threading

from repro.obs.metrics import METRICS, Metrics


class TestInstruments:
    def test_counter_increments(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 4)
        assert m.counter("a") == 5
        assert m.counter("never") == 0

    def test_gauge_last_write_wins(self):
        m = Metrics()
        m.gauge("workers", 2)
        m.gauge("workers", 8)
        assert m.snapshot()["gauges"] == {"workers": 8}

    def test_timer_context_manager_accumulates(self):
        m = Metrics()
        with m.timer("t"):
            pass
        with m.timer("t"):
            pass
        entry = m.snapshot()["timers"]["t"]
        assert entry["count"] == 2
        assert entry["seconds"] >= 0.0

    def test_add_time_external_duration(self):
        m = Metrics()
        m.add_time("t", 1.5)
        m.add_time("t", 0.5, count=3)
        entry = m.snapshot()["timers"]["t"]
        assert entry["count"] == 4
        assert entry["seconds"] == 2.0


class TestSnapshotDelta:
    def test_snapshot_is_plain_and_sorted(self):
        m = Metrics()
        m.inc("z")
        m.inc("a")
        snap = m.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert set(snap) == {"counters", "gauges", "timers"}

    def test_snapshot_is_a_copy(self):
        m = Metrics()
        m.inc("a")
        snap = m.snapshot()
        snap["counters"]["a"] = 999
        assert m.counter("a") == 1

    def test_delta_since_subtracts_counters_and_timers(self):
        m = Metrics()
        m.inc("a", 3)
        m.add_time("t", 1.0)
        base = m.snapshot()
        m.inc("a", 2)
        m.inc("b")
        m.add_time("t", 0.25)
        delta = m.delta_since(base)
        assert delta["counters"] == {"a": 2, "b": 1}
        assert delta["timers"]["t"]["count"] == 1
        assert abs(delta["timers"]["t"]["seconds"] - 0.25) < 1e-9

    def test_delta_drops_zero_counters(self):
        m = Metrics()
        m.inc("quiet", 7)
        base = m.snapshot()
        delta = m.delta_since(base)
        assert delta["counters"] == {}
        assert delta["timers"] == {}

    def test_delta_reports_current_gauges(self):
        m = Metrics()
        m.gauge("level", 1)
        base = m.snapshot()
        m.gauge("level", 5)
        assert m.delta_since(base)["gauges"] == {"level": 5}


class TestMergeReset:
    def test_merge_adds_counters_and_timers(self):
        parent = Metrics()
        parent.inc("a", 1)
        worker = Metrics()
        worker.inc("a", 2)
        worker.inc("b", 3)
        worker.add_time("t", 0.5)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"] == {"a": 3, "b": 3}
        assert snap["timers"]["t"] == {"count": 1, "seconds": 0.5}

    def test_merge_order_does_not_matter_for_counters(self):
        deltas = []
        for value in (1, 2, 3):
            w = Metrics()
            w.inc("n", value)
            deltas.append(w.snapshot())
        forward, backward = Metrics(), Metrics()
        for d in deltas:
            forward.merge(d)
        for d in reversed(deltas):
            backward.merge(d)
        assert forward.snapshot()["counters"] == backward.snapshot()["counters"]

    def test_reset_zeroes_everything(self):
        m = Metrics()
        m.inc("a")
        m.gauge("g", 1)
        m.add_time("t", 1.0)
        m.reset()
        assert m.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}

    def test_thread_safety_of_inc(self):
        m = Metrics()

        def bump():
            for _ in range(1000):
                m.inc("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("n") == 4000


class TestGlobalRegistry:
    def test_global_registry_exists_and_counts(self):
        base = METRICS.snapshot()
        METRICS.inc("test.obs_metrics.probe")
        delta = METRICS.delta_since(base)
        assert delta["counters"]["test.obs_metrics.probe"] == 1
