"""Tests for the pipeline cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.cost import PipelineModel


class TestPipelineModel:
    def test_perfect_prediction_is_base_cpi(self):
        model = PipelineModel(base_cpi=1.0)
        assert model.cpi(1.0) == pytest.approx(1.0)

    def test_cpi_formula(self):
        model = PipelineModel(
            base_cpi=1.0, branch_fraction=0.2, misprediction_penalty=10.0
        )
        # 5% misprediction rate: 1.0 + 0.2 * 0.05 * 10 = 1.1
        assert model.cpi(0.95) == pytest.approx(1.1)

    def test_speedup_direction(self):
        model = PipelineModel()
        assert model.speedup(0.90, 0.95) > 1.0
        assert model.speedup(0.95, 0.90) < 1.0
        assert model.speedup(0.93, 0.93) == pytest.approx(1.0)

    def test_mpki(self):
        model = PipelineModel(branch_fraction=0.2)
        assert model.mispredictions_per_kilo_instruction(0.95) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineModel(base_cpi=0.0)
        with pytest.raises(ValueError):
            PipelineModel(branch_fraction=1.5)
        with pytest.raises(ValueError):
            PipelineModel(misprediction_penalty=-1.0)
        with pytest.raises(ValueError):
            PipelineModel().cpi(1.5)
        with pytest.raises(ValueError):
            PipelineModel().mispredictions_per_kilo_instruction(-0.1)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_property_higher_accuracy_never_slower(self, a, b):
        model = PipelineModel()
        low, high = min(a, b), max(a, b)
        assert model.cpi(high) <= model.cpi(low)

    @given(st.floats(0.5, 1.0))
    def test_property_cpi_at_least_base(self, accuracy):
        model = PipelineModel(base_cpi=1.2)
        assert model.cpi(accuracy) >= 1.2
