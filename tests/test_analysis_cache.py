"""Tests for the content-addressed on-disk result cache."""

from __future__ import annotations

import numpy as np
import pytest

import repro.analysis.cache as cache_module
from repro.analysis.cache import ResultCache, result_key
from repro.analysis.config import LabConfig
from repro.analysis.runner import Lab
from repro.correlation.tagging import collect_correlation_data
from repro.workloads.suite import load_benchmark

from conftest import trace_from_string


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture(scope="module")
def trace():
    return load_benchmark("compress", length=2000)


class TestBitmapCache:
    def test_miss_then_hit(self, cache, trace):
        bitmap = np.arange(len(trace)) % 3 == 0
        assert cache.load_bitmap(trace.digest(), "gshare|x") is None
        assert cache.stats.misses == 1
        cache.store_bitmap(trace.digest(), "gshare|x", bitmap)
        assert cache.stats.writes == 1
        loaded = cache.load_bitmap(trace.digest(), "gshare|x")
        assert np.array_equal(loaded, bitmap)
        assert cache.stats.hits == 1

    def test_key_distinguishes_result_and_trace(self, cache, trace):
        bitmap = np.zeros(len(trace), dtype=bool)
        cache.store_bitmap(trace.digest(), "a", bitmap)
        assert cache.load_bitmap(trace.digest(), "b") is None
        assert cache.load_bitmap("other-digest", "a") is None

    def test_schema_version_invalidates(self, cache, trace, monkeypatch):
        bitmap = np.ones(len(trace), dtype=bool)
        cache.store_bitmap(trace.digest(), "a", bitmap)
        monkeypatch.setattr(cache_module, "SCHEMA_VERSION", 9999)
        assert cache.load_bitmap(trace.digest(), "a") is None

    def test_corrupted_file_is_a_miss(self, cache, trace):
        bitmap = np.ones(len(trace), dtype=bool)
        cache.store_bitmap(trace.digest(), "a", bitmap)
        path = cache._path("bitmap", cache.bitmap_key(trace.digest(), "a"))
        path.write_bytes(b"not an npz file")
        assert cache.load_bitmap(trace.digest(), "a") is None
        assert cache.stats.errors == 1
        # Storing again repairs the entry.
        cache.store_bitmap(trace.digest(), "a", bitmap)
        assert np.array_equal(cache.load_bitmap(trace.digest(), "a"), bitmap)

    def test_unwritable_root_never_raises(self, trace, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = ResultCache(blocker / "cache")
        cache.store_bitmap(trace.digest(), "a", np.zeros(3, dtype=bool))
        assert cache.stats.errors == 1
        assert cache.stats.writes == 0


class TestCorrelationCache:
    def test_round_trip(self, cache, trace):
        data = collect_correlation_data(trace, window=8)
        assert cache.load_correlation(trace.digest(), 8) is None
        cache.store_correlation(trace.digest(), data)
        loaded = cache.load_correlation(trace.digest(), 8)
        assert loaded.window == 8
        assert loaded.trace_length == len(trace)
        assert set(loaded.branches) == set(data.branches)
        for pc, branch in data.branches.items():
            other = loaded.branches[pc]
            assert np.array_equal(branch.trace_indices, other.trace_indices)
            assert np.array_equal(branch.outcomes, other.outcomes)
            assert branch.tag_entries == other.tag_entries

    def test_window_is_part_of_the_key(self, cache, trace):
        data = collect_correlation_data(trace, window=8)
        cache.store_correlation(trace.digest(), data)
        assert cache.load_correlation(trace.digest(), 16) is None


class TestTraceCache:
    def test_round_trip(self, cache, trace):
        assert cache.load_trace("compress", 2000, 12345) is None
        cache.store_trace("compress", 2000, 12345, trace)
        assert cache.load_trace("compress", 2000, 12345) == trace

    def test_workload_schema_invalidates(self, cache, trace, monkeypatch):
        cache.store_trace("compress", 2000, 12345, trace)
        monkeypatch.setattr(cache_module, "WORKLOAD_SCHEMA", 9999)
        assert cache.load_trace("compress", 2000, 12345) is None


class TestMaintenance:
    def test_entry_count_bytes_and_clear(self, cache, trace):
        assert cache.entry_count() == 0
        cache.store_bitmap(trace.digest(), "a", np.ones(10, dtype=bool))
        cache.store_trace("compress", 2000, 12345, trace)
        assert cache.entry_count() == 2
        assert cache.total_bytes() > 0
        assert cache.clear() == 2
        assert cache.entry_count() == 0


class TestResultKey:
    def test_config_fields_rekey(self):
        a = result_key("gshare", LabConfig())
        b = result_key("gshare", LabConfig(gshare_history_bits=12))
        assert a != b
        assert result_key("loop", LabConfig()) != a


class TestLabIntegration:
    def test_lab_reads_and_writes_cache(self, cache):
        trace = load_benchmark("perl", length=1500)
        lab = Lab(trace, cache=cache)
        bitmap = lab.correct("loop")
        assert cache.stats.writes >= 1
        # A fresh lab over the same trace hits the disk cache.
        lab2 = Lab(trace, cache=cache)
        assert np.array_equal(lab2.correct("loop"), bitmap)
        assert cache.stats.hits >= 1

    def test_selective_bitmap_cached(self, cache):
        trace = trace_from_string("TTNT" * 40)
        lab = Lab(trace, cache=cache)
        bitmap = lab.selective_correct(1)
        lab2 = Lab(trace, cache=cache)
        hits_before = cache.stats.hits
        assert np.array_equal(lab2.selective_correct(1), bitmap)
        assert cache.stats.hits > hits_before

    def test_no_cache_lab_never_touches_disk(self, tmp_path):
        trace = trace_from_string("TTNT" * 10)
        lab = Lab(trace)
        lab.correct("loop")
        assert lab.cache is None
        assert not (tmp_path / "cache").exists()
