"""Tests for saturating counters and PHT storage."""

import pytest
from hypothesis import given, strategies as st

from repro.predictors.counters import (
    CounterTable,
    SaturatingCounter,
    SparseCounterBank,
)


class TestSaturatingCounter:
    def test_default_is_weakly_taken(self):
        counter = SaturatingCounter()
        assert counter.value == 2
        assert counter.predict() is True

    def test_increment_saturates(self):
        counter = SaturatingCounter(bits=2, initial=3)
        counter.update(True)
        assert counter.value == 3

    def test_decrement_saturates(self):
        counter = SaturatingCounter(bits=2, initial=0)
        counter.update(False)
        assert counter.value == 0

    def test_hysteresis(self):
        # From strongly-taken, one not-taken outcome must not flip the
        # prediction -- the defining 2-bit counter behaviour.
        counter = SaturatingCounter(bits=2, initial=3)
        counter.update(False)
        assert counter.predict() is True
        counter.update(False)
        assert counter.predict() is False

    def test_one_bit_counter(self):
        counter = SaturatingCounter(bits=1, initial=0)
        assert counter.predict() is False
        counter.update(True)
        assert counter.predict() is True

    def test_three_bit_threshold(self):
        counter = SaturatingCounter(bits=3, initial=3)
        assert counter.predict() is False
        counter.update(True)
        assert counter.predict() is True

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=4)

    def test_is_saturated(self):
        assert SaturatingCounter(bits=2, initial=0).is_saturated()
        assert SaturatingCounter(bits=2, initial=3).is_saturated()
        assert not SaturatingCounter(bits=2, initial=2).is_saturated()

    @given(st.lists(st.booleans(), max_size=200), st.integers(1, 4))
    def test_property_value_stays_in_range(self, updates, bits):
        counter = SaturatingCounter(bits=bits)
        for taken in updates:
            counter.update(taken)
            assert 0 <= counter.value <= counter.max_value

    @given(st.integers(2, 4))
    def test_property_saturation_needs_width_flips(self, bits):
        """From full saturation, flipping the prediction takes 2**(bits-1)
        opposite outcomes."""
        counter = SaturatingCounter(bits=bits, initial=(1 << bits) - 1)
        flips = 0
        while counter.predict():
            counter.update(False)
            flips += 1
        assert flips == 1 << (bits - 1)


class TestCounterTable:
    def test_independent_entries(self):
        table = CounterTable(4)
        table.update(0, True)
        table.update(0, True)
        table.update(1, False)
        table.update(1, False)
        table.update(1, False)
        assert table.predict(0) is True
        assert table.predict(1) is False

    def test_len(self):
        assert len(CounterTable(16)) == 16

    def test_fill(self):
        table = CounterTable(4)
        table.fill(0)
        assert not any(table.predict(i) for i in range(4))

    def test_fill_range_check(self):
        with pytest.raises(ValueError):
            CounterTable(4).fill(9)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CounterTable(0)

    def test_matches_single_counter(self):
        """A 1-entry table behaves exactly like one SaturatingCounter."""
        table = CounterTable(1)
        counter = SaturatingCounter()
        for taken in [True, False, False, True, False, False, False, True]:
            assert table.predict(0) == counter.predict()
            table.update(0, taken)
            counter.update(taken)
            assert table.value(0) == counter.value


class TestSparseCounterBank:
    def test_missing_key_uses_initial(self):
        bank = SparseCounterBank()
        assert bank.predict("anything") is True  # weakly taken default

    def test_updates_tracked_per_key(self):
        bank = SparseCounterBank()
        bank.update("a", False)
        bank.update("a", False)
        bank.update("b", True)
        assert bank.predict("a") is False
        assert bank.predict("b") is True

    def test_len_counts_touched_keys(self):
        bank = SparseCounterBank()
        bank.update(1, True)
        bank.update(2, True)
        bank.update(1, False)
        assert len(bank) == 2

    def test_matches_dense_counter(self):
        bank = SparseCounterBank()
        counter = SaturatingCounter()
        for taken in [False, False, True, True, True, False]:
            assert bank.predict("k") == counter.predict()
            bank.update("k", taken)
            counter.update(taken)
            assert bank.value("k") == counter.value

    def test_custom_initial(self):
        bank = SparseCounterBank(initial=0)
        assert bank.predict("x") is False
