"""Tests for predictor contract checking (repro.check.contracts)."""

import random

import pytest

from repro.check.contracts import (
    ContractCheckedPredictor,
    ContractViolation,
    check_determinism,
    check_predictor_classes,
    check_registry,
    iter_predictor_classes,
    run_contract_suite,
    state_digest,
)
from repro.predictors.base import BranchPredictor
from repro.predictors.twolevel import GsharePredictor
from repro.workloads.suite import load_benchmark


@pytest.fixture(scope="module")
def trace():
    return load_benchmark("compress", length=300)


class _WellBehaved(BranchPredictor):
    """Minimal contract-conforming predictor."""

    name = "_test-well-behaved"

    def __init__(self):
        self._last = True

    def predict(self, pc, target):
        return self._last

    def update(self, pc, target, taken):
        self._last = taken


class _MutatesInPredict(BranchPredictor):
    """Breaks state purity: predict() trains a counter."""

    name = "_test-mutates-in-predict"

    def __init__(self):
        self._count = 0

    def predict(self, pc, target):
        self._count += 1  # contract violation
        return True

    def update(self, pc, target, taken):
        pass


class _Nondeterministic(BranchPredictor):
    """Breaks replay determinism: every instance flips its own coins."""

    name = "_test-nondeterministic"

    def __init__(self):
        self._rng = random.Random()  # check: ignore - the point of the test

    def predict(self, pc, target):
        return self._rng.random() < 0.5

    def update(self, pc, target, taken):
        pass


class TestIntrospectiveAudit:
    def test_repo_predictor_classes_are_clean(self):
        assert check_predictor_classes() == []

    def test_every_discovered_class_is_from_repro(self):
        classes = iter_predictor_classes()
        assert classes, "discovery found no predictor classes"
        assert all(cls.__module__.startswith("repro.") for cls in classes)

    def test_placeholder_name_is_flagged(self):
        class Placeholder(BranchPredictor):
            def predict(self, pc, target):
                return True

            def update(self, pc, target, taken):
                pass

        diagnostics = check_predictor_classes([Placeholder])
        assert [diag.code for diag in diagnostics] == ["PC002"]

    def test_duplicate_class_names_are_flagged(self):
        class First(BranchPredictor):
            name = "_test-dup"

            def predict(self, pc, target):
                return True

            def update(self, pc, target, taken):
                pass

        class Second(First):
            name = "_test-dup"

        diagnostics = check_predictor_classes([First, Second])
        assert [diag.code for diag in diagnostics] == ["PC003"]

    def test_abstract_residue_is_flagged(self):
        class Forgotten(BranchPredictor):
            name = "_test-forgotten"

            def predict(self, pc, target):
                return True
            # update() missing

        diagnostics = check_predictor_classes([Forgotten])
        assert [diag.code for diag in diagnostics] == ["PC001"]

    def test_registry_is_clean(self):
        assert check_registry() == []


class TestStateDigest:
    def test_digest_changes_with_state(self):
        predictor = GsharePredictor(history_bits=8)
        before = state_digest(predictor)
        predictor.update(0x1000, 0x1010, True)
        assert state_digest(predictor) != before

    def test_digest_stable_without_mutation(self):
        predictor = GsharePredictor(history_bits=8)
        assert state_digest(predictor) == state_digest(predictor)


class TestContractCheckedPredictor:
    def test_clean_predictor_passes(self, trace):
        wrapped = ContractCheckedPredictor(_WellBehaved())
        wrapped.simulate(trace)
        wrapped.finish()
        assert wrapped.predict_calls == len(trace)
        assert wrapped.update_calls == len(trace)

    def test_real_predictor_passes(self, trace):
        wrapped = ContractCheckedPredictor(GsharePredictor(history_bits=8))
        wrapped.simulate(trace)
        wrapped.finish()

    def test_predict_mutation_is_caught(self, trace):
        wrapped = ContractCheckedPredictor(_MutatesInPredict())
        with pytest.raises(ContractViolation, match="mutated predictor state"):
            wrapped.simulate(trace)

    def test_double_update_is_caught(self):
        wrapped = ContractCheckedPredictor(_WellBehaved())
        wrapped.predict(0x1000, 0x1010)
        wrapped.update(0x1000, 0x1010, True)
        with pytest.raises(ContractViolation, match="without a matching"):
            wrapped.update(0x1000, 0x1010, True)

    def test_predict_without_update_is_caught(self):
        wrapped = ContractCheckedPredictor(_WellBehaved())
        wrapped.predict(0x1000, 0x1010)
        with pytest.raises(ContractViolation, match="before update"):
            wrapped.predict(0x1004, 0x1014)

    def test_finish_flags_unresolved_branch(self):
        wrapped = ContractCheckedPredictor(_WellBehaved())
        wrapped.predict(0x1000, 0x1010)
        with pytest.raises(ContractViolation, match="never ran"):
            wrapped.finish()


class TestDeterminism:
    def test_deterministic_predictor_passes(self, trace):
        assert check_determinism(_WellBehaved, trace) is None

    def test_nondeterministic_predictor_fails(self, trace):
        fault = check_determinism(_Nondeterministic, trace)
        assert fault is not None and "disagreed" in fault


class TestContractSuite:
    def test_clean_factory_yields_no_diagnostics(self, trace):
        assert run_contract_suite(_WellBehaved, trace) == []

    def test_mutating_factory_yields_pc006(self, trace):
        diagnostics = run_contract_suite(_MutatesInPredict, trace)
        assert "PC006" in {diag.code for diag in diagnostics}

    def test_nondeterministic_factory_yields_pc008(self, trace):
        diagnostics = run_contract_suite(_Nondeterministic, trace)
        assert "PC008" in {diag.code for diag in diagnostics}
