"""Tests for the declarative run description (repro.spec)."""

import dataclasses

import pytest

from repro.analysis.config import DEFAULT_CONFIG, LabConfig
from repro.experiments.base import EXPERIMENT_IDS
from repro.spec import (
    CONFIG_FIELDS,
    SPEC_KIND,
    SPEC_SCHEMA_VERSION,
    EngineOptions,
    RunSpec,
    SpecError,
    SweepSpec,
    WorkloadSpec,
    spec_from_kwargs,
)


def small_spec(**overrides) -> RunSpec:
    defaults = dict(
        experiments=("fig9",),
        workload=WorkloadSpec(max_length=2000, seed=7),
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


class TestRoundTrip:
    def test_json_round_trip_is_identical(self):
        spec = RunSpec(
            experiments=("table1", "fig9"),
            workload=WorkloadSpec(
                max_length=5000, seed=99, benchmarks=("gcc", "compress")
            ),
            config=dataclasses.replace(DEFAULT_CONFIG, gshare_history_bits=12),
            engine=EngineOptions(jobs=2, cache=False, retries=1),
            sweep=SweepSpec(axes=(("gshare_history_bits", (8, 12)),)),
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.digest() == spec.digest()

    def test_file_round_trip(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "spec.json"
        spec.to_file(str(path))
        assert RunSpec.from_file(str(path)) == spec

    def test_document_carries_kind_and_schema(self):
        payload = small_spec().to_dict()
        assert payload["kind"] == SPEC_KIND
        assert payload["schema_version"] == SPEC_SCHEMA_VERSION

    def test_defaults_parse_from_minimal_document(self):
        spec = RunSpec.from_dict({"experiments": ["table1"]})
        assert spec.experiments == ("table1",)
        assert spec.workload == WorkloadSpec()
        assert spec.config == DEFAULT_CONFIG
        assert spec.engine == EngineOptions()
        assert spec.sweep is None


class TestStrictParsing:
    def test_unknown_top_level_field(self):
        with pytest.raises(SpecError, match="unknown field"):
            RunSpec.from_dict({"experiments": [], "colour": "red"})

    def test_unknown_workload_field(self):
        with pytest.raises(SpecError, match="workload.*unknown"):
            RunSpec.from_dict({"workload": {"length": 5}})

    def test_unknown_engine_field(self):
        with pytest.raises(SpecError, match="engine.*unknown"):
            RunSpec.from_dict({"engine": {"threads": 4}})

    def test_unknown_config_field(self):
        with pytest.raises(SpecError, match="config.*unknown"):
            RunSpec.from_dict({"config": {"ghr_bits": 12}})

    def test_unknown_sweep_field(self):
        with pytest.raises(SpecError, match="sweep.*unknown"):
            RunSpec.from_dict({"sweep": {"axes": {}, "order": "random"}})

    def test_wrong_kind_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            RunSpec.from_dict({"kind": "repro.manifest"})

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(SpecError, match="schema_version"):
            RunSpec.from_dict({"schema_version": 999})

    def test_invalid_json_text(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            RunSpec.from_json("{nope")

    def test_mistyped_config_value(self):
        with pytest.raises(SpecError, match="expected an int"):
            RunSpec.from_dict({"config": {"gshare_history_bits": "12"}})

    def test_mistyped_max_length(self):
        with pytest.raises(SpecError, match="max_length"):
            RunSpec.from_dict({"workload": {"max_length": -3}})


class TestChunkBranches:
    def test_kwargs_surface_carries_it(self):
        spec = spec_from_kwargs(["fig9"], chunk_branches=4096)
        assert spec.engine.chunk_branches == 4096

    def test_round_trips_through_json(self):
        spec = small_spec(engine=EngineOptions(chunk_branches=4096))
        assert RunSpec.from_json(spec.to_json()).engine.chunk_branches == 4096

    def test_execution_knob_does_not_change_identity(self):
        base = small_spec()
        chunked = dataclasses.replace(
            base, engine=EngineOptions(chunk_branches=4096)
        )
        assert base.digest() == chunked.digest()
        assert base.input_digest() == chunked.input_digest()

    def test_resolved_normalizes_to_a_multiple_of_eight(self):
        assert EngineOptions(chunk_branches=100).resolved().chunk_branches == 104

    def test_resolved_reads_the_environment_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_BRANCHES", "1000")
        assert EngineOptions().resolved().chunk_branches == 1000
        monkeypatch.delenv("REPRO_CHUNK_BRANCHES")
        assert EngineOptions().resolved().chunk_branches is None

    def test_explicit_value_wins_over_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_BRANCHES", "1000")
        assert EngineOptions(chunk_branches=64).resolved().chunk_branches == 64

    def test_invalid_value_is_a_spec_error(self):
        with pytest.raises(SpecError, match="engine.chunk_branches"):
            EngineOptions(chunk_branches=0).resolved()


class TestDigest:
    def test_engine_options_do_not_change_digest(self):
        base = small_spec()
        throttled = dataclasses.replace(
            base, engine=EngineOptions(jobs=8, cache=False, retries=5)
        )
        assert base.digest() == throttled.digest()

    def test_config_changes_digest(self):
        base = small_spec()
        resized = dataclasses.replace(
            base,
            config=dataclasses.replace(base.config, gshare_history_bits=8),
        )
        assert base.digest() != resized.digest()

    def test_experiments_change_digest(self):
        assert (
            small_spec().digest()
            != small_spec(experiments=("table1",)).digest()
        )

    def test_workload_changes_digest(self):
        longer = small_spec(workload=WorkloadSpec(max_length=4000, seed=7))
        assert small_spec().digest() != longer.digest()

    def test_input_digest_ignores_experiments_and_sweep(self):
        base = small_spec()
        other = small_spec(
            experiments=("table1", "fig5"),
            sweep=SweepSpec(axes=(("gshare_history_bits", (8, 12)),)),
        )
        assert base.input_digest() == other.input_digest()
        assert base.digest() != other.digest()

    def test_input_digest_tracks_config(self):
        resized = small_spec(
            config=dataclasses.replace(DEFAULT_CONFIG, pas_history_bits=4)
        )
        assert small_spec().input_digest() != resized.input_digest()


class TestSweepSpec:
    def test_unknown_axis_field(self):
        with pytest.raises(SpecError, match="not sweepable"):
            SweepSpec(axes=(("warp_factor", (1, 2)),))

    def test_empty_axis_values(self):
        with pytest.raises(SpecError, match="no values"):
            SweepSpec(axes=(("gshare_history_bits", ()),))

    def test_non_int_axis_value(self):
        with pytest.raises(SpecError, match="must be ints"):
            SweepSpec(axes=(("gshare_history_bits", ("8",)),))

    def test_no_axes(self):
        with pytest.raises(SpecError, match="at least one axis"):
            SweepSpec(axes=())

    def test_bad_mode(self):
        with pytest.raises(SpecError, match="mode"):
            SweepSpec(axes=(("gshare_history_bits", (8,)),), mode="spiral")

    def test_zip_requires_equal_lengths(self):
        with pytest.raises(SpecError, match="equal-length"):
            SweepSpec(
                axes=(
                    ("gshare_history_bits", (8, 12)),
                    ("gshare_pht_bits", (8, 12, 16)),
                ),
                mode="zip",
            )

    def test_grid_coordinates_are_cartesian(self):
        sweep = SweepSpec(
            axes=(
                ("gshare_history_bits", (8, 12)),
                ("gshare_pht_bits", (10, 14)),
            )
        )
        coords = sweep.coordinates()
        assert len(coords) == 4
        assert {"gshare_history_bits": 8, "gshare_pht_bits": 10} in coords
        assert {"gshare_history_bits": 12, "gshare_pht_bits": 14} in coords

    def test_zip_coordinates_pair_elementwise(self):
        sweep = SweepSpec(
            axes=(
                ("gshare_history_bits", (8, 12)),
                ("gshare_pht_bits", (10, 14)),
            ),
            mode="zip",
        )
        assert sweep.coordinates() == [
            {"gshare_history_bits": 8, "gshare_pht_bits": 10},
            {"gshare_history_bits": 12, "gshare_pht_bits": 14},
        ]

    def test_axes_normalise_to_sorted_tuples(self):
        sweep = SweepSpec(
            axes=(
                ("pas_history_bits", [4, 6]),
                ("gshare_history_bits", [8]),
            )
        )
        assert sweep.axes == (
            ("gshare_history_bits", (8,)),
            ("pas_history_bits", (4, 6)),
        )


class TestExpandPoints:
    def test_plain_spec_is_one_point(self):
        spec = small_spec()
        assert spec.expand_points() == [({}, spec)]

    def test_points_fold_coords_into_config(self):
        spec = small_spec(
            sweep=SweepSpec(axes=(("gshare_history_bits", (8, 12)),))
        )
        points = spec.expand_points()
        assert [coords for coords, _ in points] == [
            {"gshare_history_bits": 8},
            {"gshare_history_bits": 12},
        ]
        for coords, point in points:
            assert point.sweep is None
            assert point.config.gshare_history_bits == (
                coords["gshare_history_bits"]
            )

    def test_point_digests_differ_exactly_in_swept_field(self):
        spec = small_spec(
            sweep=SweepSpec(axes=(("gshare_history_bits", (8, 12)),))
        )
        (_, first), (_, second) = spec.expand_points()
        assert first.digest() != second.digest()
        first_id, second_id = first.identity(), second.identity()
        assert first_id["config"] != second_id["config"]
        differing = {
            name
            for name in first_id["config"]
            if first_id["config"][name] != second_id["config"][name]
        }
        assert differing == {"gshare_history_bits"}
        for section in ("experiments", "workload", "sweep"):
            assert first_id[section] == second_id[section]


class TestKwargShim:
    def test_shim_matches_explicit_spec_digest(self):
        shimmed = spec_from_kwargs(
            ["fig9"], max_length=2000, seed=7, jobs=4, use_cache=False
        )
        explicit = small_spec()
        assert shimmed.digest() == explicit.digest()

    def test_shim_defaults_to_all_experiments(self):
        assert spec_from_kwargs().experiments == tuple(EXPERIMENT_IDS)

    def test_shim_carries_engine_options(self):
        spec = spec_from_kwargs(
            ["table1"],
            jobs="3",
            use_cache=False,
            retries=0,
            task_timeout=1.5,
            fault_spec="loop:1:crash",
            journal_path="j.journal",
            resume=True,
        )
        assert spec.engine == EngineOptions(
            jobs=3,
            cache=False,
            retries=0,
            task_timeout=1.5,
            fault_spec="loop:1:crash",
            journal="j.journal",
            resume=True,
        )


class TestConfigFields:
    def test_config_fields_cover_labconfig(self):
        assert set(CONFIG_FIELDS) == {
            f.name for f in dataclasses.fields(LabConfig)
        }


class TestTraceSources:
    """The workload union: SyntheticSource + ImportedSource."""

    def entry(self, name="toy", **overrides):
        from repro.spec import TraceEntry

        defaults = dict(
            name=name,
            digest="a" * 32,
            path=f"{name}.bpt",
            format="bpt",
            branches=5000,
        )
        defaults.update(overrides)
        return TraceEntry(**defaults)

    def test_legacy_digest_is_pinned(self):
        # The seed's digest for this exact spec -- must never drift.
        assert small_spec().digest() == "0f0c54f0edd9c8ecac7bc02b3cff1601"

    def test_unmixed_workload_serialises_in_legacy_layout(self):
        payload = WorkloadSpec(max_length=2000, seed=7).to_dict()
        assert payload == {
            "max_length": 2000, "seed": 7, "benchmarks": None
        }

    def test_version_1_document_still_parses(self):
        spec = small_spec()
        payload = spec.to_dict()
        payload["schema_version"] = 1
        restored = RunSpec.from_dict(payload)
        assert restored == spec
        assert restored.digest() == spec.digest()

    def test_unknown_source_kind_rejected(self):
        payload = small_spec().to_dict()
        payload["workload"] = {"kind": "oracle"}
        with pytest.raises(SpecError, match="oracle"):
            RunSpec.from_dict(payload)

    def test_unknown_mix_class_rejected(self):
        with pytest.raises(SpecError, match="phase"):
            WorkloadSpec(max_length=2000, mix={"phase": 2.0})

    def test_negative_mix_weight_rejected(self):
        with pytest.raises(SpecError, match="non-negative"):
            WorkloadSpec(max_length=2000, mix={"noise": -1.0})

    def test_mixed_workload_round_trips_and_changes_digest(self):
        plain = small_spec()
        mixed = small_spec(
            workload=WorkloadSpec(max_length=2000, seed=7, mix={"noise": 2.0})
        )
        assert mixed.digest() != plain.digest()
        restored = RunSpec.from_json(mixed.to_json())
        assert restored == mixed
        assert restored.digest() == mixed.digest()

    def test_imported_source_round_trips(self):
        from repro.spec import ImportedSource

        spec = small_spec(
            workload=ImportedSource(traces=(self.entry(),))
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.digest() == spec.digest()

    def test_imported_identity_excludes_paths(self):
        from repro.spec import ImportedSource

        here = small_spec(
            workload=ImportedSource(traces=(self.entry(path="a/toy.bpt"),))
        )
        there = small_spec(
            workload=ImportedSource(traces=(self.entry(path="b/toy.bpt"),))
        )
        assert here.digest() == there.digest()

    def test_imported_source_needs_traces(self):
        from repro.spec import ImportedSource

        with pytest.raises(SpecError, match="at least one"):
            ImportedSource(traces=())

    def test_imported_source_rejects_duplicate_names(self):
        from repro.spec import ImportedSource

        with pytest.raises(SpecError, match="duplicate"):
            ImportedSource(traces=(self.entry(), self.entry()))


class TestWorkloadAxes:
    """Sweep axes over workload and mix fields."""

    def test_mix_axis_accepts_floats(self):
        sweep = SweepSpec(axes=(("mix.noise", (0, 0.5, 2.0)),))
        assert sweep.axes[0][1] == (0, 0.5, 2.0)

    def test_mix_axis_unknown_class_rejected(self):
        with pytest.raises(SpecError, match="behaviour class"):
            SweepSpec(axes=(("mix.phase", (1, 2)),))

    def test_mix_axis_negative_weight_rejected(self):
        with pytest.raises(SpecError, match="non-negative"):
            SweepSpec(axes=(("mix.noise", (-1,)),))

    def test_workload_axis_accepts_ints_only(self):
        SweepSpec(axes=(("workload.seed", (1, 2)),))
        with pytest.raises(SpecError, match="ints"):
            SweepSpec(axes=(("workload.seed", (1.5,)),))

    def test_point_folds_workload_coords(self):
        spec = small_spec(
            sweep=SweepSpec(axes=(("workload.seed", (1, 2)),))
        )
        points = [
            spec.point(coords) for coords in spec.sweep.coordinates()
        ]
        assert [p.workload.seed for p in points] == [1, 2]
        assert all(p.sweep is None for p in points)

    def test_point_folds_mix_coords(self):
        spec = small_spec(
            sweep=SweepSpec(axes=(("mix.noise", (0, 2.0)),))
        )
        points = [
            spec.point(coords) for coords in spec.sweep.coordinates()
        ]
        assert points[0].workload.mix_map() == {"noise": 0.0}
        assert points[1].workload.mix_map() == {"noise": 2.0}

    def test_mixed_config_and_mix_axes_grid(self):
        spec = small_spec(
            sweep=SweepSpec(
                axes=(
                    ("gshare_history_bits", (8, 12)),
                    ("mix.loop", (2.0,)),
                )
            )
        )
        points = [
            spec.point(coords) for coords in spec.sweep.coordinates()
        ]
        assert len(points) == 2
        assert {p.config.gshare_history_bits for p in points} == {8, 12}
        assert all(p.workload.mix_map() == {"loop": 2.0} for p in points)

    def test_workload_axis_on_imported_source_rejected(self):
        from repro.spec import ImportedSource, TraceEntry

        spec = small_spec(
            workload=ImportedSource(
                traces=(
                    TraceEntry(
                        name="toy",
                        digest="a" * 32,
                        path="toy.bpt",
                        branches=100,
                    ),
                )
            ),
            sweep=SweepSpec(axes=(("mix.noise", (1, 2)),)),
        )
        with pytest.raises(SpecError, match="synthetic"):
            spec.point(dict(next(iter(spec.sweep.coordinates())).items()))
