"""Tests for condition expressions and trip-count generators."""

import random

import pytest

from repro.workloads.conditions import (
    AndExpr,
    BernoulliExpr,
    ConstExpr,
    MarkovExpr,
    NotExpr,
    OrExpr,
    PatternExpr,
    PhaseExpr,
    SelfHistoryExpr,
    VarExpr,
    constant_trips,
    drifting_trips,
    uniform_trips,
)
from repro.workloads.program import Environment


@pytest.fixture
def env():
    return Environment(random.Random(7))


class TestBasicExprs:
    def test_const(self, env):
        assert ConstExpr(True).evaluate(env) is True
        assert ConstExpr(False).evaluate(env) is False

    def test_var_reads_environment(self, env):
        env.variables["x"] = True
        assert VarExpr("x").evaluate(env) is True

    def test_var_unset_raises(self, env):
        with pytest.raises(KeyError, match="before assignment"):
            VarExpr("missing").evaluate(env)

    def test_not(self, env):
        assert NotExpr(ConstExpr(False)).evaluate(env) is True

    def test_and_or(self, env):
        assert AndExpr(ConstExpr(True), ConstExpr(True)).evaluate(env)
        assert not AndExpr(ConstExpr(True), ConstExpr(False)).evaluate(env)
        assert OrExpr(ConstExpr(False), ConstExpr(True)).evaluate(env)
        assert not OrExpr(ConstExpr(False), ConstExpr(False)).evaluate(env)

    def test_and_or_arity(self):
        with pytest.raises(ValueError):
            AndExpr(ConstExpr(True))
        with pytest.raises(ValueError):
            OrExpr(ConstExpr(True))


class TestStochasticExprs:
    def test_bernoulli_rate(self, env):
        expr = BernoulliExpr(0.8)
        rate = sum(expr.evaluate(env) for _ in range(5000)) / 5000
        assert rate == pytest.approx(0.8, abs=0.03)

    def test_bernoulli_bounds(self):
        with pytest.raises(ValueError):
            BernoulliExpr(1.5)

    def test_markov_produces_runs(self, env):
        expr = MarkovExpr(0.95)
        outcomes = [expr.evaluate(env) for _ in range(2000)]
        switches = sum(a != b for a, b in zip(outcomes, outcomes[1:]))
        assert switches / len(outcomes) == pytest.approx(0.05, abs=0.02)

    def test_markov_bounds(self):
        with pytest.raises(ValueError):
            MarkovExpr(-0.1)

    def test_pattern_cycles_exactly(self, env):
        expr = PatternExpr([True, False, False])
        outcomes = [expr.evaluate(env) for _ in range(9)]
        assert outcomes == [True, False, False] * 3

    def test_pattern_empty_rejected(self):
        with pytest.raises(ValueError):
            PatternExpr([])

    def test_phase_alternates(self, env):
        expr = PhaseExpr(3, ConstExpr(True), ConstExpr(False))
        outcomes = [expr.evaluate(env) for _ in range(9)]
        assert outcomes == [True] * 3 + [False] * 3 + [True] * 3

    def test_phase_period_validation(self):
        with pytest.raises(ValueError):
            PhaseExpr(0, ConstExpr(True), ConstExpr(False))


class TestSelfHistoryExpr:
    def test_noiseless_function_is_deterministic(self, env):
        # XOR of the last two outcomes, no flips.
        table = [False, True, True, False]
        expr = SelfHistoryExpr(table, depth=2, flip_probability=0.0)
        outcomes = [expr.evaluate(env) for _ in range(12)]
        # Verify each outcome follows the table given the running history.
        history = 0
        for outcome in outcomes:
            assert outcome == table[history]
            history = ((history << 1) | outcome) & 0b11

    def test_table_size_validation(self):
        with pytest.raises(ValueError):
            SelfHistoryExpr([True, False], depth=2)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            SelfHistoryExpr([True], depth=0)

    def test_flip_probability_validation(self):
        with pytest.raises(ValueError):
            SelfHistoryExpr([True, False], depth=1, flip_probability=2.0)


class TestTripGenerators:
    def test_constant(self, env):
        generate = constant_trips(7)
        assert [generate(env) for _ in range(5)] == [7] * 5

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            constant_trips(-1)

    def test_uniform_range(self, env):
        generate = uniform_trips(2, 5)
        values = {generate(env) for _ in range(200)}
        assert values == {2, 3, 4, 5}

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_trips(5, 2)

    def test_drifting_changes_infrequently(self, env):
        generate = drifting_trips(4, change_probability=0.05, low=2, high=9)
        values = [generate(env) for _ in range(500)]
        changes = sum(a != b for a, b in zip(values, values[1:]))
        assert changes < 60
        assert values[0] == 4

    def test_drifting_validation(self):
        with pytest.raises(ValueError):
            drifting_trips(4, change_probability=1.5, low=2, high=9)
        with pytest.raises(ValueError):
            drifting_trips(4, change_probability=0.1, low=9, high=2)
