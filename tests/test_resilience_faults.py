"""Tests for the deterministic fault-injection spec and injector."""

from __future__ import annotations

import pytest

from repro.resilience.faults import (
    ENV_FAULT_SPEC,
    FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultSpecError,
    parse_fault_spec,
)


class TestParseFaultSpec:
    def test_empty_and_none_parse_to_nothing(self):
        assert parse_fault_spec(None) == ()
        assert parse_fault_spec("") == ()
        assert parse_fault_spec(" , ,") == ()

    def test_bare_task_selector_means_every_benchmark(self):
        (fault,) = parse_fault_spec("gshare:1:crash")
        assert fault == Fault(
            benchmark="*", task="gshare", attempt=1, kind="crash"
        )

    def test_full_selector(self):
        (fault,) = parse_fault_spec("gcc/loop:2:hang")
        assert fault == Fault(
            benchmark="gcc", task="loop", attempt=2, kind="hang"
        )

    def test_multiple_entries_keep_spec_order(self):
        faults = parse_fault_spec("gshare:1:crash, gcc/loop:2:corrupt")
        assert [f.kind for f in faults] == ["crash", "corrupt"]

    def test_spec_round_trips(self):
        text = "gcc/gshare:1:crash,*/loop:2:hang"
        injector = FaultInjector(parse_fault_spec(text))
        assert parse_fault_spec(injector.spec()) == parse_fault_spec(text)

    @pytest.mark.parametrize(
        "bad",
        [
            "gshare:crash",  # missing attempt
            "gshare:1:2:crash",  # too many fields
            "gshare:one:crash",  # non-integer attempt
            "gshare:0:crash",  # attempts are 1-based
            "gshare:1:explode",  # unknown kind
            "/gshare:1:crash",  # empty benchmark
            "gcc/:1:crash",  # empty task
        ],
    )
    def test_malformed_entries_raise_fault_spec_error(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_fault_spec_error_is_a_value_error(self):
        # Callers that catch ValueError keep working.
        assert issubclass(FaultSpecError, ValueError)


class TestFaultMatching:
    def test_attempt_must_match_exactly(self):
        fault = Fault("*", "gshare", 2, "crash")
        assert not fault.matches("gcc", "gshare", 1)
        assert fault.matches("gcc", "gshare", 2)
        assert not fault.matches("gcc", "gshare", 3)

    def test_globs_on_both_sides(self):
        fault = Fault("g*", "if_*", 1, "crash")
        assert fault.matches("gcc", "if_gshare", 1)
        assert fault.matches("go", "if_pas", 1)
        assert not fault.matches("perl", "if_gshare", 1)
        assert not fault.matches("gcc", "gshare", 1)


class TestFaultInjector:
    def test_kinds_in_spec_order(self):
        injector = FaultInjector(
            parse_fault_spec("gshare:1:corrupt,gshare:1:crash")
        )
        assert injector.kinds("gcc", "gshare", 1) == ("corrupt", "crash")
        assert injector.kinds("gcc", "gshare", 2) == ()
        assert injector.kinds("gcc", "loop", 1) == ()

    def test_bool_and_from_spec(self):
        assert FaultInjector.from_spec(None) is None
        assert FaultInjector.from_spec("") is None
        injector = FaultInjector.from_spec("gshare:1:crash")
        assert injector and bool(injector)

    def test_wants_timeout_only_for_hangs(self):
        assert not FaultInjector.from_spec("gshare:1:crash").wants_timeout()
        assert FaultInjector.from_spec("gshare:1:hang").wants_timeout()

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)
        assert FaultInjector.from_env() is None
        monkeypatch.setenv(ENV_FAULT_SPEC, "loop:2:corrupt")
        injector = FaultInjector.from_env()
        assert injector.kinds("gcc", "loop", 2) == ("corrupt",)

    def test_kind_vocabulary_is_closed(self):
        assert set(FAULT_KINDS) == {"crash", "hang", "corrupt"}
