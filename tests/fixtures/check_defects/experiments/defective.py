"""Seeded-defect experiment module for the ``deps`` pass.

Never imported -- analysed as AST only.  Each runner plants exactly one
declaration defect; tests and the CI negative gate assert the pass
reports the matching DS code (a planted defect slipping through fails
the build).
"""

from repro.experiments.base import register


def _helper_reads_pas(lab):
    """Module-local helper: the consumption the pass must see through."""
    return lab.correct("pas")


@register("fx_undeclared", requires=("gshare",))
def run_undeclared(labs):
    """DS001 x2: consumes pas (via helper) and correlation, declares neither."""
    rows = {}
    for name, lab in labs.items():
        rows[name] = (
            lab.accuracy("gshare"),
            _helper_reads_pas(lab),
            lab.selective_correct(3),
        )
    return rows


@register("fx_phantom", requires=("gshare", "loop"))
def run_phantom(labs):
    """DS002: declares loop but never touches it."""
    return {name: lab.accuracy("gshare") for name, lab in labs.items()}


@register("fx_unknown", requires=("gshar",))
def run_unknown(labs):
    """DS003: typo'd task name -- the plan can never prime it."""
    return {name: lab.trace for name, lab in labs.items()}


@register("fx_clean", requires=("if_gshare",))
def run_clean(labs):
    """Control: a sound declaration must stay silent."""
    return {name: lab.correct("if_gshare") for name, lab in labs.items()}
