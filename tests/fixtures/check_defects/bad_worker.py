"""Seeded-defect worker module for the ``workers`` pass.

A miniature parallel scheduler with all four worker-safety hazards
planted.  Never imported -- analysed as AST only.  Tests and the CI
negative gate assert each hazard produces its exact WS code.
"""

_RESULTS = {}
_SEEN = set()
_LOG = []


def _record(task, value):
    """WS001: reachable helper mutates module-level dict and list."""
    _RESULTS[task] = value
    _LOG.append(task)


def _fold(counts):
    """WS003: set iteration in the fold -- order differs per process."""
    total = 0
    for task in {"gshare", "pas", "loop"}:
        total += counts.get(task, 0)
    _SEEN.add(total)
    return total


def compute_task(spec):
    """Entry point: the pool calls this in every worker process."""
    value = _simulate(spec)
    _record(spec.task, value)
    return _fold({spec.task: value})


def _simulate(spec):
    return len(spec.task)


def submit_all(pool, specs):
    """WS002: closures handed to pool submission do not pickle."""
    def _local_job(spec):
        return compute_task(spec)

    futures = [pool.submit(lambda: compute_task(spec)) for spec in specs]
    futures.append(pool.submit(_local_job, specs[0]))
    return futures


def submit_whole_trace(pool, lab, read_trace, path):
    """WS004: whole traces re-pickled into every pool submission."""
    loaded = read_trace(path)
    futures = [pool.submit(compute_task, lab.trace)]
    futures.append(pool.submit(compute_task, loaded))
    return futures


def fold_clean(counts):
    """Control: sorted iteration and pure fold must stay silent."""
    return sum(counts[task] for task in sorted(counts))
