"""Seeded-defect config module for the ``deps`` projection sub-pass.

A deliberately stale copy of ``repro.analysis.config``: the ``gshare``
projection omits ``gshare_pht_bits`` (DS004 -- the stale-cache aliasing
bug class) and the ``loop`` projection lists a field the factory never
reads (DS005 -- lost dedup).  Never imported; AST only.
"""

from dataclasses import dataclass

from repro.correlation.selection import SelectionConfig
from repro.predictors.interference_free import (
    InterferenceFreeGshare,
    InterferenceFreePAs,
)
from repro.predictors.loop import LoopPredictor
from repro.predictors.pattern import BlockPatternPredictor
from repro.predictors.static_ import IdealStaticPredictor
from repro.predictors.twolevel import GsharePredictor, PAsPredictor


@dataclass(frozen=True)
class LabConfig:
    gshare_history_bits: int = 16
    gshare_pht_bits: int = 16
    if_gshare_history_bits: int = 8
    pas_history_bits: int = 6
    pas_bht_bits: int = 12
    if_pas_history_bits: int = 6
    selective_window: int = 16
    selective_top_k: int = 12
    collection_window: int = 32

    def gshare(self):
        return GsharePredictor(self.gshare_history_bits, self.gshare_pht_bits)

    def if_gshare(self):
        return InterferenceFreeGshare(self.if_gshare_history_bits)

    def pas(self):
        return PAsPredictor(self.pas_history_bits, self.pas_bht_bits)

    def if_pas(self):
        return InterferenceFreePAs(self.if_pas_history_bits)

    def loop(self):
        return LoopPredictor()

    def block_pattern(self):
        return BlockPatternPredictor()

    def ideal_static(self):
        return IdealStaticPredictor()

    def selection_config(self, window=None):
        return SelectionConfig(
            window=self.selective_window if window is None else window,
            top_k=self.selective_top_k,
        )


TASK_CONFIG_FIELDS = {
    "gshare": ("gshare_history_bits",),  # DS004: gshare_pht_bits read, not projected
    "if_gshare": ("if_gshare_history_bits",),
    "pas": ("pas_history_bits", "pas_bht_bits"),
    "if_pas": ("if_pas_history_bits",),
    "loop": ("pas_history_bits",),  # DS005: never read by the loop factory
    "block": (),
    "ideal_static": (),
    "fixed_best": (),
    "correlation": ("collection_window",),
}

_SELECTIVE_FIELDS = ("selective_top_k", "collection_window")
