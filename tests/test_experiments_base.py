"""Tests for experiment infrastructure and the paper-reference data."""

import pytest

from repro.analysis.config import LabConfig
from repro.experiments.base import build_labs, register
from repro.experiments.paper_reference import CLAIMS, TABLE2, TABLE3
from repro.workloads.suite import BENCHMARK_NAMES


class TestPaperReference:
    def test_tables_cover_all_benchmarks(self):
        assert set(TABLE2) == set(BENCHMARK_NAMES)
        assert set(TABLE3) == set(BENCHMARK_NAMES)

    def test_table2_combiners_never_lose(self):
        # Internal consistency of the transcribed numbers: "w/ Corr" >=
        # base in every row of the paper's table.
        for gshare, with_corr, if_gshare, if_with_corr in TABLE2.values():
            assert with_corr >= gshare
            assert if_with_corr >= if_gshare

    def test_table3_combiners_never_lose(self):
        for pas, with_loop, if_pas, if_with_loop in TABLE3.values():
            assert with_loop >= pas
            assert if_with_loop >= if_pas

    def test_paper_gcc_go_gain_most_in_table2(self):
        gains = {
            name: row[1] - row[0] for name, row in TABLE2.items()
        }
        ranked = sorted(gains, key=gains.get, reverse=True)
        assert set(ranked[:2]) == {"gcc", "go"}

    def test_every_figure_has_a_claim(self):
        assert set(CLAIMS) == {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}


class TestInfrastructure:
    def test_duplicate_registration_rejected(self):
        @register("test-dummy-experiment")
        def dummy(labs):
            return None

        with pytest.raises(ValueError, match="duplicate"):
            register("test-dummy-experiment")(dummy)

    def test_build_labs_propagates_config(self):
        config = LabConfig(gshare_history_bits=4, gshare_pht_bits=6)
        labs = build_labs(max_length=2000, config=config)
        assert labs["gcc"].config is config

    def test_build_labs_seed(self):
        a = build_labs(max_length=2000, run_seed=1)
        b = build_labs(max_length=2000, run_seed=2)
        assert a["gcc"].trace != b["gcc"].trace
