"""Tests for experiment infrastructure and the paper-reference data."""

from dataclasses import fields

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.config import (
    LabConfig,
    TASK_CONFIG_FIELDS,
    task_config_fields,
    task_config_key,
)
from repro.analysis.parallel import DEFAULT_TASKS
from repro.experiments.base import (
    build_labs,
    experiment_ids,
    experiment_requires,
    register,
)
from repro.experiments.paper_reference import CLAIMS, TABLE2, TABLE3
from repro.workloads.suite import BENCHMARK_NAMES


class TestPaperReference:
    def test_tables_cover_all_benchmarks(self):
        assert set(TABLE2) == set(BENCHMARK_NAMES)
        assert set(TABLE3) == set(BENCHMARK_NAMES)

    def test_table2_combiners_never_lose(self):
        # Internal consistency of the transcribed numbers: "w/ Corr" >=
        # base in every row of the paper's table.
        for gshare, with_corr, if_gshare, if_with_corr in TABLE2.values():
            assert with_corr >= gshare
            assert if_with_corr >= if_gshare

    def test_table3_combiners_never_lose(self):
        for pas, with_loop, if_pas, if_with_loop in TABLE3.values():
            assert with_loop >= pas
            assert if_with_loop >= if_pas

    def test_paper_gcc_go_gain_most_in_table2(self):
        gains = {
            name: row[1] - row[0] for name, row in TABLE2.items()
        }
        ranked = sorted(gains, key=gains.get, reverse=True)
        assert set(ranked[:2]) == {"gcc", "go"}

    def test_every_figure_has_a_claim(self):
        assert set(CLAIMS) == {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}


_ALL_FIELDS = tuple(f.name for f in fields(LabConfig))


class TestProjectionConservatism:
    """Unknown tasks must project onto every field -- never alias."""

    @given(
        st.text(min_size=1, max_size=30).filter(
            lambda name: name not in TASK_CONFIG_FIELDS
            and not name.startswith("selective_")
        )
    )
    def test_unknown_names_project_onto_every_field(self, name):
        assert task_config_fields(name) == _ALL_FIELDS

    @given(st.integers(min_value=1, max_value=64))
    def test_selective_tasks_use_the_selective_projection(self, top_k):
        assert task_config_fields(f"selective_{top_k}_16") == (
            "selective_top_k", "collection_window",
        )

    def test_known_tasks_project_onto_declared_subsets(self):
        for task, declared in TASK_CONFIG_FIELDS.items():
            assert set(declared) <= set(_ALL_FIELDS), task

    def test_unknown_task_key_differs_whenever_any_field_does(self):
        base = LabConfig()
        for name in _ALL_FIELDS:
            changed = LabConfig(**{name: getattr(base, name) + 1})
            assert task_config_key("mystery", changed) != task_config_key(
                "mystery", base
            ), name


class TestRegistryRequiresArePlannable:
    """Registry-wide mirror of the static DS003 check."""

    def test_every_registered_requires_resolves(self):
        for experiment_id in experiment_ids():
            for task in experiment_requires(experiment_id):
                assert task in DEFAULT_TASKS, (
                    f"experiment {experiment_id!r} requires "
                    f"unplannable task {task!r}"
                )

    def test_every_default_task_has_a_projection(self):
        for task in DEFAULT_TASKS:
            assert task in TASK_CONFIG_FIELDS, task


class TestInfrastructure:
    def test_duplicate_registration_rejected(self):
        @register("test-dummy-experiment")
        def dummy(labs):
            return None

        with pytest.raises(ValueError, match="duplicate"):
            register("test-dummy-experiment")(dummy)

    def test_build_labs_propagates_config(self):
        config = LabConfig(gshare_history_bits=4, gshare_pht_bits=6)
        labs = build_labs(max_length=2000, config=config)
        assert labs["gcc"].config is config

    def test_build_labs_seed(self):
        a = build_labs(max_length=2000, run_seed=1)
        b = build_labs(max_length=2000, run_seed=2)
        assert a["gcc"].trace != b["gcc"].trace
