"""Tests for the behaviour motifs: each produces its advertised behaviour."""

import random

import numpy as np
import pytest

from repro.workloads import motifs
from repro.workloads.conditions import BernoulliExpr, MarkovExpr, constant_trips
from repro.workloads.program import Block, Procedure, Program, execute_program


def run_motif(statement, n=2000, seed=3, procedures=()):
    main = Procedure("main", statement if isinstance(statement, Block) else Block([statement]))
    program = Program(list(procedures) + [main], main="main")
    return execute_program(program, n, seed)


class TestSimpleMotifs:
    def test_biased_branch_rate(self):
        trace = run_motif(motifs.biased_branch(0.9), n=3000)
        assert trace.taken_rate() == pytest.approx(0.9, abs=0.03)

    def test_biased_run_count_and_bias(self):
        rng = random.Random(1)
        trace = run_motif(motifs.biased_run(rng, 5, 0.99, 0.999), n=3000)
        assert trace.num_static_branches() == 5
        from repro.trace.stats import per_branch_bias

        for bias in per_branch_bias(trace).values():
            assert bias > 0.95

    def test_pattern_branch_repeats(self):
        trace = run_motif(motifs.pattern_branch([True, False, False]), n=30)
        assert list(trace.taken) == [True, False, False] * 10

    def test_block_pattern_branch(self):
        trace = run_motif(motifs.block_pattern_branch(3, 2), n=20)
        assert list(trace.taken) == ([True] * 3 + [False] * 2) * 4

    def test_phased_branch_changes_bias(self):
        trace = run_motif(motifs.phased_branch(500, 0.95, 0.05), n=2000)
        first = trace.taken[:500].mean()
        second = trace.taken[500:1000].mean()
        assert first > 0.85
        assert second < 0.15


class TestCorrelationMotifs:
    def test_correlated_pair_implication(self):
        # X (= c1 AND c2) may be taken only when Y (= c1) was taken.
        trace = run_motif(
            motifs.correlated_pair("m", BernoulliExpr(0.5), p_second=0.6),
            n=3000,
        )
        pcs = sorted(trace.indices_by_pc())
        y_pc, x_pc = pcs[0], pcs[-1]
        y_taken = trace.taken[trace.indices_by_pc()[y_pc]]
        x_taken = trace.taken[trace.indices_by_pc()[x_pc]]
        assert not x_taken[~y_taken].any()

    def test_correlated_pair_filler_count(self):
        trace = run_motif(
            motifs.correlated_pair("m", BernoulliExpr(0.5), filler=3), n=100
        )
        assert trace.num_static_branches() == 5  # Y + 3 fillers + X

    def test_correlated_triple_needs_both(self):
        trace = run_motif(
            motifs.correlated_triple("m", p_first=0.5, p_second=0.5), n=3000
        )
        groups = trace.indices_by_pc()
        pcs = sorted(groups)
        y, z, x = pcs[0], pcs[1], pcs[-1]
        y_taken = trace.taken[groups[y]]
        z_taken = trace.taken[groups[z]]
        x_taken = trace.taken[groups[x]]
        assert np.array_equal(x_taken, y_taken & z_taken)

    def test_correlated_quad_formula(self):
        trace = run_motif(
            motifs.correlated_quad("m", 0.5, 0.5, 0.5), n=4000
        )
        groups = trace.indices_by_pc()
        pcs = sorted(groups)
        c1, c2, c3, x = (trace.taken[groups[pc]] for pc in pcs)
        assert np.array_equal(x, c1 & (c2 | c3))

    def test_assignment_correlation_implication(self):
        # The flag branch is always taken when the condition branch was.
        trace = run_motif(
            motifs.assignment_correlation("m", BernoulliExpr(0.5)), n=3000
        )
        groups = trace.indices_by_pc()
        pcs = sorted(groups)
        cond = trace.taken[groups[pcs[0]]]
        flag = trace.taken[groups[pcs[-1]]]
        assert flag[cond].all()

    def test_chain_in_path_correlation(self):
        # The final branch (c1 AND c2) is taken exactly when the chain
        # reached its innermost arm.
        trace = run_motif(
            motifs.if_elif_chain("m", BernoulliExpr(0.5), BernoulliExpr(0.5)),
            n=4000,
        )
        groups = trace.indices_by_pc()
        pcs = sorted(groups)
        outer = trace.taken[groups[pcs[0]]]  # NOT(c1)
        final = trace.taken[groups[pcs[-1]]]  # c1 AND c2
        rounds = min(len(outer), len(final))  # trace may end mid-round
        assert not final[:rounds][outer[:rounds]].any()

    def test_call_site_pair_mode_branch(self):
        callee = "m_proc"
        procedures = [Procedure(callee, motifs.make_callee_body(callee, 1))]
        trace = run_motif(
            motifs.call_site_pair("m", callee, p_alternate=0.0),
            n=3000,
            procedures=procedures,
        )
        groups = trace.indices_by_pc()
        mode_pc = sorted(groups)[0]  # first branch in the callee
        mode_taken = trace.taken[groups[mode_pc]]
        # Call site 1 always primes True, call site 2 never does.
        assert mode_taken[::2].all()
        assert not mode_taken[1::2].any()


class TestLoopMotifs:
    def test_loop_nest_shape(self):
        trace = run_motif(
            motifs.loop_nest(
                constant_trips(2), constant_trips(3), Block([])
            ),
            n=16,
        )
        # Inner loop branch: T T N per entry; outer: T N.
        assert trace.num_static_branches() == 2

    def test_gated_loop_guard_correlation(self):
        trace = run_motif(
            motifs.gated_loop("m", constant_trips(3), Block([]), p_enter=0.5),
            n=3000,
        )
        groups = trace.indices_by_pc()
        pcs = sorted(groups)
        guard_indices = groups[pcs[0]]
        # Loop branches only appear after a taken guard.
        loop_count = len(groups[pcs[1]])
        guard_taken = int(trace.taken[guard_indices].sum())
        assert loop_count == pytest.approx(3 * guard_taken, abs=3)

    def test_random_pattern_never_constant(self):
        rng = random.Random(2)
        for _ in range(50):
            pattern = motifs.random_pattern(rng, 4)
            assert any(pattern) and not all(pattern)

    def test_random_pattern_length_validation(self):
        with pytest.raises(ValueError):
            motifs.random_pattern(random.Random(1), 1)

    def test_self_history_branch_is_pas_predictable(self):
        from repro.predictors.interference_free import InterferenceFreePAs

        rng = random.Random(3)
        trace = run_motif(
            motifs.self_history_branch(rng, depth=2, flip_probability=0.0),
            n=1500,
        )
        assert InterferenceFreePAs(4).accuracy(trace) > 0.95
