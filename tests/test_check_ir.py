"""Tests for the static IR verifier (repro.check.ir)."""

import pytest

from repro.check.diagnostics import ERROR, WARNING
from repro.check.ir import (
    ProgramVerificationError,
    verify_program,
    verify_program_or_raise,
)
from repro.workloads.conditions import (
    BernoulliExpr,
    ConstExpr,
    CounterBelowExpr,
    VarExpr,
    constant_trips,
)
from repro.workloads.generator import build_program
from repro.workloads.program import (
    Assign,
    Block,
    Call,
    ForLoop,
    If,
    Procedure,
    Program,
    SetCounter,
    WhileLoop,
)
from repro.workloads.suite import BENCHMARK_NAMES, benchmark_spec


def codes(diagnostics):
    return {diag.code for diag in diagnostics}


def errors_and_warnings(diagnostics):
    return [
        diag for diag in diagnostics if diag.severity in (ERROR, WARNING)
    ]


def simple_program(*statements, procedures=()):
    return Program(
        [*procedures, Procedure("main", Block(list(statements)))],
        main="main",
    )


class TestSuiteProgramsVerifyClean:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmark_program_is_clean(self, name):
        program = build_program(benchmark_spec(name, length=1000).profile)
        findings = errors_and_warnings(verify_program(program, name=name))
        assert findings == [], "\n".join(str(d) for d in findings)


class TestCleanProgram:
    def test_minimal_program_has_no_findings(self):
        program = simple_program(
            If(BernoulliExpr(0.5)),
            ForLoop(constant_trips(3), Block([If(BernoulliExpr(0.9))])),
        )
        assert errors_and_warnings(verify_program(program)) == []

    def test_or_raise_passes_clean_program(self):
        program = simple_program(If(BernoulliExpr(0.5)))
        verify_program_or_raise(program)  # must not raise


class TestCallGraph:
    def test_unreachable_procedure(self):
        orphan = Procedure("orphan", Block([If(BernoulliExpr(0.5))]))
        program = simple_program(
            If(BernoulliExpr(0.5)), procedures=[orphan]
        )
        diagnostics = verify_program(program)
        assert "IR001" in codes(diagnostics)
        assert any("orphan" in diag.message for diag in diagnostics)

    def test_procedure_reachable_through_call_chain(self):
        inner = Procedure("inner", Block([If(BernoulliExpr(0.5))]))
        outer = Procedure("outer", Block([Call("inner")]))
        program = simple_program(
            Call("outer"), procedures=[inner, outer]
        )
        assert "IR001" not in codes(verify_program(program))

    def test_undefined_callee(self):
        program = simple_program(If(BernoulliExpr(0.5)), Call("ghost"))
        diagnostics = verify_program(program)
        assert "IR002" in codes(diagnostics)


class TestAddressLayout:
    def test_aliased_statement_reports_collision(self):
        shared = If(BernoulliExpr(0.5))
        program = simple_program(shared, shared)
        assert "IR004" in codes(verify_program(program))

    def test_stride_violation_detected(self):
        branch = If(BernoulliExpr(0.5))
        program = simple_program(branch)
        branch.pc += 1  # knock the site off the address grid
        assert "IR005" in codes(verify_program(program))

    def test_backward_if_branch_violates_convention(self):
        branch = If(BernoulliExpr(0.5))
        program = simple_program(branch)
        branch.target = branch.pc - 8  # ifs must branch forward
        assert "IR006" in codes(verify_program(program))

    def test_forward_loop_branch_violates_convention(self):
        loop = ForLoop(constant_trips(3), Block([]))
        program = simple_program(loop)
        loop.start = loop.pc + 8  # loop branches must branch backward
        assert "IR006" in codes(verify_program(program))

    def test_unlaid_out_branch_site(self):
        # Bypass Program construction entirely: a statement never given
        # addresses still carries the -1 sentinel.
        branch = If(BernoulliExpr(0.5))
        program = simple_program(If(BernoulliExpr(0.5)))
        program.procedure("main").body.statements.append(branch)
        assert "IR003" in codes(verify_program(program))


class TestTripCounts:
    def test_zero_trip_for_loop_is_error(self):
        program = simple_program(ForLoop(constant_trips(0), Block([])))
        diagnostics = verify_program(program)
        assert any(
            diag.code == "IR007" and diag.severity == ERROR
            for diag in diagnostics
        )

    def test_zero_trip_while_loop_warns_dead_body(self):
        program = simple_program(
            WhileLoop(constant_trips(0), Block([If(BernoulliExpr(0.5))]))
        )
        diagnostics = verify_program(program)
        assert any(
            diag.code == "IR007" and diag.severity == WARNING
            for diag in diagnostics
        )
        assert "IR012" in codes(diagnostics)

    def test_unbounded_generator_is_error(self):
        def trips(env):
            return 10**9

        trips.trip_bounds = (1, None)
        program = simple_program(ForLoop(trips, Block([])))
        assert "IR008" in codes(verify_program(program))

    def test_negative_bound_is_error(self):
        def trips(env):
            return 1

        trips.trip_bounds = (-2, 4)
        program = simple_program(ForLoop(trips, Block([])))
        assert "IR013" in codes(verify_program(program))

    def test_opaque_generator_is_info_only(self):
        program = simple_program(ForLoop(lambda env: 3, Block([])))
        diagnostics = verify_program(program)
        assert "IR100" in codes(diagnostics)
        assert errors_and_warnings(diagnostics) == []


class TestConditions:
    def test_undefined_variable_is_error(self):
        program = simple_program(If(VarExpr("ghost")))
        diagnostics = verify_program(program)
        assert "IR009" in codes(diagnostics)
        assert any("ghost" in diag.message for diag in diagnostics)

    def test_assigned_variable_is_fine(self):
        program = simple_program(
            Assign("flag", BernoulliExpr(0.5)), If(VarExpr("flag"))
        )
        assert "IR009" not in codes(verify_program(program))

    def test_variable_assigned_in_other_procedure_is_fine(self):
        # Procedure bodies share one Environment, so a variable assigned
        # by the caller may feed a callee's condition (the call motif).
        callee = Procedure("callee", Block([If(VarExpr("mode"))]))
        program = simple_program(
            Assign("mode", BernoulliExpr(0.5)),
            Call("callee"),
            procedures=[callee],
        )
        assert "IR009" not in codes(verify_program(program))

    def test_undefined_counter_is_warning(self):
        program = simple_program(If(CounterBelowExpr("depth", 4)))
        diagnostics = verify_program(program)
        assert any(
            diag.code == "IR010" and diag.severity == WARNING
            for diag in diagnostics
        )

    def test_set_counter_is_fine(self):
        program = simple_program(
            SetCounter("depth", 0), If(CounterBelowExpr("depth", 4))
        )
        assert "IR010" not in codes(verify_program(program))

    def test_constant_condition_and_dead_arm(self):
        program = simple_program(
            If(
                ConstExpr(False),
                then_body=Block([If(BernoulliExpr(0.5))]),
            )
        )
        diagnostics = verify_program(program)
        assert "IR011" in codes(diagnostics)
        assert "IR012" in codes(diagnostics)


class TestFailFast:
    def test_or_raise_carries_structured_diagnostics(self):
        program = simple_program(If(VarExpr("ghost")))
        with pytest.raises(ProgramVerificationError) as excinfo:
            verify_program_or_raise(program, name="bad")
        assert any(
            diag.code == "IR009" for diag in excinfo.value.diagnostics
        )
        assert "IR009" in str(excinfo.value)

    def test_suite_verifies_before_trace_generation(self, monkeypatch):
        from repro.workloads import suite

        def build_malformed(profile):
            return simple_program(If(VarExpr("ghost")))

        monkeypatch.setattr(suite, "build_program", build_malformed)
        suite._cached_trace.cache_clear()
        try:
            with pytest.raises(ProgramVerificationError):
                suite.load_benchmark("compress", length=1234, run_seed=99)
        finally:
            suite._cached_trace.cache_clear()
