"""Regenerate the paper's table1 and measure its cost."""

from repro.experiments.base import run_experiment

from conftest import save_result


def test_bench_table1(benchmark, labs, results_dir):
    result = benchmark.pedantic(
        run_experiment, args=("table1", labs), rounds=1, iterations=1
    )
    assert result.experiment_id == "table1"
    save_result(results_dir, "table1", str(result))
