"""Regenerate the paper's fig8 and measure its cost."""

from repro.experiments.base import run_experiment

from conftest import save_result


def test_bench_fig8(benchmark, labs, results_dir):
    result = benchmark.pedantic(
        run_experiment, args=("fig8", labs), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig8"
    save_result(results_dir, "fig8", str(result))
