"""Regenerate the extension experiments (beyond the paper's artefacts)."""

import pytest

from repro.experiments.base import EXTENSION_IDS, run_experiment

from conftest import save_result


@pytest.mark.parametrize("experiment_id", EXTENSION_IDS)
def test_bench_extension(benchmark, labs, results_dir, experiment_id):
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, labs), rounds=1, iterations=1
    )
    assert result.experiment_id == experiment_id
    save_result(results_dir, experiment_id, str(result))
