"""Gate benchmark wall-clock against the committed timing baseline.

Usage::

    python benchmarks/compare_timings.py BASELINE CURRENT [--threshold 2.0]

Both arguments are ``BENCH_timings.json`` artefacts (the committed
baseline at ``benchmarks/BENCH_timings.json`` and the file a fresh
``pytest benchmarks/`` run leaves in ``benchmarks/results/``).  The gate
fails (exit 1) when any test recorded in the baseline runs more than
``threshold`` times slower, or when a recorded test disappeared or no
longer passes.  Tests new to the current run are reported but never
fail the gate -- they have no baseline to regress against.

Very short lines are pure harness noise, so each side is clamped to a
floor (``--floor``, default 0.1s) before the ratio is taken: a 0.014s
test drifting to 0.04s is not a regression worth a red build.

Comparing runs at different ``REPRO_BENCH_LENGTH`` scales is meaningless
and exits 2 rather than reporting bogus ratios.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_timings(path: Path) -> dict:
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: cannot read timings from {path}: {error}")
    for field in ("bench_length", "tests"):
        if field not in document:
            raise SystemExit(
                f"error: {path} is not a BENCH_timings artefact "
                f"(missing {field!r})"
            )
    return document


def compare(
    baseline: dict, current: dict, threshold: float, floor: float
) -> int:
    """Print a comparison table; return the number of gate failures."""
    if baseline["bench_length"] != current["bench_length"]:
        print(
            f"error: bench_length mismatch (baseline "
            f"{baseline['bench_length']}, current {current['bench_length']}); "
            "rerun with REPRO_BENCH_LENGTH matching the baseline",
            file=sys.stderr,
        )
        raise SystemExit(2)
    failures = 0
    base_tests = baseline["tests"]
    cur_tests = current["tests"]
    width = max((len(name) for name in base_tests), default=20)
    for name, base_entry in sorted(base_tests.items()):
        cur_entry = cur_tests.get(name)
        if cur_entry is None:
            print(f"FAIL {name:<{width}} missing from current run")
            failures += 1
            continue
        if cur_entry["outcome"] != "passed":
            print(
                f"FAIL {name:<{width}} outcome {cur_entry['outcome']!r} "
                f"(baseline {base_entry['outcome']!r})"
            )
            failures += 1
            continue
        ratio = max(cur_entry["seconds"], floor) / max(
            base_entry["seconds"], floor
        )
        status = "FAIL" if ratio > threshold else "ok  "
        print(
            f"{status} {name:<{width}} {base_entry['seconds']:8.3f}s -> "
            f"{cur_entry['seconds']:8.3f}s  ({ratio:.2f}x)"
        )
        if ratio > threshold:
            failures += 1
    for name in sorted(set(cur_tests) - set(base_tests)):
        print(f"new  {name} ({cur_tests[name]['seconds']:.3f}s, no baseline)")
    print(
        f"\ntotal: {baseline['total_seconds']:.3f}s -> "
        f"{current['total_seconds']:.3f}s over {len(base_tests)} "
        f"baseline line(s); {failures} failure(s) at >{threshold:.1f}x"
    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when any benchmark regresses past the threshold."
    )
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="maximum allowed current/baseline ratio (default 2.0)",
    )
    parser.add_argument(
        "--floor", type=float, default=0.1,
        help="clamp both sides to this many seconds before the ratio "
             "(default 0.1; filters sub-harness-noise lines)",
    )
    args = parser.parse_args(argv)
    failures = compare(
        load_timings(args.baseline), load_timings(args.current),
        args.threshold, args.floor,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
