"""Regenerate the paper's table2 and measure its cost."""

from repro.experiments.base import run_experiment

from conftest import save_result


def test_bench_table2(benchmark, labs, results_dir):
    result = benchmark.pedantic(
        run_experiment, args=("table2", labs), rounds=1, iterations=1
    )
    assert result.experiment_id == "table2"
    save_result(results_dir, "table2", str(result))
