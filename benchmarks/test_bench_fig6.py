"""Regenerate the paper's fig6 and measure its cost."""

from repro.experiments.base import run_experiment

from conftest import save_result


def test_bench_fig6(benchmark, labs, results_dir):
    result = benchmark.pedantic(
        run_experiment, args=("fig6", labs), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig6"
    save_result(results_dir, "fig6", str(result))
