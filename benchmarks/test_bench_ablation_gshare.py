"""Ablation: gshare history length and PHT size at reproduction scale.

DESIGN.md keeps the paper's nominal 16/16 gshare; this bench sweeps the
configuration to show where training time and interference trade off on
our scaled traces.
"""

from repro.predictors.twolevel import GsharePredictor

from conftest import save_result

CONFIGS = ((6, 12), (8, 12), (10, 12), (12, 12), (14, 14), (16, 16))


def test_bench_ablation_gshare(benchmark, labs, results_dir):
    subjects = {name: labs[name] for name in ("gcc", "go", "vortex")}

    def sweep():
        return {
            bench: {
                (h, p): float(GsharePredictor(h, p).simulate(lab.trace).mean())
                for h, p in CONFIGS
            }
            for bench, lab in subjects.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["gshare configuration sweep (history bits / PHT bits):"]
    for bench, by_config in results.items():
        row = "  ".join(
            f"{h}/{p}={accuracy * 100:.2f}"
            for (h, p), accuracy in by_config.items()
        )
        lines.append(f"  {bench:8s} {row}")
    save_result(results_dir, "ablation_gshare", "\n".join(lines))
    for by_config in results.values():
        for accuracy in by_config.values():
            assert 0.5 < accuracy <= 1.0
