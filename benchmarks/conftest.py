"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures: the benchmark measures the experiment's runtime, and the
rendered table/figure text is written to ``benchmarks/results/<id>.txt``
so a ``pytest benchmarks/ --benchmark-only`` run leaves the full set of
reproduced artefacts on disk.

Trace scale is controlled by ``REPRO_BENCH_LENGTH`` (dynamic branches of
the longest benchmark; default 20000 keeps the whole harness under a few
minutes of pure Python).

Every run also writes ``benchmarks/results/BENCH_timings.json`` -- the
per-test wall-clock timings plus run metadata -- so CI can archive a
timing artefact per commit and regressions show up as a diffable number.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.analysis.config import LabConfig
from repro.analysis.runner import Lab
from repro.workloads.suite import BENCHMARK_NAMES, load_benchmark, scaled_length

RESULTS_DIR = Path(__file__).parent / "results"


def bench_max_length() -> int:
    return int(os.environ.get("REPRO_BENCH_LENGTH", "20000"))


@pytest.fixture(scope="session")
def labs():
    """One lab per suite benchmark at bench scale, shared session-wide."""
    max_length = bench_max_length()
    return {
        name: Lab(
            load_benchmark(name, scaled_length(name, max_length), run_seed=12345)
        )
        for name in BENCHMARK_NAMES
    }


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, experiment_id: str, text: str) -> None:
    (results_dir / f"{experiment_id}.txt").write_text(text + "\n")


# -- timing artefact --------------------------------------------------------

_TIMINGS = {}


def pytest_runtest_logreport(report):
    if report.when == "call":
        _TIMINGS[report.nodeid] = {
            "seconds": round(report.duration, 3),
            "outcome": report.outcome,
        }


def pytest_sessionfinish(session, exitstatus):
    if not _TIMINGS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench_length": bench_max_length(),
        "python": platform.python_version(),
        "exit_status": int(exitstatus),
        "total_seconds": round(
            sum(entry["seconds"] for entry in _TIMINGS.values()), 3
        ),
        "tests": dict(sorted(_TIMINGS.items())),
    }
    (RESULTS_DIR / "BENCH_timings.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
