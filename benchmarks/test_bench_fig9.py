"""Regenerate the paper's fig9 and measure its cost."""

from repro.experiments.base import run_experiment

from conftest import save_result


def test_bench_fig9(benchmark, labs, results_dir):
    result = benchmark.pedantic(
        run_experiment, args=("fig9", labs), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig9"
    save_result(results_dir, "fig9", str(result))
