"""Regenerate the paper's table3 and measure its cost."""

from repro.experiments.base import run_experiment

from conftest import save_result


def test_bench_table3(benchmark, labs, results_dir):
    result = benchmark.pedantic(
        run_experiment, args=("table3", labs), rounds=1, iterations=1
    )
    assert result.experiment_id == "table3"
    save_result(results_dir, "table3", str(result))
