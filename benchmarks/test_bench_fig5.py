"""Regenerate the paper's fig5 and measure its cost."""

from repro.experiments.base import run_experiment

from conftest import save_result


def test_bench_fig5(benchmark, labs, results_dir):
    result = benchmark.pedantic(
        run_experiment, args=("fig5", labs), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig5"
    save_result(results_dir, "fig5", str(result))
