"""Robustness: the headline orderings hold across workload inputs.

Runs the table-2 construction on the gcc and vortex analogues for three
different execution seeds ("input data sets") and checks the qualitative
claims are seed-stable: the correlation combiner always gains, and gains
are larger on gcc than on vortex.
"""

from repro.analysis.runner import Lab
from repro.predictors.hybrid import OracleCombiner
from repro.workloads.suite import load_benchmark, scaled_length

from conftest import bench_max_length, save_result

SEEDS = (12345, 777, 31337)


def test_bench_seed_variance(benchmark, results_dir):
    max_length = min(bench_max_length(), 20000)

    def sweep():
        gains = {"gcc": [], "vortex": []}
        for seed in SEEDS:
            for name in gains:
                lab = Lab(
                    load_benchmark(
                        name, scaled_length(name, max_length), run_seed=seed
                    )
                )
                combined = OracleCombiner.combine(
                    lab.trace, lab.correct("gshare"), lab.selective_correct(1)
                )
                gains[name].append(
                    (float(combined.mean()) - lab.accuracy("gshare")) * 100
                )
        return gains

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["table-2 gain (gshare w/ Corr - gshare) across input seeds:"]
    for name, values in gains.items():
        formatted = ", ".join(f"{v:.2f}" for v in values)
        lines.append(f"  {name:8s} [{formatted}] points")
    save_result(results_dir, "seed_variance", "\n".join(lines))
    for name, values in gains.items():
        assert all(v > 0 for v in values), name
    for gcc_gain, vortex_gain in zip(gains["gcc"], gains["vortex"]):
        assert gcc_gain > vortex_gain
