#!/usr/bin/env python
"""CI memory gate: streamed runs must hold peak RSS flat in trace length.

The streaming trace path (``repro.trace.stream`` + ``stream_report``)
promises bounded memory: generation spills fixed windows to a chunked
``.bpt`` file, and the report folds kernels window by window, so peak
residency is O(window), not O(trace).  This script *measures* that
promise with ``resource.getrusage``: it runs one streamed
generate-then-report cycle per trace length, each in a fresh subprocess
of itself (``ru_maxrss`` is a process-lifetime high-water mark, so
lengths cannot share a process), and fails if peak RSS grows with trace
length beyond the budget ratio.

Usage::

    python benchmarks/check_rss.py                      # default gate
    python benchmarks/check_rss.py --lengths 2000000,10000000
    python benchmarks/check_rss.py --out rss_profile.json

Exit status 0 iff every length completes and
``max(rss) / min(rss) <= --budget`` (default 1.10, i.e. RSS may vary
10% across a 4x trace-length spread but must not scale with it).
The JSON profile written to ``--out`` is the CI artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(os.path.dirname(HERE), "src")


def peak_rss_bytes() -> int:
    """This process's lifetime peak RSS in bytes (ru_maxrss is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def run_child(length: int, chunk_branches: int, benchmark: str) -> dict:
    """One streamed generate+report cycle; returns the measurement."""
    from repro.analysis.config import DEFAULT_CONFIG
    from repro.analysis.streamed import stream_report
    from repro.trace.stream import TraceStream
    from repro.workloads.suite import stream_benchmark

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, f"{benchmark}.bpt")
        start = time.perf_counter()
        written = stream_benchmark(
            benchmark, path, length=length, chunk_branches=chunk_branches
        )
        generate_seconds = time.perf_counter() - start
        spill_bytes = os.path.getsize(path)
        stream = TraceStream.open(path)
        start = time.perf_counter()
        report = stream_report(stream, DEFAULT_CONFIG)
        report_seconds = time.perf_counter() - start
    return {
        "length": length,
        "branches_written": written,
        "chunk_branches": chunk_branches,
        "benchmark": benchmark,
        "spill_bytes": spill_bytes,
        "generate_seconds": round(generate_seconds, 3),
        "report_seconds": round(report_seconds, 3),
        "peak_rss_bytes": peak_rss_bytes(),
        "accuracy": {
            task: round(entry["accuracy"], 6) for task, entry in report.items()
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--lengths",
        default="500000,2000000",
        help="comma-separated trace lengths to measure (default 500k,2M)",
    )
    parser.add_argument(
        "--chunk-branches",
        type=int,
        default=65536,
        help="streaming window (default 65536)",
    )
    parser.add_argument(
        "--benchmark",
        default="compress",
        help="suite benchmark profile to generate (default compress)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=1.10,
        help="max allowed peak-RSS ratio across lengths (default 1.10)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON RSS profile here (the CI artifact)",
    )
    parser.add_argument(
        "--child",
        type=int,
        default=None,
        help=argparse.SUPPRESS,  # internal: run one length and print JSON
    )
    args = parser.parse_args(argv)

    if args.child is not None:
        measurement = run_child(args.child, args.chunk_branches, args.benchmark)
        json.dump(measurement, sys.stdout)
        return 0

    lengths = sorted({int(text) for text in args.lengths.split(",")})
    if len(lengths) < 2:
        print("error: need at least two lengths to compare", file=sys.stderr)
        return 2

    environment = dict(os.environ)
    environment["PYTHONPATH"] = SRC + os.pathsep + environment.get(
        "PYTHONPATH", ""
    )
    measurements = []
    for length in lengths:
        print(f"measuring streamed run at {length} branches...", flush=True)
        completed = subprocess.run(
            [
                sys.executable,
                os.path.abspath(__file__),
                "--child",
                str(length),
                "--chunk-branches",
                str(args.chunk_branches),
                "--benchmark",
                args.benchmark,
            ],
            env=environment,
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            print(completed.stdout, file=sys.stderr)
            print(completed.stderr, file=sys.stderr)
            print(f"error: child at length {length} failed", file=sys.stderr)
            return 1
        measurement = json.loads(completed.stdout)
        rss_mib = measurement["peak_rss_bytes"] / (1024 * 1024)
        print(
            f"  {length:>10} branches: peak RSS {rss_mib:8.1f} MiB, "
            f"generate {measurement['generate_seconds']:6.1f}s, "
            f"report {measurement['report_seconds']:6.1f}s",
            flush=True,
        )
        measurements.append(measurement)

    peaks = [entry["peak_rss_bytes"] for entry in measurements]
    ratio = max(peaks) / min(peaks)
    verdict = ratio <= args.budget
    profile = {
        "schema": "rss_profile/v1",
        "budget_ratio": args.budget,
        "observed_ratio": round(ratio, 4),
        "flat": verdict,
        "measurements": measurements,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(profile, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"RSS profile written to {args.out}")
    spread = max(lengths) / min(lengths)
    print(
        f"peak-RSS ratio across a {spread:.0f}x length spread: "
        f"{ratio:.3f} (budget {args.budget})"
    )
    if not verdict:
        print(
            "error: peak RSS grows with trace length -- the streaming "
            "path is leaking whole-trace state",
            file=sys.stderr,
        )
        return 1
    print("memory gate passed: peak RSS is flat in trace length")
    return 0


if __name__ == "__main__":
    sys.exit(main())
