"""Regenerate the paper's fig7 and measure its cost."""

from repro.experiments.base import run_experiment

from conftest import save_result


def test_bench_fig7(benchmark, labs, results_dir):
    result = benchmark.pedantic(
        run_experiment, args=("fig7", labs), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig7"
    save_result(results_dir, "fig7", str(result))
