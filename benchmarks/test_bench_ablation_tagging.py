"""Ablation: what each instance-tagging scheme contributes (section 3.2).

The paper tags prior branches both by occurrence number and by backward-
branch count, keeping both tag sets as candidates.  This bench runs the
3-branch selective history with each scheme alone and with both.
"""

from repro.correlation.selection import SelectionConfig, select_for_trace
from repro.correlation.tagging import TAG_BACKWARD, TAG_OCCURRENCE
from repro.predictors.selective import SelectiveHistoryPredictor

from conftest import save_result

SCHEMES = {
    "occurrence-only": (TAG_OCCURRENCE,),
    "backward-only": (TAG_BACKWARD,),
    "both (paper)": None,
}


def _accuracy(lab, tag_kinds):
    config = SelectionConfig(window=16, tag_kinds=tag_kinds)
    data = lab.correlation_data()
    selections = select_for_trace(data, 3, config)
    predictor = SelectiveHistoryPredictor(3, config)
    predictor.fit(lab.trace, data=data, selections=selections)
    return float(predictor.simulate(lab.trace).mean())


def test_bench_ablation_tagging(benchmark, labs, results_dir):
    subjects = {name: labs[name] for name in ("gcc", "ijpeg")}

    def sweep():
        return {
            bench: {
                label: _accuracy(lab, kinds) for label, kinds in SCHEMES.items()
            }
            for bench, lab in subjects.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["tagging-scheme ablation (selective-3):"]
    for bench, by_scheme in results.items():
        for label, accuracy in by_scheme.items():
            lines.append(f"  {bench:8s} {label:16s} {accuracy * 100:.2f}%")
    save_result(results_dir, "ablation_tagging", "\n".join(lines))
    # Using both schemes must never lose to either alone (the candidate
    # set is a superset and the oracle maximises).
    for by_scheme in results.values():
        both = by_scheme["both (paper)"]
        assert both >= by_scheme["occurrence-only"] - 0.005
        assert both >= by_scheme["backward-only"] - 0.005
