"""Regenerate the paper's fig4 and measure its cost."""

from repro.experiments.base import run_experiment

from conftest import save_result


def test_bench_fig4(benchmark, labs, results_dir):
    result = benchmark.pedantic(
        run_experiment, args=("fig4", labs), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig4"
    save_result(results_dir, "fig4", str(result))
