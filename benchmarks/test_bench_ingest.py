"""Measure foreign-trace ingestion over the committed profile portfolio.

``benchmarks/profiles/`` holds five curated CBP-style text traces in
increasing prediction difficulty -- a steady branch, loop exits,
periodic patterns, leader/follower correlation, and noise.  Each
benchmark ingests one profile through the full text -> BPT2 pipeline
(parse, validate, re-chunk, spill, digest), so the timing tracks the
importer's end-to-end cost; the asserted digests pin the parser's
output bit-for-bit against drift.
"""

from pathlib import Path

import pytest

from repro.trace.ingest import ingest_file

from conftest import save_result

PROFILES_DIR = Path(__file__).parent / "profiles"

#: profile -> (canonical trace digest, dynamic branch count).
PROFILE_IDENTITIES = {
    "p1_steady": ("479d5ba6187549e74a4adba4412490ed", 4000),
    "p2_loop": ("45ce7327f9c0a15275d342fe53d34f2e", 4000),
    "p3_pattern": ("fae711bee56b8fcdd11379f489719fde", 4000),
    "p4_correlated": ("e6ff41aa3ee846a7b5262714ff6e04de", 4000),
    "p5_noisy": ("c7240cb91a10808829339994c45ee2d3", 4000),
}


@pytest.mark.parametrize("profile", sorted(PROFILE_IDENTITIES))
def test_bench_ingest(profile, benchmark, results_dir, tmp_path):
    source = PROFILES_DIR / f"{profile}.txt"
    result = benchmark.pedantic(
        ingest_file,
        args=(source, tmp_path / f"{profile}.bpt"),
        rounds=1,
        iterations=1,
    )
    digest, branches = PROFILE_IDENTITIES[profile]
    assert result.digest == digest
    assert result.branches == branches
    save_result(
        results_dir,
        f"ingest_{profile}",
        f"{profile}: {result.branches} branches -> {result.path}\n"
        f"digest {result.digest}",
    )
