"""Ablation: how trace length moves the headline numbers.

The reproduction runs at ~1% of the paper's trace scale; this bench
measures gshare and interference-free gshare on the gcc analogue at
several lengths, showing the training-density effect DESIGN.md documents
(both rise with length; the gap persists).
"""

from repro.analysis.config import DEFAULT_CONFIG
from repro.workloads.suite import load_benchmark

from conftest import save_result

LENGTHS = (5_000, 10_000, 20_000, 40_000)


def test_bench_ablation_scaling(benchmark, results_dir):
    def sweep():
        results = {}
        for length in LENGTHS:
            trace = load_benchmark("gcc", length=length, run_seed=12345)
            gshare = float(DEFAULT_CONFIG.gshare().simulate(trace).mean())
            if_gshare = float(DEFAULT_CONFIG.if_gshare().simulate(trace).mean())
            results[length] = (gshare, if_gshare)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["trace-length scaling (gcc analogue):"]
    for length, (gshare, if_gshare) in results.items():
        lines.append(
            f"  n={length:6d}  gshare={gshare * 100:.2f}%  "
            f"IF-gshare={if_gshare * 100:.2f}%  gap={(if_gshare - gshare) * 100:.2f}"
        )
    save_result(results_dir, "ablation_scaling", "\n".join(lines))
    # Training density rises with length: both predictors improve from
    # the shortest to the longest run.
    assert results[LENGTHS[-1]][0] > results[LENGTHS[0]][0]
    assert results[LENGTHS[-1]][1] > results[LENGTHS[0]][1]
    # The interference-free instrument stays ahead at every scale.
    for gshare, if_gshare in results.values():
        assert if_gshare > gshare
