"""Ablation: sensitivity of the oracle to its candidate-pool size.

DESIGN.md substitutes a top-K restricted exhaustive search for the
paper's unspecified oracle; this bench measures how much selective-3
accuracy depends on K.  A flat curve means the approximation is safe.
"""

from repro.correlation.selection import SelectionConfig, select_for_trace
from repro.predictors.selective import SelectiveHistoryPredictor

from conftest import save_result

TOP_KS = (4, 8, 12, 16)


def _selective_accuracy(lab, top_k):
    config = SelectionConfig(window=16, top_k=top_k)
    data = lab.correlation_data()
    selections = select_for_trace(data, 3, config)
    predictor = SelectiveHistoryPredictor(3, config)
    predictor.fit(lab.trace, data=data, selections=selections)
    return float(predictor.simulate(lab.trace).mean())


def test_bench_ablation_topk(benchmark, labs, results_dir):
    lab = labs["gcc"]

    def sweep():
        return {k: _selective_accuracy(lab, k) for k in TOP_KS}

    accuracies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["oracle top-K sensitivity (gcc, selective-3):"]
    lines.extend(
        f"  top_k={k}: {accuracies[k] * 100:.2f}%" for k in TOP_KS
    )
    spread = (max(accuracies.values()) - min(accuracies.values())) * 100
    lines.append(f"  spread: {spread:.2f} points")
    save_result(results_dir, "ablation_topk", "\n".join(lines))
    # The approximation must be stable: widening the pool beyond the
    # default should not change accuracy by more than half a point.
    assert abs(accuracies[16] - accuracies[12]) * 100 < 0.5
