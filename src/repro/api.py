"""The stable public API facade.

Library users previously imported from deep module paths that moved as
the engine grew (``repro.experiments.base``, ``repro.analysis.runner``,
``repro.workloads.suite``...).  This module is the supported surface:

>>> from repro.api import run_report
>>> run = run_report(["table2"], max_length=20_000)
>>> print(run.results["table2"])          # rendered artefact
>>> run.manifest["cache"]["hit_ratio"]    # run-level telemetry

Everything here accepts and returns the same objects the CLI uses
(:class:`~repro.analysis.runner.Lab`,
:class:`~repro.analysis.config.LabConfig`,
:class:`~repro.experiments.base.ExperimentResult`), so code written
against the facade and results produced by ``repro report`` are
interchangeable.  The deep paths keep working -- the facade re-exports,
it does not move code.

:func:`run_report` is the instrumented entry point: it scopes the
global metrics registry, traces every stage, and assembles the
schema-versioned run manifest that ``repro report`` writes to
``run_manifest.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.analysis.cache import ResultCache
from repro.analysis.config import DEFAULT_CONFIG, LabConfig
from repro.analysis.parallel import prime_labs, resolve_jobs
from repro.analysis.runner import Lab
from repro.experiments.base import (
    EXPERIMENT_IDS,
    EXTENSION_IDS,
    ExperimentResult,
    build_labs,
    run_experiment,
)
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import METRICS
from repro.obs.tracing import TRACER
from repro.trace.trace import Trace
from repro.workloads.suite import load_suite

__all__ = [
    "EXPERIMENT_IDS",
    "EXTENSION_IDS",
    "Lab",
    "LabConfig",
    "ReportRun",
    "build_labs",
    "generate_suite",
    "prime_labs",
    "run_experiment",
    "run_report",
]


def generate_suite(
    max_length: Optional[int] = None, seed: int = 12345
) -> Dict[str, Trace]:
    """Generate the eight benchmark traces, in paper order.

    A facade alias of :func:`repro.workloads.suite.load_suite` with the
    facade's keyword spelling.
    """
    return load_suite(max_length, run_seed=seed)


@dataclass
class ReportRun:
    """Everything one :func:`run_report` invocation produced.

    Attributes:
        results: Experiment id -> result, in run order.
        labs: Benchmark name -> primed :class:`Lab` (reusable for
            follow-up analysis without re-simulating).
        manifest: The schema-versioned run manifest dict (already
            written to disk when ``manifest_out`` was given).
        metrics: The run's metric delta -- counters/gauges/timers that
            happened during this run only.
    """

    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    labs: Dict[str, Lab] = field(default_factory=dict)
    manifest: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)


def _resolve_cache(
    use_cache: bool, cache_dir: Optional[str]
) -> Optional[ResultCache]:
    if not use_cache:
        return None
    return ResultCache(cache_dir)


def run_report(
    experiments: Optional[List[str]] = None,
    *,
    max_length: Optional[int] = None,
    config: Optional[LabConfig] = None,
    seed: int = 12345,
    jobs: Optional[Union[int, str]] = None,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    json_out: Optional[str] = None,
    manifest_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    trace_out: Optional[str] = None,
    command: Optional[List[str]] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> ReportRun:
    """Run experiments end to end: labs, simulations, results, manifest.

    This is what ``repro report`` / ``repro all`` execute; library users
    get the identical instrumented pipeline.

    Args:
        experiments: Experiment ids to run, in order (default: the nine
            paper artefacts, :data:`EXPERIMENT_IDS`).  Duplicates run
            once.
        max_length: Scale anchor for the longest benchmark trace
            (default: ``REPRO_TRACE_LENGTH`` or 200k).
        config: Predictor sizing (default :data:`DEFAULT_CONFIG`).
        seed: Workload execution seed.
        jobs: Worker processes (default: ``REPRO_JOBS`` or CPU count).
        use_cache: Consult/populate the on-disk result cache.
        cache_dir: Cache root (default ``REPRO_CACHE_DIR`` or
            ``.repro-cache``).
        json_out: Also export the results as JSON to this path.
        manifest_out: Write the run manifest JSON to this path.
        metrics_out: Write the run's metric delta JSON to this path.
        trace_out: Write the run's Chrome-trace span JSON to this path.
        command: The argv that launched the run, recorded in the
            manifest (None for library use).
        echo: Progress sink (e.g. ``print``); None runs silently.

    Returns:
        A :class:`ReportRun` with results, primed labs, the manifest
        dict, and the run's metric delta.

    Raises:
        KeyError: On an unknown experiment id.
    """
    say = echo if echo is not None else (lambda message: None)
    if config is None:
        config = DEFAULT_CONFIG
    requested = list(
        dict.fromkeys(experiments if experiments is not None else EXPERIMENT_IDS)
    )
    known = set(EXPERIMENT_IDS) | set(EXTENSION_IDS)
    for experiment_id in requested:
        if experiment_id not in known:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; choose from "
                f"{sorted(known)}"
            )

    cache = _resolve_cache(use_cache, cache_dir)
    jobs = resolve_jobs(jobs if jobs is None else int(jobs))

    TRACER.reset()
    baseline = METRICS.snapshot()
    run_start = time.perf_counter()
    with TRACER.span("report", experiments=",".join(requested)):
        say("building workload traces...")
        build_start = time.perf_counter()
        labs = build_labs(max_length, config, seed, jobs=jobs, cache=cache)
        build_seconds = time.perf_counter() - build_start
        total = sum(len(lab.trace) for lab in labs.values())
        say(f"  {len(labs)} benchmarks, {total} dynamic branches")
        if cache is not None:
            say(f"  cache: {cache.root} ({cache.stats.summary()})")
        say(f"  jobs: {jobs}\n")

        results: Dict[str, ExperimentResult] = {}
        experiment_timings: List[dict] = []
        for experiment_id in requested:
            say(f"running {experiment_id}...")
            experiment_start = time.perf_counter()
            result = run_experiment(experiment_id, labs)
            experiment_timings.append({
                "id": experiment_id,
                "seconds": time.perf_counter() - experiment_start,
            })
            results[experiment_id] = result
            say(f"\n{result}\n")

    if json_out:
        from repro.experiments.export import export_results

        export_results(results, json_out)
        say(f"JSON results written to {json_out}")

    metrics_delta = METRICS.delta_since(baseline)
    manifest = build_manifest(
        command=command,
        config=config,
        run_seed=seed,
        max_length=max_length,
        jobs=jobs,
        cache_enabled=cache is not None,
        cache_dir=str(cache.root) if cache is not None else None,
        labs=labs,
        results=results,
        experiment_timings=experiment_timings,
        metrics=metrics_delta,
        timings={
            "build_labs_seconds": build_seconds,
            "total_seconds": time.perf_counter() - run_start,
        },
    )
    if manifest_out:
        write_manifest(manifest, manifest_out)
        say(f"run manifest written to {manifest_out}")
    if metrics_out:
        import json as _json

        with open(metrics_out, "w") as fh:
            _json.dump(metrics_delta, fh, indent=2, sort_keys=True)
            fh.write("\n")
        say(f"metrics written to {metrics_out}")
    if trace_out:
        TRACER.write(trace_out)
        say(f"span trace written to {trace_out}")
    if cache is not None:
        say(f"cache: {cache.stats.summary()}")
    return ReportRun(
        results=results, labs=labs, manifest=manifest, metrics=metrics_delta
    )
