"""The stable public API facade.

Library users previously imported from deep module paths that moved as
the engine grew (``repro.experiments.base``, ``repro.analysis.runner``,
``repro.workloads.suite``...).  This module is the supported surface:

>>> from repro.api import run_report
>>> run = run_report(["table2"], max_length=20_000)
>>> print(run.results["table2"])          # rendered artefact
>>> run.manifest["cache"]["hit_ratio"]    # run-level telemetry

Everything here accepts and returns the same objects the CLI uses
(:class:`~repro.analysis.runner.Lab`,
:class:`~repro.analysis.config.LabConfig`,
:class:`~repro.experiments.base.ExperimentResult`), so code written
against the facade and results produced by ``repro report`` are
interchangeable.  The deep paths keep working -- the facade re-exports,
it does not move code.

:func:`run_report` is the instrumented entry point: it scopes the
global metrics registry, traces every stage, assembles the
schema-versioned run manifest that ``repro report`` writes to
``run_manifest.json``, and hosts the resilience layer -- per-task
retries ride inside the engine, completed experiments are journaled as
they finish, ``resume=True`` replays journaled results bit-identically,
and a failing experiment becomes a structured failure in
:attr:`ReportRun.failures` instead of a mid-run traceback.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.analysis.cache import ResultCache
from repro.analysis.config import DEFAULT_CONFIG, LabConfig
from repro.analysis.parallel import prime_labs, resolve_jobs
from repro.analysis.runner import Lab
from repro.experiments.base import (
    EXPERIMENT_IDS,
    EXTENSION_IDS,
    ExperimentResult,
    ReplayedResult,
    build_labs,
    run_experiment,
)
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import METRICS
from repro.obs.tracing import TRACER
from repro.resilience.faults import FaultInjector
from repro.resilience.journal import RunJournal, run_key
from repro.resilience.retry import RetryPolicy
from repro.trace.trace import Trace
from repro.workloads.suite import load_suite

__all__ = [
    "EXPERIMENT_IDS",
    "EXTENSION_IDS",
    "Lab",
    "LabConfig",
    "ReportRun",
    "build_labs",
    "generate_suite",
    "prime_labs",
    "run_experiment",
    "run_report",
]


def generate_suite(
    max_length: Optional[int] = None, seed: int = 12345
) -> Dict[str, Trace]:
    """Generate the eight benchmark traces, in paper order.

    A facade alias of :func:`repro.workloads.suite.load_suite` with the
    facade's keyword spelling.
    """
    return load_suite(max_length, run_seed=seed)


@dataclass
class ReportRun:
    """Everything one :func:`run_report` invocation produced.

    Attributes:
        results: Experiment id -> result, in run order.
        labs: Benchmark name -> primed :class:`Lab` (reusable for
            follow-up analysis without re-simulating).
        manifest: The schema-versioned run manifest dict (already
            written to disk when ``manifest_out`` was given).
        metrics: The run's metric delta -- counters/gauges/timers that
            happened during this run only.
    """

    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    labs: Dict[str, Lab] = field(default_factory=dict)
    manifest: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    replayed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every task and experiment completed cleanly."""
        return not self.failures


def _resolve_cache(
    use_cache: bool, cache_dir: Optional[str]
) -> Optional[ResultCache]:
    if not use_cache:
        return None
    return ResultCache(cache_dir)


def _install_sigterm_handler():
    """Convert SIGTERM into KeyboardInterrupt for the run's duration.

    A preempted/killed-by-timeout run then unwinds through the same
    cleanup as Ctrl-C: the scheduler reaps its workers and the journal
    keeps every experiment completed so far.  Only possible (and only
    attempted) in the main thread; returns the previous handler, or
    None if nothing was installed.
    """
    if threading.current_thread() is not threading.main_thread():
        return None

    def _handler(signum, frame):
        raise KeyboardInterrupt(f"signal {signum}")

    try:
        return signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):
        return None


def run_report(
    experiments: Optional[List[str]] = None,
    *,
    max_length: Optional[int] = None,
    config: Optional[LabConfig] = None,
    seed: int = 12345,
    jobs: Optional[Union[int, str]] = None,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    json_out: Optional[str] = None,
    manifest_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    trace_out: Optional[str] = None,
    command: Optional[List[str]] = None,
    echo: Optional[Callable[[str], None]] = None,
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    fault_spec: Optional[str] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
) -> ReportRun:
    """Run experiments end to end: labs, simulations, results, manifest.

    This is what ``repro report`` / ``repro all`` execute; library users
    get the identical instrumented pipeline.

    Args:
        experiments: Experiment ids to run, in order (default: the nine
            paper artefacts, :data:`EXPERIMENT_IDS`).  Duplicates run
            once.
        max_length: Scale anchor for the longest benchmark trace
            (default: ``REPRO_TRACE_LENGTH`` or 200k).
        config: Predictor sizing (default :data:`DEFAULT_CONFIG`).
        seed: Workload execution seed.
        jobs: Worker processes (default: ``REPRO_JOBS`` or CPU count).
        use_cache: Consult/populate the on-disk result cache.
        cache_dir: Cache root (default ``REPRO_CACHE_DIR`` or
            ``.repro-cache``).
        json_out: Also export the results as JSON to this path.
        manifest_out: Write the run manifest JSON to this path.
        metrics_out: Write the run's metric delta JSON to this path.
        trace_out: Write the run's Chrome-trace span JSON to this path.
        command: The argv that launched the run, recorded in the
            manifest (None for library use).
        echo: Progress sink (e.g. ``print``); None runs silently.
        retries: Per-task retries after the first attempt (default:
            ``REPRO_MAX_RETRIES`` or 2).
        task_timeout: Per-task wall-clock limit in seconds for parallel
            workers (default: ``REPRO_TASK_TIMEOUT`` or none).
        fault_spec: Deterministic fault-injection spec (see
            ``docs/resilience.md``; default: ``REPRO_FAULT_SPEC``).
        journal_path: Append completed experiment results to this
            crash-safe JSONL journal; None disables journaling.
        resume: Replay journaled results whose run key matches this run
            instead of re-running them (requires ``journal_path``).

    Returns:
        A :class:`ReportRun` with results, primed labs, the manifest
        dict, the run's metric delta, and any structured failures
        (check :attr:`ReportRun.ok`; a failed experiment no longer
        raises).

    Raises:
        KeyError: On an unknown experiment id.
        ValueError: On a malformed fault spec, or hang faults without a
            task timeout.
    """
    say = echo if echo is not None else (lambda message: None)
    if config is None:
        config = DEFAULT_CONFIG
    requested = list(
        dict.fromkeys(experiments if experiments is not None else EXPERIMENT_IDS)
    )
    known = set(EXPERIMENT_IDS) | set(EXTENSION_IDS)
    for experiment_id in requested:
        if experiment_id not in known:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; choose from "
                f"{sorted(known)}"
            )

    cache = _resolve_cache(use_cache, cache_dir)
    jobs = resolve_jobs(jobs if jobs is None else int(jobs))
    policy = RetryPolicy.resolve(retries, task_timeout)
    injector = (
        FaultInjector.from_spec(fault_spec)
        if fault_spec is not None
        else FaultInjector.from_env()
    )
    journal = (
        RunJournal(journal_path, fresh=not resume) if journal_path else None
    )
    failures: List[Dict[str, Any]] = []
    replayed: List[str] = []

    TRACER.reset()
    baseline = METRICS.snapshot()
    run_start = time.perf_counter()
    previous_sigterm = _install_sigterm_handler()
    try:
        with TRACER.span("report", experiments=",".join(requested)):
            say("building workload traces...")
            build_start = time.perf_counter()
            labs = build_labs(
                max_length,
                config,
                seed,
                jobs=jobs,
                cache=cache,
                policy=policy,
                injector=injector,
                failures=failures,
            )
            build_seconds = time.perf_counter() - build_start
            total = sum(len(lab.trace) for lab in labs.values())
            say(f"  {len(labs)} benchmarks, {total} dynamic branches")
            if cache is not None:
                say(f"  cache: {cache.root} ({cache.stats.summary()})")
            say(f"  jobs: {jobs}\n")

            key = run_key(config, seed, labs)
            journaled = journal.load() if (journal and resume) else {}

            results: Dict[str, ExperimentResult] = {}
            experiment_timings: List[dict] = []
            for experiment_id in requested:
                entry = journaled.get((experiment_id, key))
                if entry is not None:
                    results[experiment_id] = ReplayedResult(
                        entry["payload"], entry["render"]
                    )
                    experiment_timings.append(
                        {"id": experiment_id, "seconds": 0.0}
                    )
                    replayed.append(experiment_id)
                    METRICS.inc("resilience.replayed")
                    say(f"{experiment_id}: replayed from journal\n")
                    continue
                say(f"running {experiment_id}...")
                experiment_start = time.perf_counter()
                try:
                    result = run_experiment(experiment_id, labs)
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    METRICS.inc("resilience.experiment_failures")
                    failures.append({
                        "scope": "experiment",
                        "experiment_id": experiment_id,
                        "kind": "error",
                        "message": f"{type(error).__name__}: {error}",
                    })
                    say(
                        f"  {experiment_id} FAILED "
                        f"({type(error).__name__}: {error}); continuing\n"
                    )
                    continue
                experiment_timings.append({
                    "id": experiment_id,
                    "seconds": time.perf_counter() - experiment_start,
                })
                results[experiment_id] = result
                if journal is not None:
                    journal.record(experiment_id, key, result)
                say(f"\n{result}\n")
    finally:
        # The journal appends durably as each experiment completes, so
        # an interrupt here loses nothing already finished.
        if journal is not None:
            journal.close()
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)

    if json_out:
        from repro.experiments.export import export_results

        export_results(results, json_out)
        say(f"JSON results written to {json_out}")

    metrics_delta = METRICS.delta_since(baseline)
    manifest = build_manifest(
        command=command,
        config=config,
        run_seed=seed,
        max_length=max_length,
        jobs=jobs,
        cache_enabled=cache is not None,
        cache_dir=str(cache.root) if cache is not None else None,
        labs=labs,
        results=results,
        experiment_timings=experiment_timings,
        metrics=metrics_delta,
        timings={
            "build_labs_seconds": build_seconds,
            "total_seconds": time.perf_counter() - run_start,
        },
        resilience={
            "failures": failures,
            "resumed": bool(resume),
            "replayed": replayed,
            "journal": journal.path if journal is not None else None,
        },
    )
    if manifest_out:
        write_manifest(manifest, manifest_out)
        say(f"run manifest written to {manifest_out}")
    if metrics_out:
        import json as _json

        with open(metrics_out, "w") as fh:
            _json.dump(metrics_delta, fh, indent=2, sort_keys=True)
            fh.write("\n")
        say(f"metrics written to {metrics_out}")
    if trace_out:
        TRACER.write(trace_out)
        say(f"span trace written to {trace_out}")
    if cache is not None:
        say(f"cache: {cache.stats.summary()}")
    if failures:
        say(
            f"run finished with {len(failures)} failure(s); see the "
            "manifest's resilience section"
        )
    return ReportRun(
        results=results,
        labs=labs,
        manifest=manifest,
        metrics=metrics_delta,
        failures=failures,
        replayed=replayed,
    )
