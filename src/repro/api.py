"""The stable public API facade.

Library users previously imported from deep module paths that moved as
the engine grew (``repro.experiments.base``, ``repro.analysis.runner``,
``repro.workloads.suite``...).  This module is the supported surface:

>>> from repro.api import RunSpec, run_spec, spec_from_kwargs
>>> run = run_spec(spec_from_kwargs(["table2"], max_length=20_000))
>>> print(run.results["table2"])          # rendered artefact
>>> run.manifest["cache"]["hit_ratio"]    # run-level telemetry

Everything here accepts and returns the same objects the CLI uses
(:class:`~repro.analysis.runner.Lab`,
:class:`~repro.analysis.config.LabConfig`,
:class:`~repro.experiments.base.ExperimentResult`), so code written
against the facade and results produced by ``repro report`` are
interchangeable.  The deep paths keep working -- the facade re-exports,
it does not move code.

The execution core is spec-driven: a
:class:`~repro.spec.RunSpec` describes the run, a
:class:`~repro.plan.Plan` expands it into the task graph, and
:func:`run_spec` executes the plan through the instrumented engine --
it scopes the global metrics registry, traces every stage, primes
exactly the simulations the planned experiments declared, assembles
the schema-versioned run manifest, and hosts the resilience layer
(per-task retries, journal checkpointing, ``resume``, structured
failures).  :func:`run_sweep` runs a swept spec point by point over
one shared cache and journal, writing a manifest per grid point.

Execution state has an explicit owner: an :class:`EngineSession` holds
the resolved cache, retry policy, fault injector, journal and warm
:class:`~repro.analysis.parallel.WorkerPool`.  ``run_spec`` builds a
session per call by default; long-lived callers (sweeps do this
internally, and the :mod:`repro.serve` daemon is the reason it exists)
construct one session and pass it to every run, so all of them share
one warm cache, one journal and one pool of warm workers.

Every finished run serialises to one wire envelope:
:meth:`ReportRun.to_dict` / :meth:`PointRun.to_dict` /
:meth:`SweepRun.to_dict` all produce a ``result/v1`` document, and the
same bytes come back from ``repro run``, ``repro sweep``, and the
server's ``GET /v1/runs/{id}``.  (The old ``run_report`` keyword shim
is gone -- build a spec with :func:`repro.spec.spec_from_kwargs` and
execute it with :func:`run_spec`.)
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.analysis.cache import ResultCache
from repro.analysis.config import DEFAULT_CONFIG, LabConfig
from repro.analysis.parallel import WorkerPool, prime_labs, resolve_jobs
from repro.analysis.runner import Lab
from repro.errors import (
    AdmissionError,
    EngineError,
    PlanError,
    ReproError,
    SpecError,
    UnknownExperimentError,
)
from repro.experiments.base import (
    EXPERIMENT_IDS,
    EXTENSION_IDS,
    ExperimentResult,
    ReplayedResult,
    build_labs,
    run_experiment,
)
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import METRICS
from repro.obs.tracing import TRACER
from repro.plan import Plan, build_plan
from repro.resilience.faults import FaultInjector
from repro.resilience.journal import RunJournal, spec_run_key
from repro.resilience.retry import RetryPolicy
from repro.spec import (
    EngineOptions,
    ImportedSource,
    RunSpec,
    SweepSpec,
    SyntheticSource,
    TraceEntry,
    WorkloadSpec,
    spec_from_kwargs,
)
from repro.trace.trace import Trace
from repro.workloads.suite import load_suite

#: Schema tag of the run-result wire envelope (see ``docs/serving.md``).
RESULT_SCHEMA = "result/v1"

__all__ = [
    "EXPERIMENT_IDS",
    "EXTENSION_IDS",
    "RESULT_SCHEMA",
    "AdmissionError",
    "EngineError",
    "EngineOptions",
    "EngineSession",
    "ImportedSource",
    "Lab",
    "LabConfig",
    "Plan",
    "PlanError",
    "PointRun",
    "ReportRun",
    "ReproError",
    "RunSpec",
    "SpecError",
    "SweepRun",
    "SweepSpec",
    "SyntheticSource",
    "TraceEntry",
    "UnknownExperimentError",
    "WorkloadSpec",
    "build_labs",
    "build_plan",
    "generate_suite",
    "prime_labs",
    "run_experiment",
    "run_spec",
    "run_sweep",
    "spec_from_kwargs",
    "write_result",
]


def generate_suite(
    max_length: Optional[int] = None, seed: int = 12345
) -> Dict[str, Trace]:
    """Generate the eight benchmark traces, in paper order.

    A facade alias of :func:`repro.workloads.suite.load_suite` with the
    facade's keyword spelling.
    """
    return load_suite(max_length, run_seed=seed)


@dataclass
class ReportRun:
    """Everything one report run (or one sweep point) produced.

    Attributes:
        results: Experiment id -> result, in run order.
        labs: Benchmark name -> primed :class:`Lab` (reusable for
            follow-up analysis without re-simulating).
        manifest: The schema-versioned run manifest dict (already
            written to disk when ``manifest_out`` was given).
        metrics: The run's metric delta -- counters/gauges/timers that
            happened during this run only.
        spec: The executed single-point :class:`RunSpec` (None only for
            hand-built instances).
    """

    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    labs: Dict[str, Lab] = field(default_factory=dict)
    manifest: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    replayed: List[str] = field(default_factory=list)
    spec: Optional[RunSpec] = None

    @property
    def ok(self) -> bool:
        """True when every task and experiment completed cleanly."""
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        """The ``result/v1`` wire envelope for this run.

        The same envelope -- byte for byte under canonical JSON -- is
        produced by ``repro run --result-out``, by each sweep point,
        and by the server's ``GET /v1/runs/{id}``.  The ``spec`` key
        carries the spec's *identity* section (the digest input), so
        the envelope is independent of which engine executed it.
        """
        return {
            "schema": RESULT_SCHEMA,
            "kind": "report",
            "ok": self.ok,
            "spec": None if self.spec is None else self.spec.identity(),
            "spec_digest": None if self.spec is None else self.spec.digest(),
            "manifest": self.manifest,
            "metrics": self.metrics,
            "failures": list(self.failures),
            "replayed": list(self.replayed),
            "results": {
                experiment_id: {
                    "payload": result.to_dict(),
                    "render": result.render(),
                }
                for experiment_id, result in self.results.items()
            },
        }


@dataclass
class PointRun:
    """One executed sweep point: its coordinates, spec and report."""

    coords: Dict[str, int]
    spec: RunSpec
    report: ReportRun
    manifest_path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """The ``result/v1`` envelope for this point (kind ``point``)."""
        return {
            "schema": RESULT_SCHEMA,
            "kind": "point",
            "ok": self.report.ok,
            "coords": dict(self.coords),
            "spec_digest": self.spec.digest(),
            "manifest_path": self.manifest_path,
            "report": self.report.to_dict(),
        }


@dataclass
class SweepRun:
    """Everything one :func:`run_sweep` invocation produced.

    Attributes:
        spec: The swept spec as submitted.
        points: One :class:`PointRun` per grid point, in grid order.
        summary: The rendered summary table (also echoed).
        summary_path: Where the JSON summary was written, if anywhere.
        metrics: The whole sweep's metric delta.
    """

    spec: RunSpec
    points: List[PointRun] = field(default_factory=list)
    summary: str = ""
    summary_path: Optional[str] = None
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every point completed cleanly."""
        return all(point.report.ok for point in self.points)

    def to_dict(self) -> Dict[str, Any]:
        """The ``result/v1`` envelope for this sweep (kind ``sweep``)."""
        return {
            "schema": RESULT_SCHEMA,
            "kind": "sweep",
            "ok": self.ok,
            "spec": self.spec.identity(),
            "spec_digest": self.spec.digest(),
            "summary": self.summary,
            "summary_path": self.summary_path,
            "metrics": self.metrics,
            "points": [point.to_dict() for point in self.points],
        }


def write_result(
    run: Union[ReportRun, "SweepRun", PointRun], path: str
) -> None:
    """Write a run's ``result/v1`` envelope as canonical JSON.

    Canonical means key-sorted with 2-space indent -- the exact bytes
    the server stores and serves, so artefacts written here diff clean
    against ``GET /v1/runs/{id}`` responses.
    """
    with open(path, "w") as fh:
        json.dump(run.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def _install_sigterm_handler():
    """Convert SIGTERM into KeyboardInterrupt for the run's duration.

    A preempted/killed-by-timeout run then unwinds through the same
    cleanup as Ctrl-C: the scheduler reaps its workers and the journal
    keeps every experiment completed so far.  Only possible (and only
    attempted) in the main thread; returns the previous handler, or
    None if nothing was installed.
    """
    if threading.current_thread() is not threading.main_thread():
        return None

    def _handler(signum, frame):
        raise KeyboardInterrupt(f"signal {signum}")

    try:
        return signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):
        return None


def _validate_experiments(spec: RunSpec) -> None:
    known = set(EXPERIMENT_IDS) | set(EXTENSION_IDS)
    for experiment_id in spec.experiments:
        if experiment_id not in known:
            raise UnknownExperimentError(
                f"unknown experiment {experiment_id!r}; choose from "
                f"{sorted(known)}"
            )


@dataclass
class EngineSession:
    """Resolved engine state with an explicit lifecycle.

    A session owns every piece of execution machinery a run needs --
    the result cache, retry policy, fault injector, journal, and (for
    parallel sessions) a warm :class:`WorkerPool` -- resolved once from
    an :class:`EngineOptions` via :meth:`resolve`.  ``run_spec`` makes
    a throwaway session per call when none is passed; a long-lived
    caller (a sweep, the :mod:`repro.serve` daemon) resolves one
    session up front and passes it to every run so they all share the
    same warm cache, journal, and worker processes.

    Sessions are context managers; :meth:`close` is idempotent and
    drains the pool and closes the journal.
    """

    options: EngineOptions
    cache: Optional[ResultCache]
    jobs: int
    policy: RetryPolicy
    injector: Optional[FaultInjector]
    journal: Optional[RunJournal]
    resume: bool
    pool: Optional[WorkerPool] = None
    served_by: Optional[str] = None

    @classmethod
    def resolve(
        cls,
        options: EngineOptions,
        *,
        served_by: Optional[str] = None,
    ) -> "EngineSession":
        """Resolve options (env fallbacks included) into live state.

        All environment fallback goes through
        :meth:`EngineOptions.resolved` -- there is no other place where
        ``REPRO_CACHE_DIR`` / ``REPRO_JOBS`` / retry / fault variables
        are consulted.  ``served_by`` stamps manifests produced through
        this session (the server passes its instance id).
        """
        resolved = options.resolved()
        jobs = int(resolved.jobs)
        return cls(
            options=resolved,
            cache=ResultCache(resolved.cache_dir) if resolved.cache else None,
            jobs=jobs,
            policy=RetryPolicy.resolve(resolved.retries, resolved.task_timeout),
            injector=FaultInjector.from_spec(resolved.fault_spec),
            journal=(
                RunJournal(resolved.journal, fresh=not resolved.resume)
                if resolved.journal
                else None
            ),
            resume=resolved.resume,
            pool=WorkerPool(jobs) if jobs > 1 else None,
            served_by=served_by,
        )

    def close(self) -> None:
        if self.pool is not None:
            self.pool.drain()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.pool is not None:
            self.pool.drain(kill=exc_type is not None)
        if self.journal is not None:
            self.journal.close()


def _run_point(
    point_spec: RunSpec,
    coords: Dict[str, int],
    *,
    sims: tuple,
    engine: EngineSession,
    command: Optional[List[str]],
    say: Callable[[str], None],
    span_name: str = "report",
) -> ReportRun:
    """Execute one plan point through the instrumented engine.

    This is the body every entry point shares: build/prime labs for
    exactly the planned simulation tasks, replay journaled experiments
    under this point's run key, run the rest (a failing experiment
    becomes a structured failure, not a traceback), and assemble the
    manifest.  The caller owns TRACER lifetime, the SIGTERM handler,
    the journal's close, and all file outputs.
    """
    failures: List[Dict[str, Any]] = []
    replayed: List[str] = []
    requested = list(dict.fromkeys(point_spec.experiments))
    workload = point_spec.workload

    baseline = METRICS.snapshot()
    run_start = time.perf_counter()
    with TRACER.span(span_name, experiments=",".join(requested)):
        say("building workload traces...")
        build_start = time.perf_counter()
        labs = build_labs(
            workload.max_length,
            point_spec.config,
            workload.seed,
            jobs=engine.jobs,
            cache=engine.cache,
            policy=engine.policy,
            injector=engine.injector,
            failures=failures,
            tasks=sims,
            benchmarks=getattr(workload, "benchmarks", None),
            pool=engine.pool,
            chunk_branches=engine.options.chunk_branches,
            source=workload,
        )
        build_seconds = time.perf_counter() - build_start
        total = sum(len(lab.trace) for lab in labs.values())
        say(f"  {len(labs)} benchmarks, {total} dynamic branches")
        if engine.cache is not None:
            say(f"  cache: {engine.cache.root} ({engine.cache.stats.summary()})")
        say(f"  jobs: {engine.jobs}\n")

        key = spec_run_key(point_spec.input_digest(), labs)
        journaled = (
            engine.journal.load()
            if (engine.journal and engine.resume)
            else {}
        )

        results: Dict[str, ExperimentResult] = {}
        experiment_timings: List[dict] = []
        for experiment_id in requested:
            entry = journaled.get((experiment_id, key))
            if entry is not None:
                results[experiment_id] = ReplayedResult(
                    entry["payload"], entry["render"]
                )
                experiment_timings.append(
                    {"id": experiment_id, "seconds": 0.0}
                )
                replayed.append(experiment_id)
                METRICS.inc("resilience.replayed")
                say(f"{experiment_id}: replayed from journal\n")
                continue
            say(f"running {experiment_id}...")
            experiment_start = time.perf_counter()
            try:
                result = run_experiment(experiment_id, labs)
            except KeyboardInterrupt:
                raise
            except Exception as error:
                METRICS.inc("resilience.experiment_failures")
                failures.append({
                    "scope": "experiment",
                    "experiment_id": experiment_id,
                    "kind": "error",
                    "message": f"{type(error).__name__}: {error}",
                })
                say(
                    f"  {experiment_id} FAILED "
                    f"({type(error).__name__}: {error}); continuing\n"
                )
                continue
            experiment_timings.append({
                "id": experiment_id,
                "seconds": time.perf_counter() - experiment_start,
            })
            results[experiment_id] = result
            if engine.journal is not None:
                engine.journal.record(experiment_id, key, result)
            say(f"\n{result}\n")

    metrics_delta = METRICS.delta_since(baseline)
    manifest = build_manifest(
        command=command,
        config=point_spec.config,
        run_seed=workload.seed,
        max_length=workload.max_length,
        jobs=engine.jobs,
        cache_enabled=engine.cache is not None,
        cache_dir=str(engine.cache.root) if engine.cache is not None else None,
        chunk_branches=engine.options.chunk_branches,
        labs=labs,
        results=results,
        experiment_timings=experiment_timings,
        metrics=metrics_delta,
        timings={
            "build_labs_seconds": build_seconds,
            "total_seconds": time.perf_counter() - run_start,
        },
        resilience={
            "failures": failures,
            "resumed": bool(engine.resume),
            "replayed": replayed,
            "journal": (
                engine.journal.path if engine.journal is not None else None
            ),
        },
        spec_digest=point_spec.digest(),
        sweep=dict(coords) if coords else None,
        served_by=engine.served_by,
        trace_source={"kind": workload.kind, **workload.identity_dict()},
    )
    return ReportRun(
        results=results,
        labs=labs,
        manifest=manifest,
        metrics=metrics_delta,
        failures=failures,
        replayed=replayed,
        spec=point_spec,
    )


def run_spec(
    spec: RunSpec,
    *,
    json_out: Optional[str] = None,
    manifest_out: Optional[str] = None,
    result_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    trace_out: Optional[str] = None,
    manifest_dir: Optional[str] = None,
    summary_out: Optional[str] = None,
    command: Optional[List[str]] = None,
    echo: Optional[Callable[[str], None]] = None,
    engine: Optional[EngineSession] = None,
) -> Union[ReportRun, "SweepRun"]:
    """Execute a :class:`RunSpec` end to end.

    The spec is the single source of truth: what to simulate comes from
    its workload/config/experiments, how to execute from its engine
    options.  A swept spec is delegated to :func:`run_sweep` (the
    ``manifest_dir``/``summary_out`` arguments apply there; ``json_out``
    and ``manifest_out`` apply to plain runs).

    Args:
        spec: The run description (see :mod:`repro.spec`).
        json_out: Also export the results as JSON to this path.
        manifest_out: Write the run manifest JSON to this path.
        result_out: Write the ``result/v1`` envelope JSON to this path.
        metrics_out: Write the run's metric delta JSON to this path.
        trace_out: Write the run's Chrome-trace span JSON to this path.
        manifest_dir: Sweep runs: directory for per-point manifests.
        summary_out: Sweep runs: path for the JSON summary.
        command: The argv that launched the run, recorded in the
            manifest (None for library use).
        echo: Progress sink (e.g. ``print``); None runs silently.
        engine: A caller-owned :class:`EngineSession` to execute on.
            When given, the spec's engine section is ignored, no
            SIGTERM handler is installed, and the caller keeps the
            session open afterwards (server/sweep mode).  Default None
            resolves a session from ``spec.engine`` and closes it.

    Returns:
        A :class:`ReportRun` (plain spec) or :class:`SweepRun` (swept
        spec).

    Raises:
        UnknownExperimentError: On an unknown experiment id (a
            :class:`SpecError`, so ``except ValueError`` works too).
        SpecError: On a malformed fault spec, or hang faults without a
            task timeout.
    """
    if spec.sweep is not None:
        return run_sweep(
            spec,
            manifest_dir=manifest_dir,
            summary_out=summary_out,
            result_out=result_out,
            metrics_out=metrics_out,
            trace_out=trace_out,
            command=command,
            echo=echo,
            engine=engine,
        )
    say = echo if echo is not None else (lambda message: None)
    _validate_experiments(spec)
    owned = engine is None
    if owned:
        engine = EngineSession.resolve(spec.engine)
    plan = build_plan(spec)

    TRACER.reset()
    previous_sigterm = _install_sigterm_handler() if owned else None
    try:
        run = _run_point(
            spec,
            {},
            sims=plan.sim_task_names(0),
            engine=engine,
            command=command,
            say=say,
        )
    finally:
        # The journal appends durably as each experiment completes, so
        # an interrupt here loses nothing already finished.
        if owned:
            engine.close()
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)

    if json_out:
        from repro.experiments.export import export_results

        export_results(run.results, json_out)
        say(f"JSON results written to {json_out}")
    if manifest_out:
        write_manifest(run.manifest, manifest_out)
        say(f"run manifest written to {manifest_out}")
    if result_out:
        write_result(run, result_out)
        say(f"result envelope written to {result_out}")
    if metrics_out:
        _write_json(run.metrics, metrics_out)
        say(f"metrics written to {metrics_out}")
    if trace_out:
        TRACER.write(trace_out)
        say(f"span trace written to {trace_out}")
    if engine.cache is not None:
        say(f"cache: {engine.cache.stats.summary()}")
    if run.failures:
        say(
            f"run finished with {len(run.failures)} failure(s); see the "
            "manifest's resilience section"
        )
    return run


def _point_manifest_name(index: int, coords: Dict[str, int]) -> str:
    slug = "".join(
        f"_{name}-{value}" for name, value in sorted(coords.items())
    )
    return f"manifest_p{index}{slug}.json"


def _sweep_summary(spec: RunSpec, points: List[PointRun]) -> dict:
    return {
        "schema_version": 1,
        "kind": "repro.sweep_summary",
        "spec_digest": spec.digest(),
        "axes": (
            {} if spec.sweep is None
            else {name: list(values) for name, values in spec.sweep.axes}
        ),
        "points": [
            {
                "coords": dict(point.coords),
                "spec_digest": point.spec.digest(),
                "manifest": point.manifest_path,
                "experiments": sorted(point.report.results),
                "replayed": list(point.report.replayed),
                "failures": len(point.report.failures),
            }
            for point in points
        ],
    }


def _sweep_summary_table(spec: RunSpec, points: List[PointRun]) -> str:
    header = f"{'point':<7}{'coordinates':<40}{'spec digest':<34}{'ok':<4}"
    lines = [
        f"sweep of {len(points)} point(s), spec {spec.digest()}",
        header,
        "-" * len(header),
    ]
    for index, point in enumerate(points):
        where = (
            ", ".join(f"{k}={v}" for k, v in sorted(point.coords.items()))
            or "base config"
        )
        ok = "yes" if point.report.ok else f"{len(point.report.failures)}!"
        lines.append(
            f"{index:<7}{where:<40}{point.spec.digest():<34}{ok:<4}"
        )
    return "\n".join(lines)


def _write_json(payload: Any, path: str) -> None:
    import json as _json

    with open(path, "w") as fh:
        _json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_sweep(
    spec: RunSpec,
    *,
    manifest_dir: Optional[str] = None,
    summary_out: Optional[str] = None,
    result_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    trace_out: Optional[str] = None,
    command: Optional[List[str]] = None,
    echo: Optional[Callable[[str], None]] = None,
    engine: Optional[EngineSession] = None,
) -> SweepRun:
    """Execute a swept spec point by point over one shared engine.

    One plan is built for the whole grid; every point primes exactly
    its planned simulations against the *same* cache, so artefacts the
    sweep's axes don't touch (traces, unaffected predictors) are
    computed once and served as hits everywhere else -- the cache
    counters in each point's manifest show the sharing.  One journal
    (``spec.engine.journal``) checkpoints all points under per-point
    run keys, so ``resume`` finishes a killed sweep bit-identically.

    Args:
        spec: A spec with a non-None ``sweep``.
        manifest_dir: Directory for per-point manifests plus
            ``sweep_summary.json`` (created if missing; None writes no
            files).
        summary_out: Override path for the JSON summary.
        result_out: Write the sweep's ``result/v1`` envelope JSON here.
        metrics_out: Write the whole sweep's metric delta JSON here.
        trace_out: Write the whole sweep's Chrome-trace JSON here.
        command: The argv that launched the sweep.
        echo: Progress sink; None runs silently.
        engine: A caller-owned :class:`EngineSession` (see
            :func:`run_spec`); default None resolves one from
            ``spec.engine`` for the sweep's duration.

    Raises:
        SpecError: If the spec has no sweep.
        UnknownExperimentError: On an unknown experiment id.
    """
    if spec.sweep is None:
        raise SpecError("run_sweep requires a spec with a sweep section")
    say = echo if echo is not None else (lambda message: None)
    _validate_experiments(spec)
    owned = engine is None
    if owned:
        engine = EngineSession.resolve(spec.engine)
    plan = build_plan(spec)
    stats = plan.stats()
    say(
        f"sweep: {len(plan.points)} points, {stats['total']} planned tasks "
        f"({stats['deduped']} deduped across points)\n"
    )

    TRACER.reset()
    baseline = METRICS.snapshot()
    previous_sigterm = _install_sigterm_handler() if owned else None
    points: List[PointRun] = []
    try:
        with TRACER.span("sweep", points=str(len(plan.points))):
            for index, (coords, point_spec) in enumerate(plan.points):
                where = (
                    ", ".join(f"{k}={v}" for k, v in sorted(coords.items()))
                    or "base config"
                )
                say(f"=== point {index + 1}/{len(plan.points)}: {where} ===")
                run = _run_point(
                    point_spec,
                    coords,
                    sims=plan.sim_task_names(index),
                    engine=engine,
                    command=command,
                    say=say,
                    span_name="point",
                )
                manifest_path = None
                if manifest_dir:
                    os.makedirs(manifest_dir, exist_ok=True)
                    manifest_path = os.path.join(
                        manifest_dir, _point_manifest_name(index, coords)
                    )
                    write_manifest(run.manifest, manifest_path)
                    say(f"point manifest written to {manifest_path}\n")
                points.append(
                    PointRun(
                        coords=dict(coords),
                        spec=point_spec,
                        report=run,
                        manifest_path=manifest_path,
                    )
                )
    finally:
        if owned:
            engine.close()
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)

    summary = _sweep_summary_table(spec, points)
    say(summary + "\n")
    summary_path = summary_out
    if summary_path is None and manifest_dir:
        summary_path = os.path.join(manifest_dir, "sweep_summary.json")
    if summary_path:
        _write_json(_sweep_summary(spec, points), summary_path)
        say(f"sweep summary written to {summary_path}")

    metrics_delta = METRICS.delta_since(baseline)
    if metrics_out:
        _write_json(metrics_delta, metrics_out)
        say(f"metrics written to {metrics_out}")
    if trace_out:
        TRACER.write(trace_out)
        say(f"span trace written to {trace_out}")
    if engine.cache is not None:
        say(f"cache: {engine.cache.stats.summary()}")
    run = SweepRun(
        spec=spec,
        points=points,
        summary=summary,
        summary_path=summary_path,
        metrics=metrics_delta,
    )
    if result_out:
        write_result(run, result_out)
        say(f"result envelope written to {result_out}")
    return run

