"""The engine's exception hierarchy: one error surface, three mappings.

Five PRs of engine growth raised whatever was locally convenient --
``ValueError`` for bad specs, ``KeyError`` for unknown experiments,
``SystemExit`` from argument parsing -- which worked while the only
consumer was a CLI printing to stderr.  The serving layer
(:mod:`repro.serve`) needs errors that survive a wire boundary: a
client must be able to branch on *what went wrong* without parsing
prose.  This module is that contract:

* :class:`ReproError` -- the base.  Every subclass carries a stable
  machine-readable ``code`` (dotted, lowercase, never reused), the
  ``http_status`` the server maps it to, and the ``exit_code`` the CLI
  maps it to.  :meth:`ReproError.to_dict` is the JSON error body the
  server sends.
* :class:`SpecError` -- a malformed or rejected run description.  Also
  a ``ValueError``, so pre-taxonomy callers that caught ``ValueError``
  keep working.
* :class:`UnknownExperimentError` -- a spec names an experiment the
  registry does not know (the most common client mistake, so it gets
  its own code).
* :class:`PlanError` -- a well-formed spec that cannot be expanded into
  a sound task graph.
* :class:`EngineError` -- the engine itself failed (as opposed to the
  run finishing with recorded failures, which is a *result*, not an
  exception).
* :class:`AdmissionError` -- the server refused to enqueue a run
  (per-client in-flight limit, full queue).  HTTP 429; retriable by
  definition, and :attr:`AdmissionError.retry_after` says when.

Exit-code contract (the CLI's historical behaviour, now stated once):
0 clean, 1 finished-with-failures / engine error, 2 usage or spec
error, 130 interrupted.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Conventional exit code for a SIGINT/SIGTERM-terminated run.
EXIT_INTERRUPTED = 130


class ReproError(Exception):
    """Base class for every structured engine error.

    Attributes:
        code: Stable machine-readable identifier (``spec.invalid``,
            ``admission.queue_full``...).  Codes are append-only across
            releases: a code never changes meaning or disappears.
        http_status: The HTTP status the serving layer responds with.
        exit_code: The process exit code the CLI maps this error to.
    """

    code: str = "engine.error"
    http_status: int = 500
    exit_code: int = 1

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready error body (the server's wire format)."""
        return {
            "schema": "error/v1",
            "error": self.code,
            "message": str(self),
        }


class SpecError(ReproError, ValueError):
    """A spec document or spec construction is malformed.

    Subclasses ``ValueError`` so code written against the pre-taxonomy
    surface (``except ValueError``) still catches it.
    """

    code = "spec.invalid"
    http_status = 400
    exit_code = 2


class UnknownExperimentError(SpecError):
    """A spec names an experiment id the registry does not know."""

    code = "spec.unknown_experiment"


class PlanError(ReproError, ValueError):
    """A well-formed spec cannot be expanded into a sound plan."""

    code = "plan.invalid"
    http_status = 400
    exit_code = 2


class IngestError(ReproError, ValueError):
    """A foreign trace file was rejected by an importer.

    Raised with the offending ``path:line`` (text formats) or byte
    offset (binary formats) in the message, so a malformed trace is a
    usage error (exit 2), never a traceback.  Subclasses ``ValueError``
    so callers probing formats with ``except ValueError`` keep working.
    """

    code = "ingest.invalid"
    http_status = 400
    exit_code = 2


class EngineError(ReproError, RuntimeError):
    """The execution engine itself failed.

    Distinct from a run that *finishes* with recorded failures (that is
    a result, reported in the manifest's resilience section); an
    ``EngineError`` means no usable result was produced.
    """

    code = "engine.failed"
    http_status = 500
    exit_code = 1


class AdmissionError(ReproError):
    """The server refused to admit a run (limits, not correctness).

    Attributes:
        retry_after: Advisory seconds until the client should retry
            (sent as the HTTP ``Retry-After`` header when set).
    """

    code = "admission.rejected"
    http_status = 429
    exit_code = 1

    def __init__(
        self, message: str, *, code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.retry_after = retry_after

    def to_dict(self) -> Dict[str, Any]:
        payload = super().to_dict()
        if self.retry_after is not None:
            payload["retry_after"] = self.retry_after
        return payload


def error_from_payload(payload: Dict[str, Any]) -> ReproError:
    """Rehydrate a wire error body into the matching exception type.

    Used by :mod:`repro.client` so a server-side ``AdmissionError``
    raises as an ``AdmissionError`` client-side.  Unknown codes fall
    back to the nearest base class by prefix, then to
    :class:`EngineError`.
    """
    code = str(payload.get("error", ""))
    message = str(payload.get("message", code or "unknown server error"))
    if code == UnknownExperimentError.code:
        error: ReproError = UnknownExperimentError(message)
    elif code.startswith("spec."):
        error = SpecError(message)
    elif code.startswith("plan."):
        error = PlanError(message)
    elif code.startswith("ingest."):
        error = IngestError(message)
    elif code.startswith("admission."):
        error = AdmissionError(
            message, code=code, retry_after=payload.get("retry_after")
        )
    else:
        error = EngineError(message)
    error.code = code or error.code
    return error


__all__ = [
    "EXIT_INTERRUPTED",
    "AdmissionError",
    "EngineError",
    "IngestError",
    "PlanError",
    "ReproError",
    "SpecError",
    "UnknownExperimentError",
    "error_from_payload",
]
