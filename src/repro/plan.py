"""Plan: the explicit task graph a :class:`~repro.spec.RunSpec` implies.

A spec says *what* to compute; a plan says *which tasks* that takes.
:func:`build_plan` expands a spec -- every sweep point included -- into
a DAG of four task kinds:

``trace``
    Generate one benchmark trace (name, scale anchor, seed).
``sim``
    Simulate one predictor task over one trace.  Only the tasks the
    point's experiments declared via ``register(..., requires=)`` are
    planned; experiments without a declaration conservatively pull the
    full default set.
``experiment``
    Run one registered experiment over the point's primed labs.
``render``
    Materialise one point's report/manifest from its experiment
    results.

Tasks carry content keys -- the same digests the result cache and
journal use -- and the planner dedupes by them *across sweep points*:
a trace is generated once per (name, length, seed) no matter how many
points share it, and a sim whose config projection
(:func:`repro.analysis.config.task_config_key`) is unaffected by the
swept fields collapses onto the first point's task.  The deduped task
records its ``deduped_from`` so tooling can show where the sharing
happens; executors simply skip duplicates and let the shared cache
entry serve every point.

The executor (:func:`repro.api.run_spec`) consumes the plan per point:
``sim_task_names(point)`` feeds ``prime_labs(tasks=...)`` so the
existing supervisor -- scheduling, caching, retries, fault injection,
journaling -- runs exactly the planned work.  ``repro plan spec.json``
prints :meth:`Plan.describe` without executing anything.

When the spec's engine options set ``chunk_branches``, each *chunkable*
sim task (:data:`repro.analysis.streamed.CHUNKABLE_TASKS`) over a trace
longer than the window expands into per-chunk tasks
(``p0/sim/gcc/gshare/c0`` .. ``c{K-1}``), each depending on its
predecessor chunk -- the carried predictor state makes the fold
sequential within a (benchmark, task) lane -- while distinct lanes stay
independent, which is exactly the parallelism the chunk scheduler
exploits.  Downstream experiment tasks depend on each lane's final
chunk, the task whose completion materialises the whole-trace bitmap.
Chunking is an execution knob, not identity: chunk task keys embed the
window so cross-point dedup stays sound, but the artefact a full lane
produces is bit-identical (PC011) to the unchunked task's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.config import task_config_key
from repro.errors import PlanError, UnknownExperimentError
from repro.spec import RunSpec

#: Task kinds in dependency order.
TASK_KINDS = ("trace", "sim", "experiment", "render")

# PlanError (re-exported here for its historical import path) is raised
# by :func:`build_plan` when an experiment's ``requires=`` declaration
# names a task outside the plannable set -- the runtime mirror of the
# static DS003 diagnostic.  Without this the bad name survives until a
# worker's ``compute_task`` raises ``KeyError`` mid-run (or never, if
# the point is cache-hit).
__all__ = ["Plan", "PlanError", "PlanTask", "TASK_KINDS", "build_plan"]


@dataclass(frozen=True)
class PlanTask:
    """One node of the plan DAG.

    Attributes:
        id: Unique within the plan (``p0/sim/gcc/gshare``).
        kind: One of :data:`TASK_KINDS`.
        point: Index of the sweep point this task belongs to (0 for a
            plain run).
        key: Content key; two tasks with equal keys compute the same
            artefact (the dedup criterion).
        deps: Ids of tasks that must complete first.
        benchmark: Benchmark name (trace/sim tasks).
        task: Simulation task name (sim tasks).
        experiment_id: Experiment id (experiment tasks).
        deduped_from: Id of the earlier task this one shares its
            artefact with, or None if it is the first of its key.
        chunk: Chunk index within a streamed sim lane (None for a
            whole-trace sim task).
        num_chunks: Total chunks in this task's lane (None when
            unchunked).
    """

    id: str
    kind: str
    point: int
    key: str
    deps: Tuple[str, ...] = ()
    benchmark: Optional[str] = None
    task: Optional[str] = None
    experiment_id: Optional[str] = None
    deduped_from: Optional[str] = None
    chunk: Optional[int] = None
    num_chunks: Optional[int] = None


@dataclass(frozen=True)
class Plan:
    """The full task graph for a spec, points expanded in grid order."""

    spec: RunSpec
    points: Tuple[Tuple[Dict[str, int], RunSpec], ...]
    tasks: Tuple[PlanTask, ...]
    _by_id: Dict[str, PlanTask] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self):
        object.__setattr__(
            self, "_by_id", {task.id: task for task in self.tasks}
        )

    def task_by_id(self, task_id: str) -> PlanTask:
        return self._by_id[task_id]

    def point_tasks(self, point: int) -> List[PlanTask]:
        return [task for task in self.tasks if task.point == point]

    def sim_task_names(self, point: int) -> Tuple[str, ...]:
        """Simulation task names point ``point`` needs, in plan order.

        Includes deduped tasks: the point still *needs* the artefact,
        it just expects to find it in the shared cache.
        """
        seen = []
        for task in self.tasks:
            if task.kind == "sim" and task.point == point:
                if task.task not in seen:
                    seen.append(task.task)
        return tuple(seen)

    def stats(self) -> Dict[str, int]:
        """Task counts per kind, plus how many were deduped away."""
        counts = {kind: 0 for kind in TASK_KINDS}
        deduped = 0
        for task in self.tasks:
            counts[task.kind] += 1
            if task.deduped_from is not None:
                deduped += 1
        counts["total"] = len(self.tasks)
        counts["deduped"] = deduped
        return counts

    def describe(self) -> str:
        """A human-readable dump of the graph (``repro plan``)."""
        lines = []
        stats = self.stats()
        lines.append(
            f"plan for spec {self.spec.digest()}: "
            f"{len(self.points)} point(s), {stats['total']} tasks "
            f"({stats['trace']} trace, {stats['sim']} sim, "
            f"{stats['experiment']} experiment, {stats['render']} render; "
            f"{stats['deduped']} deduped)"
        )
        for index, (coords, point_spec) in enumerate(self.points):
            where = (
                ", ".join(f"{k}={v}" for k, v in sorted(coords.items()))
                or "base config"
            )
            lines.append(
                f"  point {index} [{where}] spec {point_spec.digest()}"
            )
            for task in self.point_tasks(index):
                suffix = (
                    f"  (dedup -> {task.deduped_from})"
                    if task.deduped_from
                    else ""
                )
                deps = f"  deps={len(task.deps)}" if task.deps else ""
                lines.append(f"    {task.kind:<10} {task.id}{deps}{suffix}")
        return "\n".join(lines)


def build_plan(spec: RunSpec) -> Plan:
    """Expand a spec into its deduped task graph.

    Expansion is deterministic: benchmarks in suite order, simulation
    tasks in default-scheduler order, experiments in spec order, points
    in grid order.  Dedup is by content key, first occurrence wins.

    Raises:
        UnknownExperimentError: If the spec names an unregistered
            experiment.
        PlanError: If a named experiment's ``requires=`` declaration
            contains a task outside :data:`DEFAULT_TASKS` (nothing
            could ever prime it).
    """
    from repro.analysis.parallel import DEFAULT_TASKS
    from repro.analysis.streamed import CHUNKABLE_TASKS
    from repro.experiments.base import experiment_requires
    from repro.trace.stream import chunk_spans, normalize_chunk_branches
    from repro.workloads.suite import scaled_length

    for experiment_id in spec.experiments:
        try:
            required = experiment_requires(experiment_id)
        except KeyError as error:
            raise UnknownExperimentError(error.args[0]) from None
        bad = [name for name in required if name not in DEFAULT_TASKS]
        if bad:
            raise PlanError(
                f"experiment {experiment_id!r} declares requires= task(s) "
                f"{', '.join(map(repr, sorted(bad)))} outside the "
                f"plannable set ({', '.join(DEFAULT_TASKS)}); selective "
                "products are derived from 'correlation' -- declare that "
                "instead"
            )

    points = tuple(spec.expand_points())
    benchmarks = spec.workload.trace_names()
    chunk_branches = (
        None
        if spec.engine.chunk_branches is None
        else normalize_chunk_branches(spec.engine.chunk_branches)
    )
    tasks: List[PlanTask] = []
    first_by_key: Dict[str, str] = {}

    def add(task: PlanTask) -> PlanTask:
        if task.key in first_by_key and task.deduped_from is None:
            task = PlanTask(
                **{**task.__dict__, "deduped_from": first_by_key[task.key]}
            )
        first_by_key.setdefault(task.key, task.id)
        tasks.append(task)
        return task

    for index, (coords, point_spec) in enumerate(points):
        prefix = f"p{index}"
        workload = point_spec.workload
        # Every task the point's experiments declared, ordered like the
        # scheduler's default set (unknown/selective names keep their
        # declaration order at the end).
        needed: List[str] = []
        for experiment_id in point_spec.experiments:
            for name in experiment_requires(experiment_id):
                if name not in needed:
                    needed.append(name)
        needed.sort(
            key=lambda name: (
                DEFAULT_TASKS.index(name)
                if name in DEFAULT_TASKS
                else len(DEFAULT_TASKS)
            )
        )

        # Per-point source identity: "" keeps the legacy key bytes (the
        # dedup anchor across mix-swept points whose mix does not touch
        # this benchmark); a mix signature or a content digest forks it.
        def source_key(name: str) -> str:
            identity = workload.trace_identity(name)
            if workload.kind == "imported":
                return f"{name}|{identity}"
            base = f"{name}|{workload.max_length}|{workload.seed}"
            return f"{base}|{identity}" if identity else base

        trace_ids = {}
        for name in benchmarks:
            trace_key = f"trace|{source_key(name)}"
            task = add(
                PlanTask(
                    id=f"{prefix}/trace/{name}",
                    kind="trace",
                    point=index,
                    key=trace_key,
                    benchmark=name,
                )
            )
            trace_ids[name] = task.id

        sim_ids: List[str] = []
        for task_name in needed:
            for name in benchmarks:
                sim_key = (
                    f"sim|{source_key(name)}"
                    f"|{task_config_key(task_name, point_spec.config)}"
                )
                if workload.kind == "imported":
                    # Chunk-span planning needs a branch count before the
                    # file is opened; undeclared lengths plan unchunked
                    # (the executor still streams bounded windows).
                    length = workload.entry(name).branches
                else:
                    length = scaled_length(name, workload.max_length)
                spans = (
                    chunk_spans(length, chunk_branches)
                    if chunk_branches is not None
                    and task_name in CHUNKABLE_TASKS
                    and length is not None
                    and length > chunk_branches
                    else []
                )
                if len(spans) > 1:
                    # One task per window, chained: chunk k resumes from
                    # the carried state chunk k-1 wrote back.  The lane's
                    # final chunk is the artefact downstream tasks need.
                    previous = trace_ids[name]
                    for chunk_index in range(len(spans)):
                        task = add(
                            PlanTask(
                                id=(
                                    f"{prefix}/sim/{name}/{task_name}"
                                    f"/c{chunk_index}"
                                ),
                                kind="sim",
                                point=index,
                                key=(
                                    f"{sim_key}|chunk={chunk_index}"
                                    f"/{len(spans)}@{chunk_branches}"
                                ),
                                deps=(trace_ids[name], previous)
                                if chunk_index
                                else (trace_ids[name],),
                                benchmark=name,
                                task=task_name,
                                chunk=chunk_index,
                                num_chunks=len(spans),
                            )
                        )
                        previous = task.id
                    sim_ids.append(previous)
                else:
                    task = add(
                        PlanTask(
                            id=f"{prefix}/sim/{name}/{task_name}",
                            kind="sim",
                            point=index,
                            key=sim_key,
                            deps=(trace_ids[name],),
                            benchmark=name,
                            task=task_name,
                        )
                    )
                    sim_ids.append(task.id)

        experiment_ids = []
        for experiment_id in point_spec.experiments:
            required = experiment_requires(experiment_id)
            deps = tuple(
                task_id
                for task_id in sim_ids
                if tasks_by_id_task(task_id) in required
            ) or tuple(trace_ids.values())
            task = add(
                PlanTask(
                    id=f"{prefix}/experiment/{experiment_id}",
                    kind="experiment",
                    point=index,
                    # Experiments rerun per point even when every input
                    # is shared: the key includes the point digest.
                    key=f"experiment|{experiment_id}|{point_spec.digest()}",
                    deps=deps,
                    experiment_id=experiment_id,
                )
            )
            experiment_ids.append(task.id)

        add(
            PlanTask(
                id=f"{prefix}/render",
                kind="render",
                point=index,
                key=f"render|{point_spec.digest()}",
                deps=tuple(experiment_ids),
            )
        )

    return Plan(spec=spec, points=points, tasks=tuple(tasks))


def tasks_by_id_task(task_id: str) -> str:
    """The simulation task name embedded in a sim task id.

    Chunk tasks (``.../gshare/c3``) report their lane's task name, not
    the chunk segment.
    """
    parts = task_id.rsplit("/", 2)
    last = parts[-1]
    if len(parts) > 1 and len(last) > 1 and last[0] == "c" and last[1:].isdigit():
        return parts[-2]
    return last
