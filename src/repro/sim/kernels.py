"""Vectorised whole-trace kernels for per-address predictors.

The scalar predict/update loop costs a few microseconds of Python per
dynamic branch.  For predictors whose state is partitioned by address --
interference-free PAs, the loop and block-pattern predictors,
fixed-length patterns, address-indexed counter tables -- the trace can
instead be grouped by static branch once (one stable ``np.argsort``) and
each group simulated with run-length and shift arithmetic:

* A **saturating counter** driven by one branch's outcome runs is wrong
  for a computable *prefix* of every run (``threshold - counter`` steps
  of a taken run, symmetrically for not-taken), so a whole run collapses
  to one closed-form update.
* The **loop** and **block-pattern** predictors are defined in terms of
  outcome runs, so run-length encoding *is* their natural time base:
  each run is O(1) state-machine work regardless of its length.
* A **fixed-length-k pattern** prediction is a k-shifted comparison of
  the branch's own outcome column.

Every kernel is exact: it consumes the predictor's current state
(fresh or previously trained), produces the bit-identical correctness
bitmap of the scalar loop, and writes the final state back so chained
``simulate()`` calls keep training, just as the scalar loop would.
Equivalence is enforced by the PC009 contract check
(:func:`repro.check.contracts.run_contract_suite`) and by the property
tests in ``tests/test_sim_kernels.py``.

Kernels intentionally reach into their predictor's private state; they
are the other half of each predictor's implementation, kept here so the
scalar semantics in ``repro.predictors`` stay readable on their own.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.obs.metrics import METRICS
from repro.trace.trace import Trace

__all__ = [
    "simulate_bimodal",
    "simulate_block_pattern",
    "simulate_fixed_pattern",
    "simulate_if_pas",
    "simulate_loop",
]


# -- shared run-length machinery ------------------------------------------


def _runs(outcomes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run-length encode a boolean outcome sequence.

    Returns ``(directions, lengths, starts)``: one entry per maximal run
    of equal outcomes, in order.
    """
    m = len(outcomes)
    change = np.nonzero(outcomes[1:] != outcomes[:-1])[0] + 1
    starts = np.concatenate(([0], change))
    lengths = np.diff(np.concatenate((starts, [m])))
    return outcomes[starts], lengths, starts


def _counter_chain(
    directions: np.ndarray,
    lengths: np.ndarray,
    counter: int,
    threshold: int,
    counter_max: int,
) -> Tuple[np.ndarray, int]:
    """Drive one saturating counter through a chain of outcome runs.

    For each run, the counter mispredicts a prefix of the run and is
    correct for the remainder: a taken run starting at counter ``c`` is
    wrong for ``threshold - c`` steps (the counter climbs one per step),
    a not-taken run for ``c - threshold + 1`` steps.  Returns the
    per-run wrong-prefix lengths (>= 0, uncapped) and the final counter.
    """
    wrongs = np.empty(len(lengths), dtype=np.int64)
    position = 0
    for direction, length in zip(directions.tolist(), lengths.tolist()):
        if direction:
            wrong = threshold - counter
            counter += length
            if counter > counter_max:
                counter = counter_max
        else:
            wrong = counter - threshold + 1
            counter -= length
            if counter < 0:
                counter = 0
        wrongs[position] = wrong if wrong > 0 else 0
        position += 1
    return wrongs, counter


def _wrong_prefix_fill(
    starts: np.ndarray, lengths: np.ndarray, wrongs: np.ndarray, total: int
) -> np.ndarray:
    """Correctness bitmap where run ``r`` is wrong for its first
    ``wrongs[r]`` positions and correct afterwards."""
    position_in_run = np.arange(total, dtype=np.int64) - np.repeat(
        starts, lengths
    )
    return position_in_run >= np.repeat(np.minimum(wrongs, lengths), lengths)


def _group_slices(
    keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stable-sort ``keys``; return (order, sorted_keys, starts, ends)."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(keys)]))
    return order, sorted_keys, starts, ends


# -- address-indexed counter table (bimodal) ------------------------------


def simulate_bimodal(predictor, trace: Trace) -> np.ndarray:
    """Kernel for :class:`~repro.predictors.bimodal.BimodalPredictor`.

    Branches aliasing to the same table index share a counter, so the
    trace is grouped by *index* (not raw pc): each group is one
    independent counter chain.
    """
    METRICS.inc("sim.kernel_fastpath")
    n = len(trace)
    correct = np.zeros(n, dtype=bool)
    if n == 0:
        return correct
    table = predictor._table
    raw = table.raw
    threshold = table.threshold
    counter_max = table.max_value
    indices = np.bitwise_and(
        trace.pc >> np.uint64(2), np.uint64(predictor._mask)
    ).astype(np.int64)
    order, sorted_indices, starts, ends = _group_slices(indices)
    sorted_taken = trace.taken[order]
    correct_sorted = np.empty(n, dtype=bool)
    for gs, ge in zip(starts.tolist(), ends.tolist()):
        key = int(sorted_indices[gs])
        directions, lengths, run_starts = _runs(sorted_taken[gs:ge])
        wrongs, end = _counter_chain(
            directions, lengths, int(raw[key]), threshold, counter_max
        )
        correct_sorted[gs:ge] = _wrong_prefix_fill(
            run_starts, lengths, wrongs, ge - gs
        )
        raw[key] = end
    correct[order] = correct_sorted
    return correct


# -- interference-free PAs ------------------------------------------------


def simulate_if_pas(predictor, trace: Trace) -> np.ndarray:
    """Kernel for
    :class:`~repro.predictors.interference_free.InterferenceFreePAs`.

    Per branch: the history register before instance ``i`` is just the
    branch's own previous ``h`` outcomes bit-packed (computed with ``h``
    shifted ORs), so instances group by pattern, and each (branch,
    pattern) group is one independent saturating-counter chain.
    """
    METRICS.inc("sim.kernel_fastpath")
    n = len(trace)
    correct = np.zeros(n, dtype=bool)
    history_bits = predictor._history_bits
    history_mask = predictor._history_mask
    counter_max = predictor._counter_max
    threshold = predictor._threshold
    initial = predictor._initial
    histories = predictor._histories
    phts = predictor._phts
    taken = trace.taken
    for pc, indices in trace.indices_by_pc().items():
        outcomes = taken[indices]
        m = len(outcomes)
        bits = outcomes.astype(np.int64)
        initial_history = histories.get(pc, 0)
        # history before instance i: the branch's previous history_bits
        # outcomes, newest in bit 0; carried register bits shift out.
        patterns = np.zeros(m, dtype=np.int64)
        for j in range(1, min(history_bits, m) + 1):
            patterns[j:] |= bits[:-j] << (j - 1)
        if initial_history:
            for i in range(min(history_bits, m)):
                patterns[i] |= (initial_history << i) & history_mask
        pht = phts.get(pc)
        if pht is None:
            pht = {}
            phts[pc] = pht
        order, sorted_patterns, starts, ends = _group_slices(patterns)
        branch_correct = np.empty(m, dtype=bool)
        outcome_list = outcomes.tolist()
        for gs, ge in zip(starts.tolist(), ends.tolist()):
            pattern = int(sorted_patterns[gs])
            member_positions = order[gs:ge]
            if ge - gs <= 32:
                # Tiny pattern group: a direct counter loop beats the
                # fixed per-group cost of the numpy machinery.
                value = pht.get(pattern, initial)
                for position in member_positions.tolist():
                    outcome = outcome_list[position]
                    branch_correct[position] = (value >= threshold) == outcome
                    if outcome:
                        if value < counter_max:
                            value += 1
                    elif value > 0:
                        value -= 1
                pht[pattern] = value
                continue
            directions, lengths, run_starts = _runs(outcomes[member_positions])
            wrongs, end = _counter_chain(
                directions, lengths, pht.get(pattern, initial),
                threshold, counter_max,
            )
            branch_correct[member_positions] = _wrong_prefix_fill(
                run_starts, lengths, wrongs, ge - gs
            )
            pht[pattern] = end
        correct[indices] = branch_correct
        histories[pc] = (
            (int(patterns[m - 1]) << 1) | int(bits[m - 1])
        ) & history_mask
    return correct


# -- loop predictor -------------------------------------------------------


def simulate_loop(predictor, trace: Trace) -> np.ndarray:
    """Kernel for :class:`~repro.predictors.loop.LoopPredictor`.

    The loop predictor's state machine advances on direction *changes*,
    so run-length encoding each branch's outcome column reduces every
    run -- however long -- to O(1) closed-form work:

    * a run matching the direction bit is predicted correctly while the
      run counter is below the expected trip count (all of it when the
      trip count is unknown/saturated);
    * a run opposing the direction bit is the exit prediction (correct
      iff the trip count had been learned), followed -- if it repeats --
      by one misprediction and a direction-bit flip.
    """
    METRICS.inc("sim.kernel_fastpath")
    from repro.predictors.loop import MAX_TRIP_COUNT, _LoopEntry

    n = len(trace)
    correct = np.zeros(n, dtype=bool)
    entries = predictor._entries
    taken = trace.taken
    for pc, indices in trace.indices_by_pc().items():
        outcomes = taken[indices]
        m = len(outcomes)
        branch_correct = np.empty(m, dtype=bool)
        directions, lengths, starts = _runs(outcomes)
        entry = entries.get(pc)
        first_run_offset = 0
        if entry is None:
            # Unseen branch: the first prediction is the taken fallback,
            # then the entry trains from that first outcome.
            branch_correct[0] = bool(outcomes[0])
            entry = _LoopEntry(bool(outcomes[0]))
            entries[pc] = entry
            first_run_offset = 1
        direction = entry.direction
        expected = entry.expected
        run_length = entry.run_length
        streak = entry.opposite_streak
        for r, (d, length, start) in enumerate(
            zip(directions.tolist(), lengths.tolist(), starts.tolist())
        ):
            if r == 0 and first_run_offset:
                start += 1
                length -= 1
                if length == 0:
                    continue
            end = start + length
            if d == direction:
                # Body-direction run: correct while run_length < expected.
                if expected >= MAX_TRIP_COUNT:
                    prefix = length
                else:
                    prefix = min(max(expected - run_length, 0), length)
                branch_correct[start:start + prefix] = True
                branch_correct[start + prefix:end] = False
                run_length = min(run_length + length, MAX_TRIP_COUNT)
                streak = 0
            else:
                # Exit-direction run.  The first outcome is the loop
                # exit: predicted iff the trip count had been learned
                # and reached.  A second consecutive exit outcome means
                # the direction bit is wrong: one more misprediction
                # (unless the expected count was 0), then the bit flips
                # and the rest of the run matches the new direction.
                branch_correct[start] = (
                    expected < MAX_TRIP_COUNT and run_length >= expected
                )
                if streak == 1:
                    # A carried-over exit outcome: this one makes two.
                    direction = d
                    expected = MAX_TRIP_COUNT
                    run_length = min(length + 1, MAX_TRIP_COUNT)
                    streak = 0
                    branch_correct[start + 1:end] = True
                elif length == 1:
                    expected = run_length
                    run_length = 0
                    streak = 1
                else:
                    branch_correct[start + 1] = run_length == 0
                    branch_correct[start + 2:end] = True
                    direction = d
                    expected = MAX_TRIP_COUNT
                    run_length = min(length, MAX_TRIP_COUNT)
                    streak = 0
        entry.direction = direction
        entry.expected = expected
        entry.run_length = run_length
        entry.opposite_streak = streak
        correct[indices] = branch_correct
    return correct


# -- block-pattern predictor ----------------------------------------------


def simulate_block_pattern(predictor, trace: Trace) -> np.ndarray:
    """Kernel for :class:`~repro.predictors.pattern.BlockPatternPredictor`.

    Like the loop kernel: the block predictor tracks the previous run
    length of each direction, so RLE runs are its native time base.  A
    run in the current direction is predicted correctly while the run
    counter is below that direction's previous run length; a direction
    change is predicted correctly iff the completed run matched it.
    """
    METRICS.inc("sim.kernel_fastpath")
    from repro.predictors.pattern import MAX_RUN_LENGTH, _BlockEntry

    n = len(trace)
    correct = np.zeros(n, dtype=bool)
    entries = predictor._entries
    taken = trace.taken
    for pc, indices in trace.indices_by_pc().items():
        outcomes = taken[indices]
        m = len(outcomes)
        branch_correct = np.empty(m, dtype=bool)
        directions, lengths, starts = _runs(outcomes)
        entry = entries.get(pc)
        first_run_offset = 0
        if entry is None:
            branch_correct[0] = bool(outcomes[0])  # taken fallback
            entry = _BlockEntry(bool(outcomes[0]))
            entries[pc] = entry
            first_run_offset = 1
        current = entry.current_direction
        run_length = entry.run_length
        previous = entry.previous_run
        for r, (d, length, start) in enumerate(
            zip(directions.tolist(), lengths.tolist(), starts.tolist())
        ):
            if r == 0 and first_run_offset:
                start += 1
                length -= 1
                if length == 0:
                    continue
            end = start + length
            if d != current:
                # Direction change: predicted iff the completed run had
                # reached the previous length of its direction.
                branch_correct[start] = run_length >= previous[current]
                previous[current] = run_length
                current = d
                run_length = 1
                start += 1
                length -= 1
            # Same-direction steps: correct while the run counter is
            # below this direction's previous run length.
            if length:
                prefix = min(max(previous[current] - run_length, 0), length)
                branch_correct[start:start + prefix] = True
                branch_correct[start + prefix:end] = False
                run_length = min(run_length + length, MAX_RUN_LENGTH)
        entry.current_direction = current
        entry.run_length = run_length
        correct[indices] = branch_correct
    return correct


# -- fixed-length pattern predictor ---------------------------------------


def simulate_fixed_pattern(predictor, trace: Trace) -> np.ndarray:
    """Kernel for
    :class:`~repro.predictors.pattern.FixedLengthPatternPredictor`.

    Prediction ``i`` of a branch is its own outcome ``k`` executions
    ago (taken while fewer than ``k`` outcomes have been seen): a
    shifted self-comparison of the branch's outcome column.
    """
    METRICS.inc("sim.kernel_fastpath")
    k = predictor._k
    state = predictor._state
    n = len(trace)
    correct = np.zeros(n, dtype=bool)
    taken = trace.taken
    for pc, indices in trace.indices_by_pc().items():
        outcomes = taken[indices]
        m = len(outcomes)
        carried = state.get(pc)
        if carried is None:
            seen = 0
            previous = np.zeros(0, dtype=bool)
        else:
            ring, position, seen = carried
            if seen >= k:
                chronological = ring[position:] + ring[:position]
            else:
                chronological = ring[:seen]
            previous = np.asarray(chronological, dtype=bool)
        p = len(previous)  # == min(seen, k)
        extended = np.concatenate((previous, outcomes))
        branch_correct = np.empty(m, dtype=bool)
        fallback = min(max(k - p, 0), m)  # instances predicted "taken"
        branch_correct[:fallback] = outcomes[:fallback]
        if m > fallback:
            branch_correct[fallback:] = (
                outcomes[fallback:] == extended[p + fallback - k:p + m - k]
            )
        correct[indices] = branch_correct
        total = seen + m
        ring = [False] * k
        if total >= k:
            tail = extended[-k:]
            position = total % k
            for j in range(k):
                ring[(position + j) % k] = bool(tail[j])
        else:
            position = total
            for j in range(total):
                ring[j] = bool(extended[j])
        state[pc] = (ring, position % k, total)
    return correct
