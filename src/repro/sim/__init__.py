"""Simulation engine: vectorised whole-trace kernels.

Two kernel families, both bit-identical to the scalar predict/update
loop (the ``repro check`` contract pass and the property tests in
``tests/test_sim_kernels*.py`` enforce it):

* :mod:`repro.sim.kernels` -- per-address predictors (interference-free
  PAs, the loop and pattern predictors, address-indexed counters) carry
  no cross-branch state, so the trace is grouped by address once and
  each static branch's outcome sub-sequence is simulated with numpy
  run-length and shift tricks.
* :mod:`repro.sim.kernels_global` -- the two-level global-history family
  (gshare, GAs, PAs, GAg, PAg) and the selective-history replay share
  state across branches, but their state evolution depends only on trace
  outcomes, so every PHT index is precomputable: pack the history
  streams, group by index, and run each counter cell as an independent
  run-length chain.

:data:`KERNEL_BINDINGS` maps every exported kernel to the
``repro.tools`` registry spec whose predictor exercises it; the PC010
audit (:func:`repro.check.contracts.check_kernel_bindings`) fails
``python -m repro check`` when a kernel is missing from this map, so no
fast path can ship without the PC009 dynamic equivalence check covering
it.
"""

from repro.sim.fold import fold_correct_count, fold_simulate
from repro.sim.kernels import (
    simulate_bimodal,
    simulate_block_pattern,
    simulate_fixed_pattern,
    simulate_if_pas,
    simulate_loop,
)
from repro.sim.kernels_global import (
    simulate_gas,
    simulate_gshare,
    simulate_pas,
    simulate_selective,
)

#: Kernel name -> ``repro.tools.PREDICTOR_REGISTRY`` spec whose default
#: instance routes ``simulate()`` through that kernel.  The contract
#: pass replays every registry entry (PC009), so a binding here is what
#: puts a kernel under dynamic bit-identity enforcement; PC010 rejects
#: exported kernels with no binding and stale bindings alike.  GAg and
#: PAg ride the gas/pas kernels as zero-select-bit subclasses and are
#: checked through their own registry entries.
KERNEL_BINDINGS = {
    "simulate_bimodal": "bimodal",
    "simulate_block_pattern": "block",
    "simulate_fixed_pattern": "fixed",
    "simulate_gas": "gas",
    "simulate_gshare": "gshare",
    "simulate_if_pas": "if-pas",
    "simulate_loop": "loop",
    "simulate_pas": "pas",
    "simulate_selective": "selective",
}

__all__ = [
    "KERNEL_BINDINGS",
    "fold_correct_count",
    "fold_simulate",
    "simulate_bimodal",
    "simulate_block_pattern",
    "simulate_fixed_pattern",
    "simulate_gas",
    "simulate_gshare",
    "simulate_if_pas",
    "simulate_loop",
    "simulate_pas",
    "simulate_selective",
]
