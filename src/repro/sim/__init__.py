"""Simulation engine: vectorised per-address kernels.

Per-address predictors (interference-free PAs, the loop and pattern
predictors, address-indexed counters) carry no cross-branch state: the
prediction stream of one static branch depends only on that branch's own
outcome sub-sequence.  :mod:`repro.sim.kernels` exploits this by grouping
the trace by address once and simulating each group with numpy
run-length and shift tricks instead of a per-dynamic-branch Python loop.
Every kernel is bit-identical to the scalar predict/update loop; the
``repro check`` contract pass (PC009) and the property tests in
``tests/test_sim_kernels.py`` enforce it.
"""

from repro.sim.kernels import (
    simulate_bimodal,
    simulate_block_pattern,
    simulate_fixed_pattern,
    simulate_if_pas,
    simulate_loop,
)

__all__ = [
    "simulate_bimodal",
    "simulate_block_pattern",
    "simulate_fixed_pattern",
    "simulate_if_pas",
    "simulate_loop",
]
