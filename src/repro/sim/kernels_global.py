"""Vectorised whole-trace kernels for the two-level global-history family.

The per-address kernels in :mod:`repro.sim.kernels` rely on state being
partitioned by static branch.  The Yeh/Patt two-level predictors (gshare,
GAs, PAs, GAg, PAg) and the selective-history predictor share state
across branches -- a global history register, an aliased branch history
table, a shared PHT -- so they cannot be grouped by pc.  They still
vectorise exactly, because of a stronger property: **two-level state
evolution depends only on trace outcomes, never on predictions.**  The
history register (global or per-BHT-entry) is a pure function of the
outcome stream, so the PHT index of every dynamic branch is precomputable
before any counter is consulted:

1. derive the history register value before every step with bit-packed
   shifted ORs over ``trace.taken`` (per BHT entry for PAs/PAg, honouring
   address aliasing);
2. compute the full index stream as arrays -- ``(history ^ pc) & mask``
   for gshare, ``select * 2**history_bits + history`` for the
   PHT-per-address-set variants;
3. group the trace by index (one stable argsort) -- each PHT counter cell
   is now an independent saturating-counter chain, collapsed with the
   per-run wrong-prefix closed form of :mod:`repro.sim.kernels`, driven
   by a single flat loop over *runs* (not branches) across all cells.

Every kernel is exact: it consumes the predictor's current state, returns
the bit-identical correctness bitmap of the scalar predict/update loop,
and writes the final history/BHT/PHT state back so chained ``simulate()``
calls keep training.  Equivalence is enforced by the PC009 contract check
over the predictor registry, the PC010 kernel-binding audit
(:func:`repro.check.contracts.check_kernel_bindings`) and the property
tests in ``tests/test_sim_kernels_global.py``.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import METRICS
from repro.sim.kernels import _wrong_prefix_fill
from repro.trace.trace import Trace

__all__ = [
    "simulate_gas",
    "simulate_gshare",
    "simulate_pas",
    "simulate_selective",
]

#: Widest packed int64 index the kernels accept; wider configurations
#: fall back to the scalar reference loop in the predictor.
MAX_INDEX_BITS = 62


# -- shared machinery ------------------------------------------------------


def _history_stream(
    bits: np.ndarray, history_bits: int, history_mask: int, carried: int
) -> np.ndarray:
    """History register value *before* each step of one outcome stream.

    ``bits`` is the int64 0/1 outcome column; the register shifts left and
    takes the newest outcome in bit 0 (outcome ``j`` steps back sits at
    bit ``j - 1``), so the value before step ``i`` is the previous
    ``history_bits`` outcomes bit-packed, with the ``carried`` register's
    bits still visible (left-shifted) for the first few steps.
    """
    n = len(bits)
    patterns = np.zeros(n, dtype=np.int64)
    depth = min(history_bits, n)
    for j in range(1, depth + 1):
        patterns[j:] |= bits[:-j] << (j - 1)
    if carried:
        for i in range(depth):
            patterns[i] |= (carried << i) & history_mask
    return patterns


def _narrow_for_sort(keys: np.ndarray, bound: int) -> np.ndarray:
    """Cast ``keys`` (all ``< bound``) to the narrowest sortable dtype.

    numpy's stable argsort is a radix sort for <= 16-bit integers and a
    comparison sort otherwise; predictor index spaces are usually small,
    so narrowing before the sort is the difference between O(n) and
    O(n log n) on the kernel's dominant step.
    """
    if bound <= 1 << 16:
        return keys.astype(np.uint16)
    if bound <= 1 << 31:
        return keys.astype(np.int32)
    return keys


def _grouped_counter_correct(
    keys: np.ndarray,
    taken: np.ndarray,
    counters: np.ndarray,
    threshold: int,
    counter_max: int,
    key_bound: int,
) -> np.ndarray:
    """Correctness bitmap for independent per-key saturating-counter chains.

    ``keys`` assigns every instance to a counter cell in ``counters`` (a
    dense 1-D integer array indexed by key).  One stable argsort groups
    instances by cell in chronological order; within a cell, runs of
    equal outcomes collapse to the wrong-prefix closed form, leaving one
    saturating-counter transition per run.  Each transition is a
    clamp-affine map ``c -> min(max(c + a, b), h)`` and those maps are
    closed under composition::

        g(f(c)) = min(max(c + a_f + a_g,
                          max(b_f + a_g, b_g)),
                      min(max(h_f + a_g, b_g), h_g))

    so the per-cell chain is an (associative) segmented prefix scan over
    run maps: a Hillis-Steele doubling pass per power-of-two offset
    yields every run's starting counter with no per-run Python loop --
    ``O(runs * log(longest cell))`` vector work in total.  Cell switches
    read the carried counter from ``counters`` and the final values are
    written back in place.
    """
    n = len(keys)
    correct = np.empty(n, dtype=bool)
    if n == 0:
        return correct
    keys = _narrow_for_sort(keys, key_bound)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_taken = taken[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
    new_run = new_group.copy()
    new_run[1:] |= sorted_taken[1:] != sorted_taken[:-1]
    run_starts = np.nonzero(new_run)[0]
    run_lengths = np.diff(np.concatenate((run_starts, [n])))
    run_opens_group = new_group[run_starts]
    m = len(run_starts)
    seg_first = np.nonzero(run_opens_group)[0]
    seg_id = np.cumsum(run_opens_group) - 1
    rank = np.arange(m, dtype=np.int64) - seg_first[seg_id]
    group_keys = sorted_keys[run_starts[run_opens_group]]
    run_taken = sorted_taken[run_starts]
    # Per-run transition map f(c) = min(max(c + A, B), H): a taken run
    # of length L adds L then saturates above, a not-taken run subtracts
    # L then saturates below -- both are one clamp-affine map.
    A = np.where(run_taken, run_lengths, -run_lengths)
    B = np.zeros(m, dtype=np.int64)
    H = np.full(m, counter_max, dtype=np.int64)
    # Inclusive segmented scan: after the pass at `offset`, (A, B, H)[k]
    # composes runs (k - 2*offset, k] of k's cell (earlier map first).
    offset = 1
    max_rank = int(rank.max())
    while offset <= max_rank:
        idx = np.nonzero(rank >= offset)[0]
        j = idx - offset
        a = A[idx]
        b = B[idx]
        h = H[idx]
        A[idx] = A[j] + a
        B[idx] = np.maximum(B[j] + a, b)
        H[idx] = np.minimum(np.maximum(H[j] + a, b), h)
        offset <<= 1
    c0 = counters[group_keys].astype(np.int64)
    c_after = np.minimum(np.maximum(c0[seg_id] + A, B), H)
    c_start = np.empty(m, dtype=np.int64)
    c_start[seg_first] = c0
    rest = np.nonzero(~run_opens_group)[0]
    c_start[rest] = c_after[rest - 1]
    wrongs = np.where(run_taken, threshold - c_start, c_start - threshold + 1)
    np.maximum(wrongs, 0, out=wrongs)
    seg_last = np.concatenate((seg_first[1:] - 1, [m - 1]))
    counters[group_keys] = c_after[seg_last]
    correct_sorted = _wrong_prefix_fill(run_starts, run_lengths, wrongs, n)
    correct[order] = correct_sorted
    return correct


def _flat_pht(predictor) -> np.ndarray:
    """The 2-D PHT as a writable flat view (row-major: select, history)."""
    flat = predictor._pht.ravel()
    if not np.shares_memory(flat, predictor._pht):
        raise AssertionError("PHT must be contiguous for the flat view")
    return flat


# -- gshare ----------------------------------------------------------------


def simulate_gshare(predictor, trace: Trace) -> np.ndarray:
    """Kernel for :class:`~repro.predictors.twolevel.GsharePredictor`.

    The global history before every step is one shifted-OR packing of
    ``trace.taken``; XOR with the aligned pc gives the whole PHT index
    stream, and each index is an independent counter chain.
    """
    METRICS.inc("sim.kernel_fastpath")
    n = len(trace)
    if n == 0:
        return np.zeros(0, dtype=bool)
    bits = trace.taken.astype(np.int64)
    history = _history_stream(
        bits, predictor._history_bits, predictor._history_mask,
        predictor._history,
    )
    pcs = (trace.pc >> np.uint64(2)).astype(np.int64)
    keys = (history ^ pcs) & predictor._pht_mask
    correct = _grouped_counter_correct(
        keys, trace.taken, predictor._pht,
        predictor._counter_threshold, predictor._counter_max,
        predictor._pht_mask + 1,
    )
    predictor._history = (
        (int(history[-1]) << 1) | int(bits[-1])
    ) & predictor._history_mask
    return correct


# -- GAs / GAg -------------------------------------------------------------


def simulate_gas(predictor, trace: Trace) -> np.ndarray:
    """Kernel for :class:`~repro.predictors.twolevel.GAsPredictor` (and
    GAg, its zero-select-bits subclass).

    Same global history stream as gshare; the flat PHT index packs the
    address-selected row above the history pattern.
    """
    METRICS.inc("sim.kernel_fastpath")
    n = len(trace)
    if n == 0:
        return np.zeros(0, dtype=bool)
    bits = trace.taken.astype(np.int64)
    history_bits = predictor._history_bits
    history = _history_stream(
        bits, history_bits, predictor._history_mask, predictor._history
    )
    pcs = (trace.pc >> np.uint64(2)).astype(np.int64)
    keys = ((pcs & predictor._select_mask) << history_bits) | history
    correct = _grouped_counter_correct(
        keys, trace.taken, _flat_pht(predictor),
        predictor._counter_threshold, predictor._counter_max,
        (predictor._select_mask + 1) << history_bits,
    )
    predictor._history = (
        (int(history[-1]) << 1) | int(bits[-1])
    ) & predictor._history_mask
    return correct


# -- PAs / PAg -------------------------------------------------------------


def simulate_pas(predictor, trace: Trace) -> np.ndarray:
    """Kernel for :class:`~repro.predictors.twolevel.PAsPredictor` (and
    PAg, its zero-select-bits subclass).

    The first-level history register lives in an address-indexed BHT, so
    branches aliasing to the same entry share a register: the trace is
    grouped by *BHT index* (not pc) and each group's interleaved outcome
    stream is packed exactly like the global register.  The per-instance
    select bits still come from the instance's own address.
    """
    METRICS.inc("sim.kernel_fastpath")
    n = len(trace)
    if n == 0:
        return np.zeros(0, dtype=bool)
    taken = trace.taken
    bits_all = taken.astype(np.int64)
    pcs = (trace.pc >> np.uint64(2)).astype(np.int64)
    history_bits = predictor._history_bits
    history_mask = predictor._history_mask
    bht = predictor._bht
    bht_keys = _narrow_for_sort(
        pcs & predictor._bht_mask, predictor._bht_mask + 1
    )
    order = np.argsort(bht_keys, kind="stable")
    sorted_keys = bht_keys[order]
    bits_sorted = bits_all[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
    group_starts = np.nonzero(new_group)[0]
    group_lengths = np.diff(np.concatenate((group_starts, [n])))
    rank = np.arange(n, dtype=np.int64) - np.repeat(group_starts, group_lengths)
    depth = min(history_bits, n)
    # The packed history before each instance, per BHT entry: outcome j
    # steps back *within the entry's own interleaved stream* sits at bit
    # j - 1, and groups are contiguous after the sort, so the j-th
    # predecessor of a rank >= j element is just j slots to the left.
    # Shift the whole sorted column (contiguous slices, no index masks);
    # elements within `depth` of their group start pick up bits from the
    # previous group, fixed below.
    patterns = np.zeros(n, dtype=np.int64)
    for j in range(1, depth + 1):
        patterns[j:] |= bits_sorted[:-j] << (j - 1)
    group_keys = sorted_keys[group_starts]
    carried = bht[group_keys]
    # Boundary fix-up: an element at rank r < depth has exactly r fresh
    # outcomes from its own group (bits 0..r-1); everything above is
    # previous-group spill to discard, and the entry's carried register
    # stays visible there (left-shifted by r) until displaced.
    sel = np.nonzero(rank < depth)[0]
    r = rank[sel]
    seg_id = np.cumsum(new_group) - 1
    patterns[sel] = (patterns[sel] & ((np.int64(1) << r) - 1)) | (
        (carried[seg_id[sel]] << r) & history_mask
    )
    group_last = group_starts + group_lengths - 1
    bht[group_keys] = (
        (patterns[group_last] << 1) | bits_sorted[group_last]
    ) & history_mask
    history = np.empty(n, dtype=np.int64)
    history[order] = patterns
    keys = ((pcs & predictor._select_mask) << history_bits) | history
    return _grouped_counter_correct(
        keys, taken, _flat_pht(predictor),
        predictor._counter_threshold, predictor._counter_max,
        (predictor._select_mask + 1) << history_bits,
    )


# -- selective-history replay ----------------------------------------------


def simulate_selective(predictor, trace: Trace) -> np.ndarray:
    """Counter-replay kernel for
    :class:`~repro.predictors.selective.SelectiveHistoryPredictor`.

    The fitted correlation data already holds every instance's three-state
    tag pattern, so the replay is index-precomputable too: pack
    ``(branch, pattern)`` into one key stream over the whole trace and run
    every per-pattern 2-bit counter as one grouped chain.  Counters start
    fresh at the initial value per (branch, pattern), exactly like the
    per-call dict of the scalar replay.
    """
    METRICS.inc("sim.kernel_fastpath")
    data = predictor._data
    window = predictor._config.window
    n = data.trace_length
    if n == 0:
        return np.zeros(0, dtype=bool)
    space = 3 ** predictor._num_branches
    keys = np.zeros(n, dtype=np.int64)
    for ordinal, (pc, branch) in enumerate(data.branches.items()):
        selection = predictor._selections[pc]
        base = ordinal * space
        if selection.tags:
            combined = np.zeros(branch.num_instances(), dtype=np.int64)
            for tag in selection.tags:
                combined = combined * 3 + branch.state_vector(tag, window)
            keys[branch.trace_indices] = base + combined
        else:
            keys[branch.trace_indices] = base
    counters = np.full(
        len(data.branches) * space, predictor._initial, dtype=np.int64
    )
    return _grouped_counter_correct(
        keys, trace.taken, counters, predictor._threshold,
        predictor._counter_max, len(counters),
    )
