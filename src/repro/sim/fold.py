"""Chunked simulation folds over the carried-state kernels.

The vectorized kernels (:mod:`repro.sim.kernels`,
:mod:`repro.sim.kernels_global`) write their final predictor state
(PHT counters, BHT registers, the global history register) back to the
predictor object after every ``simulate()`` call, precisely so a chained
``simulate(chunk_0); simulate(chunk_1); ...`` reproduces the whole-trace
run bit for bit.  This module is the fold that exploits it: feed the
windows of a :class:`~repro.trace.stream.TraceStream` through one
predictor instance and concatenate (or just count) the per-window
correctness bitmaps.

Everything here takes "a predictor" as any object with the
:class:`~repro.predictors.base.BranchPredictor` ``simulate`` contract;
the sim layer stays import-free of the predictor and analysis layers.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.obs.metrics import METRICS
from repro.trace.trace import Trace

__all__ = ["fold_simulate", "fold_correct_count"]


def fold_simulate(predictor, chunks: Iterable[Trace]) -> np.ndarray:
    """Simulate ``chunks`` in order through one predictor instance.

    Returns the concatenated correctness bitmap -- bit-identical to
    ``predictor.simulate(whole_trace)`` for every registry kernel,
    because each call resumes from the state the previous one wrote
    back.
    """
    parts = []
    for chunk in chunks:
        METRICS.inc("sim.chunk_simulations")
        parts.append(predictor.simulate(chunk))
    if not parts:
        return np.zeros(0, dtype=bool)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def fold_correct_count(predictor, chunks: Iterable[Trace]) -> Tuple[int, int]:
    """Streamed ``(correct, total)`` over ``chunks`` -- O(window) memory.

    The accuracy-only fold: per-window bitmaps are reduced to counts as
    they are produced, so nothing proportional to the trace length is
    ever resident.  This is what the memory gate measures.
    """
    correct = 0
    total = 0
    for chunk in chunks:
        METRICS.inc("sim.chunk_simulations")
        bitmap = predictor.simulate(chunk)
        correct += int(np.count_nonzero(bitmap))
        total += len(chunk)
    return correct, total
