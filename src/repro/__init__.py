"""repro: reproduction of Evers et al., ISCA 1998.

"An Analysis of Correlation and Predictability: What Makes Two-Level
Branch Predictors Work" analysed *why* two-level branch predictors work:
how much branch correlation exists, how little history is needed when an
oracle picks the right branches, and which branches are predictable
per-address, globally, or not at all.

Public API highlights:

* :mod:`repro.trace` -- branch traces (columnar, file-backed).
* :mod:`repro.workloads` -- synthetic SPECint95-analogue benchmarks.
* :mod:`repro.predictors` -- every predictor the paper uses (gshare,
  PAs, interference-free variants, loop/pattern/selective predictors,
  hybrids, static baselines).
* :mod:`repro.correlation` -- instance tagging and oracle selection of
  correlated branches.
* :mod:`repro.classify` -- per-address and global/per-address/static
  branch classification.
* :mod:`repro.analysis` -- the simulation lab (memoised predictor runs,
  per-branch accuracy accounting, percentile curves).
* :mod:`repro.experiments` -- one module per paper table/figure.
"""

__version__ = "1.0.0"

from repro.trace import Trace, TraceBuilder, read_trace, write_trace
from repro.workloads import BENCHMARK_NAMES, load_benchmark, load_suite

__all__ = [
    "BENCHMARK_NAMES",
    "Trace",
    "TraceBuilder",
    "__version__",
    "load_benchmark",
    "load_suite",
    "read_trace",
    "write_trace",
]
