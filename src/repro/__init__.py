"""repro: reproduction of Evers et al., ISCA 1998.

"An Analysis of Correlation and Predictability: What Makes Two-Level
Branch Predictors Work" analysed *why* two-level branch predictors work:
how much branch correlation exists, how little history is needed when an
oracle picks the right branches, and which branches are predictable
per-address, globally, or not at all.

Public API highlights:

* :mod:`repro.trace` -- branch traces (columnar, file-backed).
* :mod:`repro.workloads` -- synthetic SPECint95-analogue benchmarks.
* :mod:`repro.predictors` -- every predictor the paper uses (gshare,
  PAs, interference-free variants, loop/pattern/selective predictors,
  hybrids, static baselines).
* :mod:`repro.correlation` -- instance tagging and oracle selection of
  correlated branches.
* :mod:`repro.classify` -- per-address and global/per-address/static
  branch classification.
* :mod:`repro.analysis` -- the simulation lab (memoised predictor runs,
  per-branch accuracy accounting, percentile curves).
* :mod:`repro.experiments` -- one module per paper table/figure.
* :mod:`repro.obs` -- run-level observability (metrics, span tracing,
  run manifests).
* :mod:`repro.resilience` -- fault-tolerant execution (retries,
  checkpoint/resume journal, deterministic fault injection).
* :mod:`repro.spec` / :mod:`repro.plan` -- declarative run descriptions
  (RunSpec, config sweeps) and the task graphs they expand into.
* :mod:`repro.serve` / :mod:`repro.client` -- analysis as a service: a
  long-lived daemon executing RunSpecs over a versioned HTTP wire API
  with cross-client dedup, plus the matching thin client.
* :mod:`repro.api` -- the stable facade; start here::

      from repro import RunSpec, run_spec
      run = run_spec(RunSpec.from_file("spec.json"))

      from repro import run_spec, spec_from_kwargs   # keyword form
      run = run_spec(spec_from_kwargs(["table2"], max_length=20_000))
"""

__version__ = "1.4.0"

from repro.trace import Trace, TraceBuilder, read_trace, write_trace
from repro.workloads import BENCHMARK_NAMES, load_benchmark, load_suite

# The facade imports the engine, which imports repro.trace/workloads --
# keep this import last so the package is populated enough by the time
# it runs (and so deep-path imports never pay for it implicitly).
from repro.api import (  # noqa: E402
    AdmissionError,
    EngineError,
    EngineOptions,
    EngineSession,
    Lab,
    LabConfig,
    PlanError,
    PointRun,
    ReportRun,
    ReproError,
    RunSpec,
    SpecError,
    SweepRun,
    SweepSpec,
    UnknownExperimentError,
    WorkloadSpec,
    build_labs,
    build_plan,
    generate_suite,
    run_experiment,
    run_spec,
    run_sweep,
    spec_from_kwargs,
)

__all__ = [
    "AdmissionError",
    "BENCHMARK_NAMES",
    "EngineError",
    "EngineOptions",
    "EngineSession",
    "Lab",
    "LabConfig",
    "PlanError",
    "PointRun",
    "ReportRun",
    "ReproError",
    "RunSpec",
    "SpecError",
    "SweepRun",
    "SweepSpec",
    "Trace",
    "TraceBuilder",
    "UnknownExperimentError",
    "WorkloadSpec",
    "__version__",
    "build_labs",
    "build_plan",
    "generate_suite",
    "load_benchmark",
    "load_suite",
    "read_trace",
    "run_experiment",
    "run_spec",
    "run_sweep",
    "spec_from_kwargs",
    "write_trace",
]
