"""Oracle selection of the most important correlated branches (section 3.4).

The paper's hypothetical selective-history predictor records only the 1, 2
or 3 *most important* prior branches, chosen by an oracle.  The paper does
not specify the oracle's search procedure; we use the standard
approximation (documented in DESIGN.md):

* every candidate tag is scored alone by the accuracy an *ideal table*
  (per-pattern majority) would reach over the branch's whole run;
* candidates below a support threshold are pruned;
* the best single candidate is found exhaustively, the best pair
  exhaustively over the ``top_k`` singles, and the best triple by greedy
  extension of the best pair.

The reported experiment numbers never use these ideal-table scores
directly: the chosen tags are *replayed* with 2-bit saturating counters
(:mod:`repro.predictors.selective`), exactly as the paper's predictor
operates.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.correlation.tagging import (
    _DEPTH_MASK,
    _DEPTH_SHIFT,
    _INDEX_SHIFT,
    BranchCorrelationData,
    CorrelationData,
    TagKey,
)


@dataclass(frozen=True)
class SelectionConfig:
    """Oracle search parameters.

    Attributes:
        window: History depth (the paper's n, 8..32; default 16).
        top_k: Number of top-scoring single candidates admitted to the
            pair/triple search.
        min_support_fraction: A candidate must appear in at least this
            fraction of the branch's instances...
        min_support_absolute: ...and at least this many instances.
        tag_kinds: Restrict candidates to these tagging schemes
            (:data:`~repro.correlation.tagging.TAG_OCCURRENCE` and/or
            :data:`~repro.correlation.tagging.TAG_BACKWARD`).  ``None``
            uses both, as the paper does; the ablation benches use the
            restriction to measure what each scheme contributes.
    """

    window: int = 16
    top_k: int = 12
    min_support_fraction: float = 0.05
    min_support_absolute: int = 4
    tag_kinds: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")


@dataclass(frozen=True)
class Selection:
    """The oracle's choice for one static branch.

    Attributes:
        tags: The chosen correlated branches (possibly fewer than
            requested when a branch has too few qualified candidates).
        ideal_accuracy: Ideal-table accuracy of the chosen set; an upper
            bound on what counter-based replay can achieve.
    """

    tags: Tuple[TagKey, ...]
    ideal_accuracy: float


def single_tag_score(
    branch: BranchCorrelationData, tag: TagKey, window: int
) -> float:
    """Ideal-table accuracy of predicting ``branch`` from ``tag`` alone.

    Instances are bucketed by the tag's three-state outcome (taken /
    not-taken / not-in-path); within each bucket the majority direction is
    counted correct.
    """
    outcomes = branch.outcomes
    n = len(outcomes)
    if n == 0:
        return 0.0
    indices, depths, tag_outcomes = branch.decode_tag(tag)
    visible = depths <= window
    present_idx = indices[visible]
    present_out = tag_outcomes[visible]
    branch_out = outcomes[present_idx]
    # Bucket counts: key = tag_outcome * 2 + branch_outcome.
    counts = np.bincount(present_out * 2 + branch_out, minlength=4)
    taken_bucket_correct = max(counts[2], counts[3])
    not_taken_bucket_correct = max(counts[0], counts[1])
    total_taken = int(outcomes.sum())
    present_taken = int(counts[1] + counts[3])
    absent_total = n - len(present_idx)
    absent_taken = total_taken - present_taken
    absent_correct = max(absent_taken, absent_total - absent_taken)
    return (taken_bucket_correct + not_taken_bucket_correct + absent_correct) / n


def joint_ideal_accuracy(
    state_vectors: Sequence[np.ndarray], outcomes: np.ndarray
) -> float:
    """Ideal-table accuracy over the joint 3**c-pattern history.

    Args:
        state_vectors: One dense three-state vector per chosen tag.
        outcomes: The branch's outcomes, aligned with the vectors.
    """
    n = len(outcomes)
    if n == 0:
        return 0.0
    combined = np.zeros(n, dtype=np.int64)
    for states in state_vectors:
        combined = combined * 3 + states
    keys = combined * 2 + outcomes
    counts = np.bincount(keys, minlength=2 * 3 ** len(state_vectors))
    pairs = counts.reshape(-1, 2)
    return float(pairs.max(axis=1).sum()) / n


def _bias_accuracy(outcomes: np.ndarray) -> float:
    if len(outcomes) == 0:
        return 0.0
    rate = float(outcomes.mean())
    return max(rate, 1.0 - rate)


def _joint_scores(
    combined: np.ndarray, outcomes: np.ndarray, space: int
) -> np.ndarray:
    """Ideal-table accuracy of many joint histories in one bincount.

    Batched :func:`joint_ideal_accuracy`: ``combined`` holds one row of
    joint 3**c patterns per candidate set, all rows are folded into one
    ``row * space * 2 + pattern * 2 + outcome`` key column, and a single
    ``np.bincount`` yields every row's per-pattern majority at once.
    """
    rows, n = combined.shape
    keys = (
        np.arange(rows, dtype=np.int64)[:, None] * space + combined
    ) * 2 + outcomes
    counts = np.bincount(keys.ravel(), minlength=rows * space * 2)
    pairs = counts.reshape(rows, space, 2)
    return pairs.max(axis=2).sum(axis=1) / n


def _qualified_candidates(
    branch: BranchCorrelationData, config: SelectionConfig
) -> List[Tuple[TagKey, float]]:
    """Score all candidates that pass the support threshold.

    Batched equivalent of calling :func:`single_tag_score` per tag: the
    packed entries of every candidate are concatenated into one column,
    and a single ``np.bincount`` over ``tag * 4 + tag_state * 2 +
    branch_outcome`` keys yields every candidate's bucket counts at once
    -- no per-tag ``decode_tag`` replay.  Scores are the same exact
    integer-ratio float64 values the scalar scorer produces.
    """
    n = branch.num_instances()
    support_floor = max(
        config.min_support_absolute, int(config.min_support_fraction * n)
    )
    tags = [
        tag for tag in branch.tag_entries
        if config.tag_kinds is None or tag[0] in config.tag_kinds
    ]
    if not tags or n == 0:
        return []
    buffers = [branch.tag_entries[tag] for tag in tags]
    lengths = np.fromiter(
        (len(buffer) for buffer in buffers), dtype=np.int64, count=len(tags)
    )
    packed = np.concatenate(
        [np.frombuffer(buffer, dtype=np.int64) for buffer in buffers]
    )
    tag_ordinal = np.repeat(np.arange(len(tags), dtype=np.int64), lengths)
    depths = (packed >> _DEPTH_SHIFT) & _DEPTH_MASK
    visible = depths <= config.window
    tag_ordinal = tag_ordinal[visible]
    support = np.bincount(tag_ordinal, minlength=len(tags))
    qualified = support >= support_floor
    if not qualified.any():
        return []
    packed = packed[visible]
    branch_out = branch.outcomes[packed >> _INDEX_SHIFT].astype(np.int64)
    keys = tag_ordinal * 4 + (packed & 1) * 2 + branch_out
    counts = np.bincount(keys, minlength=4 * len(tags)).reshape(-1, 4)
    taken_bucket = np.maximum(counts[:, 2], counts[:, 3])
    not_taken_bucket = np.maximum(counts[:, 0], counts[:, 1])
    total_taken = int(branch.outcomes.sum())
    present_taken = counts[:, 1] + counts[:, 3]
    absent_total = n - support
    absent_taken = total_taken - present_taken
    absent_correct = np.maximum(absent_taken, absent_total - absent_taken)
    scores = (taken_bucket + not_taken_bucket + absent_correct) / n
    scored = [
        (tags[i], scores[i]) for i in np.nonzero(qualified)[0].tolist()
    ]
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored


def select_for_branch(
    branch: BranchCorrelationData,
    count: int,
    config: SelectionConfig = SelectionConfig(),
) -> Selection:
    """Choose the ``count`` most important correlated branches for one branch.

    Args:
        branch: Collected correlation observations for the branch.
        count: Size of the selective history (1, 2 or 3 in the paper).
        config: Oracle search parameters.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    scored = _qualified_candidates(branch, config)
    if not scored:
        return Selection(tags=(), ideal_accuracy=_bias_accuracy(branch.outcomes))

    best_single = scored[0]
    if count == 1 or len(scored) == 1:
        return Selection(tags=(best_single[0],), ideal_accuracy=best_single[1])

    top = [tag for tag, _score in scored[: config.top_k]]
    vectors = np.stack(
        [branch.state_vector(tag, config.window) for tag in top]
    ).astype(np.int64)
    outcomes = branch.outcomes.astype(np.int64)

    # All top-K pairs scored as one (pairs x instances) joint-key matrix
    # pass; np.argmax returns the *first* maximum, which is exactly the
    # pair the sequential strict-> loop would have kept.
    best_pair: Tuple[TagKey, ...] = (best_single[0],)
    best_pair_score = best_single[1]
    pair_index = list(combinations(range(len(top)), 2))
    left = np.fromiter((i for i, _j in pair_index), dtype=np.int64)
    right = np.fromiter((j for _i, j in pair_index), dtype=np.int64)
    pair_scores = _joint_scores(
        vectors[left] * 3 + vectors[right], outcomes, 9
    )
    best = int(np.argmax(pair_scores))
    if pair_scores[best] > best_pair_score:
        best_pair_score = pair_scores[best]
        best_pair = (top[pair_index[best][0]], top[pair_index[best][1]])
    if count == 2 or len(best_pair) < 2:
        return Selection(tags=tuple(best_pair), ideal_accuracy=best_pair_score)

    # Greedy third: every extension of the best pair in one matrix pass.
    best_triple = best_pair
    best_triple_score = best_pair_score
    extensions = [
        i for i, tag in enumerate(top) if tag not in best_pair
    ]
    if extensions:
        i, j = pair_index[best]
        pair_combined = vectors[i] * 3 + vectors[j]
        triple_scores = _joint_scores(
            pair_combined * 3 + vectors[np.asarray(extensions)], outcomes, 27
        )
        best = int(np.argmax(triple_scores))
        if triple_scores[best] > best_triple_score:
            best_triple_score = triple_scores[best]
            best_triple = best_pair + (top[extensions[best]],)
    return Selection(tags=tuple(best_triple), ideal_accuracy=best_triple_score)


def select_for_trace(
    data: CorrelationData,
    count: int,
    config: SelectionConfig = SelectionConfig(),
) -> Dict[int, Selection]:
    """Run the oracle for every static branch in the trace.

    Returns:
        Map from branch address to its :class:`Selection`.
    """
    if config.window > data.window:
        raise ValueError(
            f"analysis window {config.window} exceeds collection window "
            f"{data.window}"
        )
    return {
        pc: select_for_branch(branch, count, config)
        for pc, branch in data.branches.items()
    }
