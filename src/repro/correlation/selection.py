"""Oracle selection of the most important correlated branches (section 3.4).

The paper's hypothetical selective-history predictor records only the 1, 2
or 3 *most important* prior branches, chosen by an oracle.  The paper does
not specify the oracle's search procedure; we use the standard
approximation (documented in DESIGN.md):

* every candidate tag is scored alone by the accuracy an *ideal table*
  (per-pattern majority) would reach over the branch's whole run;
* candidates below a support threshold are pruned;
* the best single candidate is found exhaustively, the best pair
  exhaustively over the ``top_k`` singles, and the best triple by greedy
  extension of the best pair.

The reported experiment numbers never use these ideal-table scores
directly: the chosen tags are *replayed* with 2-bit saturating counters
(:mod:`repro.predictors.selective`), exactly as the paper's predictor
operates.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.correlation.tagging import (
    BranchCorrelationData,
    CorrelationData,
    TagKey,
)


@dataclass(frozen=True)
class SelectionConfig:
    """Oracle search parameters.

    Attributes:
        window: History depth (the paper's n, 8..32; default 16).
        top_k: Number of top-scoring single candidates admitted to the
            pair/triple search.
        min_support_fraction: A candidate must appear in at least this
            fraction of the branch's instances...
        min_support_absolute: ...and at least this many instances.
        tag_kinds: Restrict candidates to these tagging schemes
            (:data:`~repro.correlation.tagging.TAG_OCCURRENCE` and/or
            :data:`~repro.correlation.tagging.TAG_BACKWARD`).  ``None``
            uses both, as the paper does; the ablation benches use the
            restriction to measure what each scheme contributes.
    """

    window: int = 16
    top_k: int = 12
    min_support_fraction: float = 0.05
    min_support_absolute: int = 4
    tag_kinds: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")


@dataclass(frozen=True)
class Selection:
    """The oracle's choice for one static branch.

    Attributes:
        tags: The chosen correlated branches (possibly fewer than
            requested when a branch has too few qualified candidates).
        ideal_accuracy: Ideal-table accuracy of the chosen set; an upper
            bound on what counter-based replay can achieve.
    """

    tags: Tuple[TagKey, ...]
    ideal_accuracy: float


def single_tag_score(
    branch: BranchCorrelationData, tag: TagKey, window: int
) -> float:
    """Ideal-table accuracy of predicting ``branch`` from ``tag`` alone.

    Instances are bucketed by the tag's three-state outcome (taken /
    not-taken / not-in-path); within each bucket the majority direction is
    counted correct.
    """
    outcomes = branch.outcomes
    n = len(outcomes)
    if n == 0:
        return 0.0
    indices, depths, tag_outcomes = branch.decode_tag(tag)
    visible = depths <= window
    present_idx = indices[visible]
    present_out = tag_outcomes[visible]
    branch_out = outcomes[present_idx]
    # Bucket counts: key = tag_outcome * 2 + branch_outcome.
    counts = np.bincount(present_out * 2 + branch_out, minlength=4)
    taken_bucket_correct = max(counts[2], counts[3])
    not_taken_bucket_correct = max(counts[0], counts[1])
    total_taken = int(outcomes.sum())
    present_taken = int(counts[1] + counts[3])
    absent_total = n - len(present_idx)
    absent_taken = total_taken - present_taken
    absent_correct = max(absent_taken, absent_total - absent_taken)
    return (taken_bucket_correct + not_taken_bucket_correct + absent_correct) / n


def joint_ideal_accuracy(
    state_vectors: Sequence[np.ndarray], outcomes: np.ndarray
) -> float:
    """Ideal-table accuracy over the joint 3**c-pattern history.

    Args:
        state_vectors: One dense three-state vector per chosen tag.
        outcomes: The branch's outcomes, aligned with the vectors.
    """
    n = len(outcomes)
    if n == 0:
        return 0.0
    combined = np.zeros(n, dtype=np.int64)
    for states in state_vectors:
        combined = combined * 3 + states
    keys = combined * 2 + outcomes
    counts = np.bincount(keys, minlength=2 * 3 ** len(state_vectors))
    pairs = counts.reshape(-1, 2)
    return float(pairs.max(axis=1).sum()) / n


def _bias_accuracy(outcomes: np.ndarray) -> float:
    if len(outcomes) == 0:
        return 0.0
    rate = float(outcomes.mean())
    return max(rate, 1.0 - rate)


def _qualified_candidates(
    branch: BranchCorrelationData, config: SelectionConfig
) -> List[Tuple[TagKey, float]]:
    """Score all candidates that pass the support threshold."""
    n = branch.num_instances()
    support_floor = max(
        config.min_support_absolute, int(config.min_support_fraction * n)
    )
    scored: List[Tuple[TagKey, float]] = []
    for tag in branch.tag_entries:
        if config.tag_kinds is not None and tag[0] not in config.tag_kinds:
            continue
        _indices, depths, _outcomes = branch.decode_tag(tag)
        support = int((depths <= config.window).sum())
        if support < support_floor:
            continue
        scored.append((tag, single_tag_score(branch, tag, config.window)))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored


def select_for_branch(
    branch: BranchCorrelationData,
    count: int,
    config: SelectionConfig = SelectionConfig(),
) -> Selection:
    """Choose the ``count`` most important correlated branches for one branch.

    Args:
        branch: Collected correlation observations for the branch.
        count: Size of the selective history (1, 2 or 3 in the paper).
        config: Oracle search parameters.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    scored = _qualified_candidates(branch, config)
    if not scored:
        return Selection(tags=(), ideal_accuracy=_bias_accuracy(branch.outcomes))

    best_single = scored[0]
    if count == 1 or len(scored) == 1:
        return Selection(tags=(best_single[0],), ideal_accuracy=best_single[1])

    top = [tag for tag, _score in scored[: config.top_k]]
    vectors = {
        tag: branch.state_vector(tag, config.window) for tag in top
    }
    outcomes = branch.outcomes

    best_pair: Tuple[TagKey, ...] = (best_single[0],)
    best_pair_score = best_single[1]
    for pair in combinations(top, 2):
        score = joint_ideal_accuracy([vectors[t] for t in pair], outcomes)
        if score > best_pair_score:
            best_pair_score = score
            best_pair = pair
    if count == 2 or len(best_pair) < 2:
        return Selection(tags=tuple(best_pair), ideal_accuracy=best_pair_score)

    # Greedy third: extend the best pair with the best remaining candidate.
    best_triple = best_pair
    best_triple_score = best_pair_score
    pair_vectors = [vectors[t] for t in best_pair]
    for tag in top:
        if tag in best_pair:
            continue
        score = joint_ideal_accuracy(pair_vectors + [vectors[tag]], outcomes)
        if score > best_triple_score:
            best_triple_score = score
            best_triple = best_pair + (tag,)
    return Selection(tags=tuple(best_triple), ideal_accuracy=best_triple_score)


def select_for_trace(
    data: CorrelationData,
    count: int,
    config: SelectionConfig = SelectionConfig(),
) -> Dict[int, Selection]:
    """Run the oracle for every static branch in the trace.

    Returns:
        Map from branch address to its :class:`Selection`.
    """
    if config.window > data.window:
        raise ValueError(
            f"analysis window {config.window} exceeds collection window "
            f"{data.window}"
        )
    return {
        pc: select_for_branch(branch, count, config)
        for pc, branch in data.branches.items()
    }
