"""Branch-correlation analysis machinery (section 3 of the paper).

* :mod:`~repro.correlation.tagging` -- the two instance-tagging schemes
  of section 3.2 (occurrence numbering and backward-branch counting) and
  the single-pass collector that records, for every static branch, which
  tagged prior branches appeared in its history window and with what
  outcome.
* :mod:`~repro.correlation.selection` -- scoring of candidate correlated
  branches and the oracle choice of the 1/2/3 most important branches
  (section 3.4).
"""

from repro.correlation.selection import (
    SelectionConfig,
    Selection,
    joint_ideal_accuracy,
    select_for_branch,
    select_for_trace,
    single_tag_score,
)
from repro.correlation.tagging import (
    BranchCorrelationData,
    CorrelationData,
    TagKey,
    collect_correlation_data,
    STATE_ABSENT,
    STATE_NOT_TAKEN,
    STATE_TAKEN,
)

__all__ = [
    "BranchCorrelationData",
    "CorrelationData",
    "Selection",
    "SelectionConfig",
    "STATE_ABSENT",
    "STATE_NOT_TAKEN",
    "STATE_TAKEN",
    "TagKey",
    "collect_correlation_data",
    "joint_ideal_accuracy",
    "select_for_branch",
    "select_for_trace",
    "single_tag_score",
]
