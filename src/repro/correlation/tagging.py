"""Instance tagging and correlation-data collection (section 3.2).

In tight loops several iterations fit inside the history window, so a
static branch address alone cannot identify *which* dynamic instance of a
prior branch we are correlating with.  The paper tags every prior branch
two ways and keeps both tag sets as distinct correlation candidates:

1. **Occurrence numbering** (``TAG_OCCURRENCE``): number instances of a
   static branch back from the current branch -- the most recent
   occurrence of A is A0, the next A1, ...  Stable for branches that
   execute every iteration, ambiguous across iterations otherwise.
2. **Backward-branch counting** (``TAG_BACKWARD``): tag an instance by
   how many backward (loop-closing) branches executed between it and the
   current branch -- a proxy for "how many iterations ago".  Stable
   within a loop, ambiguous for branches before the loop.

The collector makes one pass over the trace with the *maximum* history
window (32, the largest the paper sweeps in figure 5) and records the
depth of every tagged appearance, so any smaller window can be analysed
by filtering on depth: numbering under both schemes counts from the
current branch and is therefore window-independent.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.trace.trace import Trace

#: Tag kinds (section 3.2's two schemes).
TAG_OCCURRENCE = 0
TAG_BACKWARD = 1

#: A correlation candidate: (scheme, static branch address, instance number).
TagKey = Tuple[int, int, int]

#: Three-state outcome of a tagged branch relative to the current branch
#: (section 3.4: "taken, not taken or not in the path").
STATE_ABSENT = 0
STATE_NOT_TAKEN = 1
STATE_TAKEN = 2

#: Largest history window the paper examines (figure 5 sweeps 8..32).
MAX_WINDOW = 32

# Packed-entry layout: (instance_index << 7) | (depth << 1) | outcome.
# depth <= MAX_WINDOW < 64 fits in 6 bits.
_DEPTH_SHIFT = 1
_INDEX_SHIFT = 7
_DEPTH_MASK = 0x3F


def _pack(instance_index: int, depth: int, outcome: int) -> int:
    return (instance_index << _INDEX_SHIFT) | (depth << _DEPTH_SHIFT) | outcome


@dataclass
class BranchCorrelationData:
    """Correlation observations for one static branch.

    Attributes:
        pc: The static branch address.
        trace_indices: Global trace positions of this branch's dynamic
            instances, in execution order.
        outcomes: This branch's outcome per instance (aligned with
            ``trace_indices``).
        tag_entries: For each candidate tag, the packed appearances:
            one entry per (instance of this branch, appearance of the
            tagged branch in that instance's window), encoding the
            instance index, the depth (distance back in branches, >= 1)
            and the tagged branch's outcome.
    """

    pc: int
    trace_indices: np.ndarray
    outcomes: np.ndarray
    tag_entries: Dict[TagKey, array] = field(default_factory=dict)

    _decoded_cache: Dict[TagKey, Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=dict, repr=False
    )

    def num_instances(self) -> int:
        return len(self.outcomes)

    def decode_tag(
        self, tag: TagKey
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unpack a tag's entries into (instance_index, depth, outcome) arrays."""
        cached = self._decoded_cache.get(tag)
        if cached is None:
            packed = np.frombuffer(self.tag_entries[tag], dtype=np.int64)
            indices = packed >> _INDEX_SHIFT
            depths = (packed >> _DEPTH_SHIFT) & _DEPTH_MASK
            outcomes = packed & 1
            cached = (indices, depths, outcomes)
            self._decoded_cache[tag] = cached
        return cached

    def state_vector(self, tag: TagKey, window: int) -> np.ndarray:
        """Dense per-instance state of ``tag`` under a ``window``-branch history.

        Returns an int8 array over this branch's instances with values
        :data:`STATE_ABSENT`, :data:`STATE_NOT_TAKEN`, :data:`STATE_TAKEN`.
        """
        states = np.zeros(self.num_instances(), dtype=np.int8)
        indices, depths, outcomes = self.decode_tag(tag)
        visible = depths <= window
        # Entries are appended shallow-to-deep per instance; writing in
        # reverse makes the shallowest (most recent) appearance win where
        # the backward scheme produced duplicates at several depths.
        idx = indices[visible][::-1]
        out = outcomes[visible][::-1]
        states[idx] = np.where(out == 1, STATE_TAKEN, STATE_NOT_TAKEN).astype(np.int8)
        return states


@dataclass
class CorrelationData:
    """Correlation observations for a whole trace.

    Attributes:
        window: The collection window (any analysis window <= this is
            supported by depth filtering).
        trace_length: Number of dynamic branches in the source trace.
        branches: Per-static-branch observations.
    """

    window: int
    trace_length: int
    branches: Dict[int, BranchCorrelationData]


def collect_correlation_data(trace: Trace, window: int = MAX_WINDOW) -> CorrelationData:
    """One-pass collection of tagged-correlation observations.

    For every dynamic branch, every branch in its ``window``-deep history
    is tagged under both schemes and recorded under the current branch's
    static address, exactly as the paper's oracle analysis requires.

    Args:
        trace: The branch trace to analyse.
        window: History depth; must be <= :data:`MAX_WINDOW` because of
            the packed-entry encoding.

    Returns:
        The collected :class:`CorrelationData`.
    """
    if not 1 <= window <= MAX_WINDOW:
        raise ValueError(f"window must be in [1, {MAX_WINDOW}], got {window}")

    n = len(trace)
    pcs = trace.pc.tolist()
    takens = trace.taken.tolist()
    # bwd_cum[x] = number of backward branches among positions [0, x).
    bwd_cum = np.concatenate(
        ([0], np.cumsum(trace.is_backward.astype(np.int64)))
    ).tolist()

    branches: Dict[int, BranchCorrelationData] = {}
    instance_counters: Dict[int, int] = {}
    trace_index_lists: Dict[int, array] = {}
    outcome_lists: Dict[int, array] = {}
    tag_tables: Dict[int, Dict[TagKey, array]] = {}

    for i in range(n):
        current_pc = pcs[i]
        instance_index = instance_counters.get(current_pc, 0)
        instance_counters[current_pc] = instance_index + 1
        table = tag_tables.get(current_pc)
        if table is None:
            table = {}
            tag_tables[current_pc] = table
            trace_index_lists[current_pc] = array("q")
            outcome_lists[current_pc] = array("b")
        trace_index_lists[current_pc].append(i)
        outcome_lists[current_pc].append(takens[i])

        occurrence_counts: Dict[int, int] = {}
        seen_backward = set()
        bwd_before_i = bwd_cum[i]
        deepest = min(i, window)
        for depth in range(1, deepest + 1):
            j = i - depth
            prior_pc = pcs[j]
            prior_outcome = takens[j]
            occurrence = occurrence_counts.get(prior_pc, 0)
            occurrence_counts[prior_pc] = occurrence + 1
            packed = _pack(instance_index, depth, prior_outcome)
            occ_tag = (TAG_OCCURRENCE, prior_pc, occurrence)
            entries = table.get(occ_tag)
            if entries is None:
                table[occ_tag] = array("q", (packed,))
            else:
                entries.append(packed)
            # Backward branches strictly between the tagged branch and
            # the current branch: positions j+1 .. i-1.
            backward_count = bwd_before_i - bwd_cum[j + 1]
            bwd_key = (prior_pc, backward_count)
            if bwd_key not in seen_backward:
                seen_backward.add(bwd_key)
                bwd_tag = (TAG_BACKWARD, prior_pc, backward_count)
                entries = table.get(bwd_tag)
                if entries is None:
                    table[bwd_tag] = array("q", (packed,))
                else:
                    entries.append(packed)

    for pc, table in tag_tables.items():
        branches[pc] = BranchCorrelationData(
            pc=pc,
            trace_indices=np.frombuffer(trace_index_lists[pc], dtype=np.int64),
            outcomes=np.frombuffer(outcome_lists[pc], dtype=np.int8).astype(bool),
            tag_entries=table,
        )
    return CorrelationData(window=window, trace_length=n, branches=branches)
