"""Static IR verifier for synthetic workload programs.

Walks a :class:`~repro.workloads.program.Program` without executing it
and reports structural faults that would silently distort every trace
generated from it:

====== ======== ========================================================
code   severity finding
====== ======== ========================================================
IR001  error    procedure unreachable from main
IR002  error    call to an undefined procedure
IR003  error    branch site never laid out (address still -1)
IR004  error    branch-address collision (statement aliased at two
                program points, so two sites share one pc)
IR005  error    address violates the ``ADDRESS_STRIDE`` layout grid
IR006  error    branch-direction convention violated (loop branches
                must lay out backward; if/while-exit branches forward)
IR007  error/   statically zero trip count (error on for-loops, whose
       warning  interpreter silently clamps to one trip; warning on
                while-loops, whose body is then dead)
IR008  error    trip-count generator statically unbounded
IR009  error    condition reads a variable no reachable statement
                assigns
IR010  warning  condition reads a counter no reachable statement sets
                (it would silently read as zero)
IR011  warning  statically constant branch condition
IR012  warning  statement statically unreachable (dead if-arm or dead
                while-body)
IR013  error    negative trip-count bound
IR100  info     opaque trip-count generator (no ``trip_bounds``)
IR101  info     unknown statement type, not verified
====== ======== ========================================================

The direction conventions are the paper's layout premise (section 3.2):
backward-branch tagging and BTFNT are only meaningful when loop-closing
branches really lay out backward and if/while-exit branches forward.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.check.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    CheckFailure,
    Diagnostic,
    sort_diagnostics,
)
from repro.workloads.conditions import (
    BernoulliExpr,
    ConstExpr,
    CounterBelowExpr,
    Expr,
    VarExpr,
)
from repro.workloads.program import (
    ADDRESS_STRIDE,
    AddCounter,
    Assign,
    Block,
    Call,
    Effect,
    ForLoop,
    If,
    Procedure,
    Program,
    SetCounter,
    Statement,
    WhileLoop,
)


class ProgramVerificationError(CheckFailure):
    """A program failed static verification (error-severity findings)."""


def _iter_children(statement: Statement) -> Iterator[Statement]:
    """Direct sub-statements, in program order (does not follow calls)."""
    if isinstance(statement, Block):
        yield from statement.statements
    elif isinstance(statement, If):
        if statement.then_body is not None:
            yield statement.then_body
        if statement.else_body is not None:
            yield statement.else_body
    elif isinstance(statement, (ForLoop, WhileLoop)):
        yield statement.body


def _iter_exprs(root: Expr) -> Iterator[Expr]:
    """The expression tree rooted at ``root``, preorder."""
    stack = [root]
    while stack:
        expr = stack.pop()
        yield expr
        stack.extend(expr.children())


class _ProgramWalk:
    """A full walk of the program, tracking locations and aliasing."""

    def __init__(self, program: Program, name: str) -> None:
        self.program = program
        self.name = name
        self.diagnostics: List[Diagnostic] = []
        #: id(statement) -> location of first visit (aliasing detection).
        self._visited: Dict[int, str] = {}
        #: (kind, pc) for every laid-out branch site.
        self.branch_pcs: Dict[int, str] = {}
        self.assigned_variables: Set[str] = set()
        self.set_counters: Set[str] = set()
        self.callees: List[Tuple[str, str]] = []  # (callee, location)
        self.conditions: List[Tuple[Expr, str]] = []

    def report(
        self, code: str, severity: str, message: str, location: str
    ) -> None:
        self.diagnostics.append(
            Diagnostic(code=code, severity=severity, message=message,
                       location=f"{self.name}:{location}")
        )

    # -- address checks --------------------------------------------------

    def _check_branch_site(
        self, kind: str, pc: int, target: int, location: str
    ) -> None:
        if pc < 0 or target < 0:
            self.report(
                "IR003", ERROR,
                f"{kind} branch site was never laid out (pc={pc}, "
                f"target={target})", location,
            )
            return
        for label, address in (("pc", pc), ("target", target)):
            if address % ADDRESS_STRIDE:
                self.report(
                    "IR005", ERROR,
                    f"{kind} {label} {address:#x} is off the "
                    f"{ADDRESS_STRIDE}-byte address grid", location,
                )
        previous = self.branch_pcs.get(pc)
        if previous is not None:
            self.report(
                "IR004", ERROR,
                f"{kind} branch pc {pc:#x} collides with the {previous} "
                "branch site at the same address", location,
            )
        else:
            self.branch_pcs[pc] = f"{kind} ({location})"
        # Direction conventions: for-loops branch backward, everything
        # else branches forward past the statement.
        if kind == "for-loop":
            if target >= pc:
                self.report(
                    "IR006", ERROR,
                    f"loop branch at {pc:#x} must branch backward but "
                    f"targets {target:#x}", location,
                )
        elif target <= pc:
            self.report(
                "IR006", ERROR,
                f"{kind} branch at {pc:#x} must branch forward but "
                f"targets {target:#x}", location,
            )

    # -- trip-count checks ------------------------------------------------

    def _check_trips(self, statement, kind: str, location: str) -> None:
        bounds: Optional[Tuple[int, Optional[int]]] = getattr(
            statement.trips, "trip_bounds", None
        )
        if bounds is None:
            self.report(
                "IR100", INFO,
                f"{kind} trip-count generator is opaque (no trip_bounds); "
                "boundedness not statically verifiable", location,
            )
            return
        low, high = bounds
        if low < 0 or (high is not None and high < 0):
            self.report(
                "IR013", ERROR,
                f"{kind} trip bounds {bounds} include negative counts",
                location,
            )
            return
        if high is None or (isinstance(high, float) and math.isinf(high)):
            self.report(
                "IR008", ERROR,
                f"{kind} trip-count generator is statically unbounded "
                f"(bounds {bounds})", location,
            )
            return
        if high == 0:
            if kind == "for-loop":
                self.report(
                    "IR007", ERROR,
                    "for-loop trip count is statically zero; the "
                    "interpreter silently clamps it to one trip", location,
                )
            else:
                self.report(
                    "IR007", WARNING,
                    "while-loop trip count is statically zero; the exit "
                    "branch is constant-taken", location,
                )
                self.report(
                    "IR012", WARNING,
                    "while-loop body is statically unreachable", location,
                )

    # -- statement walk ---------------------------------------------------

    def walk_procedure(self, procedure: Procedure) -> None:
        self._walk(procedure.body, f"{procedure.name}/body")

    def _walk(self, statement: Statement, location: str) -> None:
        first_seen = self._visited.get(id(statement))
        if first_seen is not None:
            self.report(
                "IR004", ERROR,
                f"statement aliased at two program points (first seen at "
                f"{first_seen}); both emit the same branch addresses",
                location,
            )
            return
        self._visited[id(statement)] = location

        if isinstance(statement, Block):
            for index, child in enumerate(statement.statements):
                self._walk(child, f"{location}[{index}]")
        elif isinstance(statement, If):
            self._check_branch_site("if", statement.pc, statement.target, location)
            self.conditions.append((statement.condition, location))
            self._check_constant_condition(statement, location)
            if statement.then_body is not None:
                self._walk(statement.then_body, f"{location}/then")
            if statement.else_body is not None:
                self._walk(statement.else_body, f"{location}/else")
        elif isinstance(statement, ForLoop):
            self._check_branch_site(
                "for-loop", statement.pc, statement.start, location
            )
            self._check_trips(statement, "for-loop", location)
            self._walk(statement.body, f"{location}/loop-body")
        elif isinstance(statement, WhileLoop):
            self._check_branch_site(
                "while-loop", statement.pc, statement.target, location
            )
            self._check_trips(statement, "while-loop", location)
            self._walk(statement.body, f"{location}/loop-body")
        elif isinstance(statement, Assign):
            self.assigned_variables.add(statement.name)
            self.conditions.append((statement.expr, location))
        elif isinstance(statement, (AddCounter, SetCounter)):
            self.set_counters.add(statement.name)
        elif isinstance(statement, Call):
            self.callees.append((statement.callee, location))
        elif isinstance(statement, Effect):
            pass  # opaque mutation; nothing statically checkable
        else:
            self.report(
                "IR101", INFO,
                f"unknown statement type {type(statement).__name__}; "
                "not verified", location,
            )

    def _check_constant_condition(self, statement: If, location: str) -> None:
        condition = statement.condition
        constant: Optional[bool] = None
        if isinstance(condition, ConstExpr):
            constant = condition.value
        elif isinstance(condition, BernoulliExpr):
            if condition.probability >= 1.0:
                constant = True
            elif condition.probability <= 0.0:
                constant = False
        if constant is None:
            return
        self.report(
            "IR011", WARNING,
            f"branch condition is statically constant "
            f"({'taken' if constant else 'not-taken'})", location,
        )
        dead_arm = "else" if constant else "then"
        dead_body = statement.else_body if constant else statement.then_body
        if dead_body is not None:
            self.report(
                "IR012", WARNING,
                f"{dead_arm}-arm is statically unreachable", location,
            )


def _reachable_procedures(walks: Dict[str, _ProgramWalk], main: str) -> Set[str]:
    """Transitive closure of the call graph from main."""
    reachable: Set[str] = set()
    frontier = [main]
    while frontier:
        name = frontier.pop()
        if name in reachable or name not in walks:
            continue
        reachable.add(name)
        frontier.extend(callee for callee, _ in walks[name].callees)
    return reachable


def verify_program(program: Program, name: str = "program") -> List[Diagnostic]:
    """Statically verify ``program``; return all findings, errors first.

    Args:
        program: The workload IR to verify (never executed).
        name: Label used in diagnostic locations (benchmark name).
    """
    # Walk each procedure separately so aliasing is judged per static
    # program point (calling one procedure from many sites is fine; the
    # same Statement object appearing twice in one layout is not).
    per_procedure: Dict[str, _ProgramWalk] = {}
    shared = _ProgramWalk(program, name)
    for procedure in program.procedures:
        walk = _ProgramWalk(program, name)
        # Share aliasing, address, and definition state across
        # procedures: addresses are program-global, and a statement
        # aliased across two procedure bodies is just as corrupt.
        walk._visited = shared._visited
        walk.branch_pcs = shared.branch_pcs
        walk.assigned_variables = shared.assigned_variables
        walk.set_counters = shared.set_counters
        walk.diagnostics = shared.diagnostics
        walk.walk_procedure(procedure)
        per_procedure[procedure.name] = walk

    diagnostics = shared.diagnostics

    # Call-graph checks: undefined callees and unreachable procedures.
    defined = {procedure.name for procedure in program.procedures}
    for proc_name, walk in per_procedure.items():
        for callee, location in walk.callees:
            if callee not in defined:
                diagnostics.append(Diagnostic(
                    code="IR002", severity=ERROR,
                    message=f"call to undefined procedure {callee!r}",
                    location=f"{name}:{location}",
                ))
    reachable = _reachable_procedures(per_procedure, program.main)
    for proc_name in defined - reachable:
        diagnostics.append(Diagnostic(
            code="IR001", severity=ERROR,
            message=f"procedure {proc_name!r} is unreachable from main "
                    f"{program.main!r}",
            location=f"{name}:{proc_name}",
        ))

    # Condition well-formedness over the whole program: a variable or
    # counter defined in *any* reachable procedure may feed any
    # condition (procedure bodies share one Environment).
    assigned = shared.assigned_variables
    counters = shared.set_counters
    for walk in per_procedure.values():
        for condition, location in walk.conditions:
            for expr in _iter_exprs(condition):
                if isinstance(expr, VarExpr) and expr.name not in assigned:
                    diagnostics.append(Diagnostic(
                        code="IR009", severity=ERROR,
                        message=f"condition reads variable {expr.name!r} "
                                "which no statement assigns",
                        location=f"{name}:{location}",
                    ))
                elif (
                    isinstance(expr, CounterBelowExpr)
                    and expr.name not in counters
                ):
                    diagnostics.append(Diagnostic(
                        code="IR010", severity=WARNING,
                        message=f"condition reads counter {expr.name!r} "
                                "which no statement sets (reads as zero)",
                        location=f"{name}:{location}",
                    ))
    return sort_diagnostics(diagnostics)


def verify_program_or_raise(program: Program, name: str = "program") -> None:
    """Raise :class:`ProgramVerificationError` on error-severity findings.

    The workload suite calls this before trace generation so a malformed
    benchmark fails fast with the full structured listing instead of
    silently producing a corrupt trace.
    """
    diagnostics = verify_program(program, name=name)
    errors = [diag for diag in diagnostics if diag.severity == ERROR]
    if errors:
        raise ProgramVerificationError(
            f"workload {name!r} failed IR verification "
            f"({len(errors)} error(s))",
            diagnostics,
        )
