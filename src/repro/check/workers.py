"""Worker-safety pass: hazards in code that crosses the process pool.

The parallel scheduler's whole determinism argument rests on worker
jobs being *pure*: :func:`repro.analysis.parallel._run_task` and
:func:`~repro.analysis.parallel.compute_task` must be functions of the
job spec alone, and the parent's fold must consume their results in a
schedule-independent order.  Three source-level hazards break that
silently, and none of them fails loudly in tests (a single-process run
hides all of them):

====== =================================================================
WS001  a function reachable from the worker entry points mutates a
       module-level mutable container (list/dict/set/deque...): each
       worker process accretes private state, so results depend on
       which worker ran which jobs before this one.
WS002  a ``lambda`` or nested function handed to pool submission
       (``submit`` / ``map`` / ``apply_async``...): closures do not
       pickle, so the run dies at submit time -- or silently falls
       back to degraded paths if the executor swallows it.
WS003  iteration over a ``set``/``frozenset`` inside worker-reachable
       code: per-process hash seeding reorders it, so two workers can
       fold the same observations into different results.
WS004  a whole :class:`~repro.trace.trace.Trace` handed to pool
       submission -- a ``.trace`` attribute, or a local bound from
       ``Trace(...)`` / ``load_benchmark(...)`` / ``read_trace(...)`` /
       ``.whole()``: every submit re-pickles the full column arrays
       into each worker.  Ship the spill file path or a
       ``multiprocessing.shared_memory`` segment name instead (the
       chunk scheduler's protocol).
====== =================================================================

Reachability is computed statically from the AST: starting at the entry
functions, the pass follows direct calls (``f(...)``, ``mod.f(...)``),
``self.method()`` calls inside classes, constructor calls plus
local-variable method calls (``cache = ResultCache(...);
cache.load_trace(...)``), and bare function references passed as
call arguments (``pool.submit(_run_task, spec)``).  Imports resolve
within the ``repro`` package only; calls on objects of unknown type
(e.g. ``predictor.simulate(trace)``) are out of scope -- predictor
purity is already enforced dynamically by the contracts pass.

Telemetry registries are the sanctioned exception to WS001: workers
``reset()`` the per-process :data:`~repro.obs.metrics.METRICS` /
:data:`~repro.obs.tracing.TRACER` singletons per job and ship deltas
back for a deterministic parent-side fold, so mutations of names in
:data:`WORKER_SAFE_GLOBALS` are not reported.  Anything else deliberate
takes a ``check: ignore`` comment on the flagged line.
"""

from __future__ import annotations

import ast
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.deps import _default_package_root, _Module, _ModuleIndex
from repro.check.diagnostics import ERROR, Diagnostic, sort_diagnostics

#: Module-level singletons designed for per-process mutation: workers
#: reset them per job and the parent folds their shipped deltas in a
#: deterministic order, so mutating them is the *protocol*, not a bug.
WORKER_SAFE_GLOBALS = frozenset({"METRICS", "TRACER"})

#: Worker entry points: (dotted module, function names).
DEFAULT_ENTRY = ("repro.analysis.parallel", ("compute_task", "_run_task"))

#: Kernel modules whose ``simulate_*`` functions are seeded as extra
#: entry points in the default analysis: they run inside pool workers
#: via ``predictor.simulate()`` dispatch, which the static call graph
#: deliberately does not follow (unknown receiver type), so without
#: seeding the pass would never scan them.
KERNEL_ENTRY_MODULES = ("repro.sim.kernels", "repro.sim.kernels_global")

#: Method names that mutate builtin containers in place.
_MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "remove",
    "setdefault", "update",
})

#: Constructor names whose result is a mutable container.
_MUTABLE_FACTORIES = frozenset({
    "Counter", "OrderedDict", "defaultdict", "deque", "dict", "list", "set",
})

#: Pool-submission method names whose callable argument must pickle.
_SUBMIT_METHODS = frozenset({
    "apply_async", "imap", "imap_unordered", "map", "map_async",
    "starmap", "starmap_async", "submit",
})

#: Calls whose result is a whole in-memory trace (WS004 tracking).
_TRACE_FACTORIES = frozenset({"Trace", "load_benchmark", "read_trace"})


def _mutable_module_globals(module: _Module) -> Dict[str, int]:
    """Module-level names bound to mutable container literals/calls."""
    found: Dict[str, int] = {}
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                    ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_FACTORIES
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                found[target.id] = node.lineno
    return found


def _root_name(node: ast.expr) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _FunctionScan(ast.NodeVisitor):
    """One reachable function: hazards found plus outgoing call edges."""

    def __init__(
        self,
        module: _Module,
        qualname: str,
        func: ast.FunctionDef,
        index: _ModuleIndex,
    ) -> None:
        self.module = module
        self.qualname = qualname
        self.func = func
        self.index = index
        self.class_name = qualname.split(".")[0] if "." in qualname else None
        self.mutable_globals = _mutable_module_globals(module)
        self.diagnostics: List[Diagnostic] = []
        #: (module, qualname) pairs this function calls.
        self.edges: Set[Tuple[Path, str]] = set()
        #: local variable -> (module path, class name) from constructor.
        self._var_types: Dict[str, Tuple[Path, str]] = {}
        #: local names bound to set-typed values (WS003 tracking).
        self._set_vars: Set[str] = set()
        #: local names bound to whole in-memory traces (WS004 tracking).
        self._trace_vars: Set[str] = set()
        self._globals_declared: Set[str] = set()

    # -- reporting ---------------------------------------------------------

    def _report(self, code: str, message: str, node: ast.AST) -> None:
        line = getattr(node, "lineno", 0)
        if line in self.module.suppressed:
            return
        self.diagnostics.append(Diagnostic(
            code=code, severity=ERROR, message=message,
            location=f"{self.module.path}:{line}",
        ))

    def _report_global_mutation(self, name: str, how: str, node: ast.AST) -> None:
        if name in WORKER_SAFE_GLOBALS:
            return
        self._report(
            "WS001",
            f"{how} mutates module-level global {name!r} inside "
            f"{self.qualname}(), which is reachable from the worker "
            "entry points: per-process state diverges across the pool",
            node,
        )

    # -- scope bookkeeping -------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self._globals_declared.update(node.names)
        self.generic_visit(node)

    def _is_module_global(self, name: str) -> bool:
        return name in self.mutable_globals or name in self._globals_declared

    def _note_bindings(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            resolved = self._resolve_class(value.func.id)
            if resolved is not None:
                self._var_types[target.id] = resolved
        if isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        ):
            self._set_vars.add(target.id)
        elif target.id in self._set_vars:
            self._set_vars.discard(target.id)
        if isinstance(value, ast.Call) and (
            (
                isinstance(value.func, ast.Name)
                and value.func.id in _TRACE_FACTORIES
            )
            or (
                isinstance(value.func, ast.Attribute)
                and value.func.attr == "whole"
            )
        ):
            self._trace_vars.add(target.id)
        elif target.id in self._trace_vars:
            self._trace_vars.discard(target.id)

    # -- WS001: module-global mutation -------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_bindings(target, node.value)
            if isinstance(target, ast.Name) \
                    and target.id in self._globals_declared:
                self._report_global_mutation(target.id, "assignment", node)
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                root = _root_name(target)
                if root is not None and self._is_module_global(root):
                    self._report_global_mutation(root, "item/attribute store", node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        root = _root_name(node.target)
        if root is not None and (
            self._is_module_global(root)
            if not isinstance(node.target, ast.Name)
            else root in self._globals_declared
        ):
            self._report_global_mutation(root, "augmented assignment", node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            root = _root_name(target)
            if root is not None and self._is_module_global(root) \
                    and not isinstance(target, ast.Name):
                self._report_global_mutation(root, "deletion", node)
        self.generic_visit(node)

    # -- calls: WS001 mutators, WS002 submissions, reach edges -------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            root = _root_name(func.value)
            if func.attr in _MUTATORS and root is not None \
                    and self._is_module_global(root) \
                    and isinstance(func.value, ast.Name):
                self._report_global_mutation(
                    root, f".{func.attr}() call", node
                )
            if func.attr in _SUBMIT_METHODS:
                self._check_submission(node)
            self._edge_for_attribute_call(func)
        elif isinstance(func, ast.Name):
            self._edge_for_name(func.id)
        # Bare function references passed as arguments (submit targets,
        # callbacks) count as reachable too.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name):
                self._edge_for_name(arg.id, reference_only=True)
        self.generic_visit(node)

    def _check_submission(self, node: ast.Call) -> None:
        nested = {
            child.name
            for child in ast.walk(self.func)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not self.func
        }
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                self._report(
                    "WS002",
                    f"lambda passed to .{node.func.attr}(): closures do "
                    "not pickle across the process pool; submit a "
                    "module-level function instead",
                    arg,
                )
            elif isinstance(arg, ast.Name) and arg.id in nested:
                self._report(
                    "WS002",
                    f"nested function {arg.id!r} passed to "
                    f".{node.func.attr}(): locally defined functions do "
                    "not pickle across the process pool; hoist it to "
                    "module level",
                    arg,
                )
            elif isinstance(arg, ast.Attribute) and arg.attr == "trace":
                self._report(
                    "WS004",
                    f"whole trace ('.{arg.attr}' attribute) passed to "
                    f".{node.func.attr}(): every submit re-pickles the "
                    "full column arrays into each worker; ship the "
                    "spill path or a shared-memory segment name and "
                    "window span instead",
                    arg,
                )
            elif isinstance(arg, ast.Name) and arg.id in self._trace_vars:
                self._report(
                    "WS004",
                    f"whole in-memory trace {arg.id!r} passed to "
                    f".{node.func.attr}(): every submit re-pickles the "
                    "full column arrays into each worker; ship the "
                    "spill path or a shared-memory segment name and "
                    "window span instead",
                    arg,
                )

    def _resolve_class(self, name: str) -> Optional[Tuple[Path, str]]:
        if name in self.module.classes:
            return (self.module.path, name)
        imported = self.module.imports.get(name)
        if imported is not None and imported[0] == "member":
            target = self.index.load_dotted(imported[1])
            if target is not None and imported[2] in target.classes:
                return (target.path, imported[2])
        return None

    def _edge_for_name(self, name: str, reference_only: bool = False) -> None:
        if name in self.module.functions:
            self.edges.add((self.module.path, name))
            return
        imported = self.module.imports.get(name)
        if imported is not None and imported[0] == "member":
            target = self.index.load_dotted(imported[1])
            if target is not None and imported[2] in target.functions:
                self.edges.add((target.path, imported[2]))
                return
        if reference_only:
            return
        resolved = self._resolve_class(name)
        if resolved is not None:
            path, class_name = resolved
            self.edges.add((path, f"{class_name}.__init__"))

    def _edge_for_attribute_call(self, func: ast.Attribute) -> None:
        if not isinstance(func.value, ast.Name):
            return
        base = func.value.id
        if base == "self" and self.class_name is not None:
            self.edges.add((self.module.path, f"{self.class_name}.{func.attr}"))
            return
        if base in self._var_types:
            path, class_name = self._var_types[base]
            self.edges.add((path, f"{class_name}.{func.attr}"))
            return
        imported = self.module.imports.get(base)
        if imported is not None and imported[0] == "module":
            target = self.index.load_dotted(imported[1])
            if target is not None and func.attr in target.functions:
                self.edges.add((target.path, func.attr))

    # -- WS003: set iteration ----------------------------------------------

    def _is_set_expression(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return isinstance(node, ast.Name) and node.id in self._set_vars

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if self._is_set_expression(iter_node):
            self._report(
                "WS003",
                "iteration over a set in worker-reachable code: "
                "per-process hash seeding reorders it, so two workers "
                "can disagree; sort it first",
                iter_node,
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_container(self, node) -> None:
        for comprehension in node.generators:
            self._check_iteration(comprehension.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_container
    visit_SetComp = _visit_comprehension_container
    visit_DictComp = _visit_comprehension_container
    visit_GeneratorExp = _visit_comprehension_container


def _lookup(module: _Module, qualname: str) -> Optional[ast.FunctionDef]:
    if "." in qualname:
        class_name, method = qualname.split(".", 1)
        return module.classes.get(class_name, {}).get(method)
    return module.functions.get(qualname)


def analyze_worker_safety(
    entry_path: Optional[str] = None,
    entry_functions: Sequence[str] = DEFAULT_ENTRY[1],
    package_root: Optional[str] = None,
) -> List[Diagnostic]:
    """WS001/WS002/WS003 over everything reachable from the entry points.

    Args:
        entry_path: Module file holding the worker entry points
            (default: the installed ``repro/analysis/parallel.py``).
        entry_functions: Names of the entry functions within it.
        package_root: ``src``-style root used to resolve ``repro.*``
            imports (default: the installed package's parent).
    """
    root = Path(package_root) if package_root else _default_package_root()
    index = _ModuleIndex(root)
    entry_file = (
        Path(entry_path)
        if entry_path
        else root / Path(*DEFAULT_ENTRY[0].split(".")).with_suffix(".py")
    )
    entry_module = index.load(entry_file)
    if entry_module is None:
        return [Diagnostic(
            code="WS000", severity=ERROR,
            message="worker entry module failed to parse; worker safety "
                    "not analysable",
            location=f"{entry_file}:0",
        )]

    diagnostics: List[Diagnostic] = []
    queue: deque = deque()
    for name in entry_functions:
        if _lookup(entry_module, name) is None:
            diagnostics.append(Diagnostic(
                code="WS000", severity=ERROR,
                message=f"worker entry point {name!r} not found",
                location=f"{entry_file}:0",
            ))
        else:
            queue.append((entry_module.path.resolve(), name))

    # Only the default analysis seeds the kernel modules: an explicit
    # --workers-entry (the CI negative gate, fixture scans) asks for
    # exactly that entry's reachability, nothing more.
    if entry_path is None:
        for dotted in KERNEL_ENTRY_MODULES:
            kernel_file = root / Path(*dotted.split(".")).with_suffix(".py")
            kernel_module = index.load(kernel_file)
            if kernel_module is None:
                continue
            for name in sorted(kernel_module.functions):
                if name.startswith("simulate_"):
                    queue.append((kernel_module.path.resolve(), name))

    visited: Set[Tuple[Path, str]] = set()
    scanned_modules: Set[Path] = set()
    while queue:
        key = queue.popleft()
        if key in visited:
            continue
        visited.add(key)
        path, qualname = key
        module = index.load(path)
        if module is None:
            continue
        func = _lookup(module, qualname)
        if func is None:
            continue
        scan = _FunctionScan(module, qualname, func, index)
        for statement in func.body:
            scan.visit(statement)
        diagnostics.extend(scan.diagnostics)
        scanned_modules.add(module.path)
        for edge in sorted(scan.edges):
            if edge not in visited:
                queue.append(edge)

    # WS002/WS004 are parent-side hazards (submission happens in the
    # scheduler, not the workers), so scan every visited module's
    # remaining functions for bad submissions too.
    for path in sorted(scanned_modules):
        module = index.load(path)
        if module is None:
            continue
        all_functions = dict(module.functions)
        for class_name, methods in module.classes.items():
            for method_name, method in methods.items():
                all_functions[f"{class_name}.{method_name}"] = method
        for qualname, func in sorted(all_functions.items()):
            if (path, qualname) in visited:
                continue
            scan = _FunctionScan(module, qualname, func, index)
            for statement in func.body:
                scan.visit(statement)
            diagnostics.extend(
                diag for diag in scan.diagnostics
                if diag.code in ("WS002", "WS004")
            )
    return sort_diagnostics(diagnostics)
