"""Declaration-soundness pass: prove ``requires=`` and cache-key
projections match what the code actually does.

The planner (:func:`repro.plan.build_plan`) schedules only the
simulation tasks an experiment declares via ``@register(...,
requires=)``, and the sweep deduper shares cached bitmaps across sweep
points whenever :data:`repro.analysis.config.TASK_CONFIG_FIELDS` says a
swept field cannot affect a task.  Both are *declarations*; nothing at
runtime verifies them against the code.  A stale declaration therefore
fails silently -- either as phantom planned work, or (far worse) as a
wrong cached result served across a sweep.  This pass closes that gap
statically, from the AST alone: it never imports the analysed modules.

Sub-pass A -- experiment dependency soundness
---------------------------------------------

For every runner registered with a literal ``requires=`` tuple, infer
the simulation products the runner body actually consumes:

* ``lab.correct("gshare")`` / ``lab.accuracy("gshare")`` consume the
  named task's correctness bitmap;
* ``lab.selective_correct(...)`` / ``lab.selective_accuracy(...)`` /
  ``lab.selections(...)`` / ``lab.correlation_data()`` all consume the
  ``correlation`` collection (selective products are derived from it);
* a lab (or the labs dict) passed to a helper -- module-local or
  imported from another ``repro.*`` module -- is resolved and the
  helper's body analysed the same way, transitively.

====== ===== ==========================================================
DS001  error task consumed but not declared: the plan never schedules
             its simulation, so plan-driven runs recompute it lazily
             in-process (or crash on an unprimable product).
DS002  warn  task declared but never consumed: every plan-driven run
             schedules phantom simulations for it.
DS003  error declared task name outside the plannable task set -- a
             typo or a retired task; the plan cannot prime it at all.
====== ===== ==========================================================

A runner that hands a lab to an unresolvable callee, or passes a
non-literal task name, is skipped (no DS001/DS002 for it): the
inference must never report a false mismatch.

Sub-pass B -- cache-key projection soundness
--------------------------------------------

For every task, derive the :class:`~repro.analysis.config.LabConfig`
fields its result is actually a function of -- the ``self.<field>``
reads of its factory method in ``analysis/config.py`` (transitively
through other ``LabConfig`` methods), plus the ``config.<field>`` reads
of :func:`repro.analysis.parallel.compute_task` itself -- and check the
``TASK_CONFIG_FIELDS`` projection against it.  Predictor ``__init__``
signatures (AST over ``predictors/*.py``) name the constructor
parameter each field feeds, so the diagnostic can say *where* the
dependency lands.

====== ===== ==========================================================
DS004  error projection misses a field the task reads: two sweep points
             differing only in that field share one cache entry --
             stale-result aliasing, the worst failure class we have.
DS005  warn  projection lists a field the task never reads: sweep
             points that could share an artefact recompute it (lost
             dedup; also fires when a task has no entry at all and
             falls back to the every-field projection).
====== ===== ==========================================================

The ``selective_{count}_{window}`` family is checked against
``_SELECTIVE_FIELDS``: its expected set is the fields read by
``LabConfig.selection_config`` -- minus ``selective_window``, which is
encoded in the task *name* and so needs no projection entry -- plus the
correlation collection's fields (selective products are fitted on it).

Suppress any finding with a ``check: ignore`` comment on the flagged
line, same as the lint pass.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.check.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    sort_diagnostics,
)

_SUPPRESS_MARKER = "check: ignore"

#: Lab methods whose first argument names the consumed simulation task.
_NAMED_CONSUMERS = frozenset({"correct", "accuracy"})

#: Lab methods that consume the correlation collection (directly or via
#: selective products derived from it).
_CORRELATION_CONSUMERS = frozenset({
    "correlation_data",
    "selections",
    "selective_accuracy",
    "selective_correct",
})

#: The pseudo-task the correlation consumers resolve to.
_CORRELATION = "correlation"

#: Recursion ceiling for helper resolution (cycle guard is separate).
_MAX_HELPER_DEPTH = 8


def _default_package_root() -> Path:
    import repro

    return Path(repro.__file__).parent.parent


def _repro_path(package_root: Path, dotted: str) -> Optional[Path]:
    """File for a ``repro.*`` dotted module under ``package_root``."""
    if not dotted.startswith("repro"):
        return None
    candidate = package_root.joinpath(*dotted.split("."))
    if candidate.is_dir():
        candidate = candidate / "__init__.py"
    else:
        candidate = candidate.with_suffix(".py")
    return candidate if candidate.is_file() else None


def _suppressed_lines(source: str) -> Set[int]:
    return {
        number
        for number, line in enumerate(source.splitlines(), start=1)
        if _SUPPRESS_MARKER in line
    }


class _Module:
    """One parsed module: functions, imports, and suppression lines."""

    def __init__(self, path: Path) -> None:
        self.path = path
        source = path.read_text(encoding="utf-8")
        self.tree = ast.parse(source, filename=str(path))
        self.suppressed = _suppressed_lines(source)
        self.functions: Dict[str, ast.FunctionDef] = {}
        #: class name -> {method name -> def} (used by the workers pass).
        self.classes: Dict[str, Dict[str, ast.FunctionDef]] = {}
        #: local name -> ("module", dotted) or ("member", dotted, name)
        self.imports: Dict[str, tuple] = {}
        for node in self.tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = {
                    member.name: member
                    for member in node.body
                    if isinstance(member, ast.FunctionDef)
                }
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = ("module", alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = ("member", node.module, alias.name)


class _ModuleIndex:
    """Lazy loader/cache of parsed modules keyed by file path."""

    def __init__(self, package_root: Path) -> None:
        self.package_root = package_root
        self._by_path: Dict[Path, Optional[_Module]] = {}

    def load(self, path: Path) -> Optional[_Module]:
        path = path.resolve()
        if path not in self._by_path:
            try:
                self._by_path[path] = _Module(path)
            except (OSError, SyntaxError):
                self._by_path[path] = None
        return self._by_path[path]

    def load_dotted(self, dotted: str) -> Optional[_Module]:
        path = _repro_path(self.package_root, dotted)
        return self.load(path) if path is not None else None


# ---------------------------------------------------------------------------
# Sub-pass A: requires= soundness
# ---------------------------------------------------------------------------


class _Consumption:
    """Accumulated lab usage of one function (and its helpers)."""

    def __init__(self) -> None:
        self.tasks: Set[str] = set()
        #: True when a lab escaped analysis (dynamic task name, lab
        #: handed to an unresolvable callee): suppress DS001/DS002.
        self.opaque = False

    def merge(self, other: "_Consumption") -> None:
        self.tasks |= other.tasks
        self.opaque = self.opaque or other.opaque


class _LabFlow(ast.NodeVisitor):
    """Intra-function dataflow: which names hold labs / the labs dict."""

    def __init__(
        self,
        analyzer: "_RequiresAnalyzer",
        module: _Module,
        func: ast.FunctionDef,
        lab_params: FrozenSet[str],
        labs_params: FrozenSet[str],
        depth: int,
    ) -> None:
        self.analyzer = analyzer
        self.module = module
        self.func = func
        self.labs: Set[str] = set(lab_params)
        self.labs_dicts: Set[str] = set(labs_params)
        self.depth = depth
        self.result = _Consumption()

    # -- name tracking -----------------------------------------------------

    def _is_labs_dict(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in self.labs_dicts

    def _is_lab(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id in self.labs:
            return True
        # labs["gcc"] is a lab.
        return isinstance(node, ast.Subscript) and self._is_labs_dict(node.value)

    def _bind(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        if self._is_lab(value):
            self.labs.add(target.id)
        elif self._is_labs_dict(value):
            self.labs_dicts.add(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._bind(target, node.value)
        self.generic_visit(node)

    def _bind_loop_target(self, target: ast.expr, iter_node: ast.expr) -> None:
        """``for name, lab in labs.items()`` / ``for lab in labs.values()``."""
        if not (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and self._is_labs_dict(iter_node.func.value)
        ):
            return
        method = iter_node.func.attr
        if method == "values" and isinstance(target, ast.Name):
            self.labs.add(target.id)
        elif method == "items" and isinstance(target, ast.Tuple) \
                and len(target.elts) == 2 \
                and isinstance(target.elts[1], ast.Name):
            self.labs.add(target.elts[1].id)

    def visit_For(self, node: ast.For) -> None:
        self._bind_loop_target(node.target, node.iter)
        self.generic_visit(node)

    def _visit_comprehension_container(self, node) -> None:
        # Bind the comprehension targets *before* visiting the element
        # expressions: ``{n: helper(lab) for n, lab in labs.items()}``
        # reads ``lab`` ahead of its (syntactic) binding site.
        for comprehension in node.generators:
            self._bind_loop_target(comprehension.target, comprehension.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_container
    visit_SetComp = _visit_comprehension_container
    visit_DictComp = _visit_comprehension_container
    visit_GeneratorExp = _visit_comprehension_container

    # -- consumption -------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and self._is_lab(func.value):
            self._consume_lab_method(node, func.attr)
        else:
            lab_positions = tuple(
                index for index, arg in enumerate(node.args)
                if self._is_lab(arg)
            )
            labs_positions = tuple(
                index for index, arg in enumerate(node.args)
                if self._is_labs_dict(arg)
            )
            by_keyword = any(
                self._is_lab(keyword.value) or self._is_labs_dict(keyword.value)
                for keyword in node.keywords
            )
            if by_keyword:
                # Keyword-passed labs are rare enough not to model;
                # treat the runner as unanalysable rather than guess.
                self.result.opaque = True
            elif lab_positions or labs_positions:
                self._consume_helper(node, lab_positions, labs_positions)
        self.generic_visit(node)

    def _consume_lab_method(self, node: ast.Call, method: str) -> None:
        if method in _CORRELATION_CONSUMERS:
            self.result.tasks.add(_CORRELATION)
        elif method in _NAMED_CONSUMERS:
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                self.result.tasks.add(node.args[0].value)
            else:
                self.result.opaque = True

    def _consume_helper(
        self,
        node: ast.Call,
        lab_positions: Tuple[int, ...],
        labs_positions: Tuple[int, ...],
    ) -> None:
        resolved = self.analyzer.resolve_callee(self.module, node.func)
        if resolved is None:
            self.result.opaque = True
            return
        module, helper = resolved
        self.result.merge(
            self.analyzer.analyze_helper(
                module, helper, lab_positions, labs_positions, self.depth + 1
            )
        )


class _RequiresAnalyzer:
    """Infers per-runner task consumption across helper boundaries."""

    def __init__(self, index: _ModuleIndex) -> None:
        self.index = index
        self._memo: Dict[tuple, _Consumption] = {}
        self._in_progress: Set[tuple] = set()

    def resolve_callee(
        self, module: _Module, func: ast.expr
    ) -> Optional[Tuple[_Module, ast.FunctionDef]]:
        """The (module, def) a call target names, when statically known."""
        if isinstance(func, ast.Name):
            if func.id in module.functions:
                return module, module.functions[func.id]
            imported = module.imports.get(func.id)
            if imported is not None and imported[0] == "member":
                target = self.index.load_dotted(imported[1])
                if target is not None and imported[2] in target.functions:
                    return target, target.functions[imported[2]]
        elif isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name):
            imported = module.imports.get(func.value.id)
            if imported is not None and imported[0] == "module":
                target = self.index.load_dotted(imported[1])
                if target is not None and func.attr in target.functions:
                    return target, target.functions[func.attr]
        return None

    def analyze_function(
        self,
        module: _Module,
        func: ast.FunctionDef,
        lab_params: FrozenSet[str],
        labs_params: FrozenSet[str],
        depth: int = 0,
    ) -> _Consumption:
        key = (module.path, func.name, lab_params, labs_params)
        if key in self._memo:
            return self._memo[key]
        if key in self._in_progress or depth > _MAX_HELPER_DEPTH:
            # Recursive helper chain (or a pathological one): give up
            # on this branch conservatively.
            escaped = _Consumption()
            escaped.opaque = True
            return escaped
        self._in_progress.add(key)
        try:
            flow = _LabFlow(self, module, func, lab_params, labs_params, depth)
            for statement in func.body:
                flow.visit(statement)
            self._memo[key] = flow.result
            return flow.result
        finally:
            self._in_progress.discard(key)

    def analyze_helper(
        self,
        module: _Module,
        func: ast.FunctionDef,
        lab_positions: Tuple[int, ...],
        labs_positions: Tuple[int, ...],
        depth: int,
    ) -> _Consumption:
        params = [arg.arg for arg in func.args.args]
        lab_params = frozenset(
            params[index] for index in lab_positions if index < len(params)
        )
        labs_params = frozenset(
            params[index] for index in labs_positions if index < len(params)
        )
        if (lab_positions and not lab_params) or \
                (labs_positions and not labs_params):
            # A lab landed in *args or vanished: analysis lost track.
            escaped = _Consumption()
            escaped.opaque = True
            return escaped
        return self.analyze_function(
            module, func, lab_params, labs_params, depth
        )


def _registered_runners(
    module: _Module,
) -> List[Tuple[str, Optional[Tuple[str, ...]], ast.FunctionDef, int]]:
    """``(experiment_id, requires-or-None, runner, decorator line)``."""
    runners = []
    for func in module.functions.values():
        for decorator in func.decorator_list:
            if not (isinstance(decorator, ast.Call)
                    and isinstance(decorator.func, ast.Name)
                    and decorator.func.id == "register"):
                continue
            if not (decorator.args
                    and isinstance(decorator.args[0], ast.Constant)
                    and isinstance(decorator.args[0].value, str)):
                continue
            experiment_id = decorator.args[0].value
            requires: Optional[Tuple[str, ...]] = None
            for keyword in decorator.keywords:
                if keyword.arg != "requires":
                    continue
                if isinstance(keyword.value, (ast.Tuple, ast.List)) and all(
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                    for element in keyword.value.elts
                ):
                    requires = tuple(
                        element.value for element in keyword.value.elts
                    )
            runners.append((experiment_id, requires, func, decorator.lineno))
    return runners


def _runner_labs_param(func: ast.FunctionDef) -> Optional[str]:
    """The runner's labs-dict parameter (first positional argument)."""
    if func.args.args:
        return func.args.args[0].arg
    return None


def _known_sim_tasks(parallel_module: _Module) -> Tuple[str, ...]:
    """The plannable task set: ``DEFAULT_TASKS`` parsed from the AST."""
    for node in parallel_module.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "DEFAULT_TASKS":
                if isinstance(value, (ast.Tuple, ast.List)):
                    names = []
                    for element in value.elts:
                        if isinstance(element, ast.Constant) \
                                and isinstance(element.value, str):
                            names.append(element.value)
                        elif isinstance(element, ast.Name) \
                                and element.id == "CORRELATION_TASK":
                            names.append(_CORRELATION)
                    return tuple(names)
    return ()


def analyze_requires(
    experiments_root: Optional[str] = None,
    parallel_path: Optional[str] = None,
    package_root: Optional[str] = None,
) -> List[Diagnostic]:
    """DS001/DS002/DS003 over every registered runner under a directory.

    Args:
        experiments_root: Directory of experiment modules (default: the
            installed ``repro/experiments``).
        parallel_path: The scheduler module defining ``DEFAULT_TASKS``
            (default: the installed ``repro/analysis/parallel.py``).
        package_root: ``src``-style root used to resolve ``repro.*``
            helper imports (default: the installed package's parent).
    """
    root = Path(package_root) if package_root else _default_package_root()
    index = _ModuleIndex(root)
    experiments_dir = (
        Path(experiments_root)
        if experiments_root
        else root / "repro" / "experiments"
    )
    parallel_file = (
        Path(parallel_path)
        if parallel_path
        else root / "repro" / "analysis" / "parallel.py"
    )
    parallel_module = index.load(parallel_file)
    known_tasks = (
        _known_sim_tasks(parallel_module) if parallel_module else ()
    )
    analyzer = _RequiresAnalyzer(index)

    diagnostics: List[Diagnostic] = []
    for path in sorted(experiments_dir.glob("*.py")):
        module = index.load(path)
        if module is None:
            diagnostics.append(Diagnostic(
                code="DS000", severity=ERROR,
                message="module failed to parse; dependency soundness "
                        "not analysable",
                location=f"{path}:0",
            ))
            continue
        for experiment_id, requires, func, line in _registered_runners(module):
            if line in module.suppressed:
                continue
            location = f"{path}:{line}"
            if requires is None:
                continue  # falls back to the full default set: always sound
            for name in requires:
                if known_tasks and name not in known_tasks:
                    diagnostics.append(Diagnostic(
                        code="DS003", severity=ERROR,
                        message=(
                            f"experiment {experiment_id!r} declares "
                            f"requires={name!r}, which is not a plannable "
                            f"simulation task (known: "
                            f"{', '.join(known_tasks)}); selective "
                            "products are derived from 'correlation'"
                        ),
                        location=location,
                    ))
            labs_param = _runner_labs_param(func)
            if labs_param is None:
                continue
            consumption = analyzer.analyze_function(
                module, func, frozenset(), frozenset({labs_param})
            )
            if consumption.opaque:
                continue  # inference incomplete: never report a mismatch
            declared = set(requires)
            for name in sorted(consumption.tasks - declared):
                diagnostics.append(Diagnostic(
                    code="DS001", severity=ERROR,
                    message=(
                        f"experiment {experiment_id!r} consumes task "
                        f"{name!r} (via lab accesses in its runner) but "
                        f"requires= does not declare it: plan-driven runs "
                        "will not schedule its simulation"
                    ),
                    location=location,
                ))
            known = set(known_tasks) if known_tasks else declared
            for name in sorted((declared & known) - consumption.tasks):
                diagnostics.append(Diagnostic(
                    code="DS002", severity=WARNING,
                    message=(
                        f"experiment {experiment_id!r} declares "
                        f"requires={name!r} but its runner never consumes "
                        "it: every plan schedules phantom work"
                    ),
                    location=location,
                ))
    return sort_diagnostics(diagnostics)


# ---------------------------------------------------------------------------
# Sub-pass B: TASK_CONFIG_FIELDS projection soundness
# ---------------------------------------------------------------------------


class _ConfigClassInfo:
    """LabConfig parsed from the AST: fields and per-method field reads."""

    def __init__(self, class_def: ast.ClassDef) -> None:
        self.class_def = class_def
        self.fields: Tuple[str, ...] = tuple(
            node.target.id
            for node in class_def.body
            if isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
        )
        self.methods: Dict[str, ast.FunctionDef] = {
            node.name: node
            for node in class_def.body
            if isinstance(node, ast.FunctionDef)
        }
        self._reads_memo: Dict[str, FrozenSet[str]] = {}

    def method_reads(self, method: str) -> FrozenSet[str]:
        """Config fields a method reads, transitively through ``self``."""
        return self._reads(method, ())

    def _reads(self, method: str, stack: Tuple[str, ...]) -> FrozenSet[str]:
        if method in self._reads_memo:
            return self._reads_memo[method]
        if method in stack or method not in self.methods:
            return frozenset()
        reads: Set[str] = set()
        for node in ast.walk(self.methods[method]):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                if node.attr in self.fields:
                    reads.add(node.attr)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "self":
                reads |= self._reads(node.func.attr, stack + (method,))
        result = frozenset(reads)
        self._reads_memo[method] = result
        return result

    def factory_constructor(self, method: str) -> Optional[str]:
        """Class name the factory returns an instance of, if literal."""
        definition = self.methods.get(method)
        if definition is None:
            return None
        for node in ast.walk(definition):
            if isinstance(node, ast.Return) \
                    and isinstance(node.value, ast.Call) \
                    and isinstance(node.value.func, ast.Name):
                return node.value.func.id
        return None


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _literal_str_dict(tree: ast.Module, name: str) -> Optional[Dict[str, tuple]]:
    """A module-level ``{str: (str, ...)}`` literal, with its line."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == name \
                    and isinstance(node.value, ast.Dict):
                parsed: Dict[str, tuple] = {}
                lines: Dict[str, int] = {}
                for key, value in zip(node.value.keys, node.value.values):
                    if not (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)):
                        return None
                    if not isinstance(value, (ast.Tuple, ast.List)):
                        return None
                    elements = []
                    for element in value.elts:
                        if not (isinstance(element, ast.Constant)
                                and isinstance(element.value, str)):
                            return None
                        elements.append(element.value)
                    parsed[key.value] = tuple(elements)
                    lines[key.value] = key.lineno
                parsed["__lines__"] = lines  # type: ignore[assignment]
                return parsed
    return None


def _literal_str_tuple(
    tree: ast.Module, name: str
) -> Optional[Tuple[Tuple[str, ...], int]]:
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == name \
                    and isinstance(node.value, (ast.Tuple, ast.List)):
                elements = []
                for element in node.value.elts:
                    if not (isinstance(element, ast.Constant)
                            and isinstance(element.value, str)):
                        return None
                    elements.append(element.value)
                return tuple(elements), node.lineno
    return None


def _compute_task_reads(
    parallel_module: _Module, fields: Sequence[str]
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """``(correlation reads, general reads)`` of ``compute_task``.

    Reads on the ``config`` parameter inside the ``task ==
    CORRELATION_TASK`` branch (which returns) belong to the correlation
    task alone; reads outside it apply to every other task.
    """
    func = parallel_module.functions.get("compute_task")
    if func is None:
        return frozenset(), frozenset()
    params = [arg.arg for arg in func.args.args]
    config_param = "config" if "config" in params else (
        params[1] if len(params) > 1 else None
    )
    if config_param is None:
        return frozenset(), frozenset()

    def reads_in(nodes: Sequence[ast.stmt]) -> Set[str]:
        found: Set[str] = set()
        for statement in nodes:
            for node in ast.walk(statement):
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == config_param \
                        and node.attr in fields:
                    found.add(node.attr)
        return found

    def mentions_correlation(node: ast.expr) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id == "CORRELATION_TASK":
                return True
            if isinstance(child, ast.Constant) \
                    and child.value == _CORRELATION:
                return True
        return False

    correlation: Set[str] = set()
    general: Set[str] = set()
    for statement in func.body:
        if isinstance(statement, ast.If) \
                and mentions_correlation(statement.test):
            correlation |= reads_in(statement.body)
            general |= reads_in(statement.orelse)
        else:
            general |= reads_in([statement])
    return frozenset(correlation), frozenset(general)


def _predictor_init_params(
    predictors_dir: Path,
) -> Dict[str, Tuple[str, ...]]:
    """Class name -> ``__init__`` parameter names (AST, best effort)."""
    signatures: Dict[str, Tuple[str, ...]] = {}
    if not predictors_dir.is_dir():
        return signatures
    for path in sorted(predictors_dir.glob("*.py")):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            continue
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for member in node.body:
                if isinstance(member, ast.FunctionDef) \
                        and member.name == "__init__":
                    signatures[node.name] = tuple(
                        arg.arg for arg in member.args.args[1:]
                    )
    return signatures


def analyze_projections(
    config_path: Optional[str] = None,
    parallel_path: Optional[str] = None,
    predictors_root: Optional[str] = None,
) -> List[Diagnostic]:
    """DS003/DS004/DS005 over the ``TASK_CONFIG_FIELDS`` projection.

    Args:
        config_path: The config module defining ``LabConfig`` and
            ``TASK_CONFIG_FIELDS`` (default: the installed
            ``repro/analysis/config.py``).
        parallel_path: The scheduler module defining ``_FACTORY_ATTRS``
            and ``compute_task`` (default: installed).
        predictors_root: Directory of predictor modules used to name
            constructor parameters in messages (default: installed).
    """
    root = _default_package_root()
    config_file = (
        Path(config_path) if config_path
        else root / "repro" / "analysis" / "config.py"
    )
    parallel_file = (
        Path(parallel_path) if parallel_path
        else root / "repro" / "analysis" / "parallel.py"
    )
    predictors_dir = (
        Path(predictors_root) if predictors_root
        else root / "repro" / "predictors"
    )
    index = _ModuleIndex(root)
    config_module = index.load(config_file)
    parallel_module = index.load(parallel_file)
    diagnostics: List[Diagnostic] = []
    if config_module is None or parallel_module is None:
        return [Diagnostic(
            code="DS000", severity=ERROR,
            message="config/parallel module failed to parse; projection "
                    "soundness not analysable",
            location=f"{config_file}:0",
        )]

    class_def = _find_class(config_module.tree, "LabConfig")
    projection = _literal_str_dict(config_module.tree, "TASK_CONFIG_FIELDS")
    if class_def is None or projection is None:
        return [Diagnostic(
            code="DS000", severity=ERROR,
            message="LabConfig class or TASK_CONFIG_FIELDS literal not "
                    "found; projection soundness not analysable",
            location=f"{config_file}:0",
        )]
    lines: Dict[str, int] = projection.pop("__lines__")  # type: ignore
    info = _ConfigClassInfo(class_def)
    factory_attrs = _literal_flat_dict(parallel_module.tree, "_FACTORY_ATTRS")
    correlation_reads, general_reads = _compute_task_reads(
        parallel_module, info.fields
    )
    signatures = _predictor_init_params(predictors_dir)

    def constructor_note(attr: str) -> str:
        constructor = info.factory_constructor(attr)
        if constructor and constructor in signatures:
            params = ", ".join(signatures[constructor]) or "no parameters"
            return f" (factory feeds {constructor}({params}))"
        return ""

    # Expected field set per computable task.
    expected: Dict[str, FrozenSet[str]] = {}
    for task, attr in sorted(factory_attrs.items()):
        expected[task] = info.method_reads(attr) | general_reads
    expected["fixed_best"] = general_reads
    expected[_CORRELATION] = correlation_reads

    for task in sorted(set(expected) | (set(projection) - {"__lines__"})):
        location = f"{config_file}:{lines.get(task, class_def.lineno)}"
        if location.rsplit(":", 1)[1].isdigit() \
                and int(location.rsplit(":", 1)[1]) in config_module.suppressed:
            continue
        if task not in expected:
            diagnostics.append(Diagnostic(
                code="DS003", severity=ERROR,
                message=(
                    f"TASK_CONFIG_FIELDS names {task!r}, which no factory "
                    "or scheduler path computes: a stale or misspelled "
                    "task entry"
                ),
                location=location,
            ))
            continue
        if task not in projection:
            diagnostics.append(Diagnostic(
                code="DS005", severity=WARNING,
                message=(
                    f"task {task!r} has no TASK_CONFIG_FIELDS entry; the "
                    "conservative every-field fallback keeps results "
                    "correct but defeats sweep dedup for it"
                ),
                location=f"{config_file}:{class_def.lineno}",
            ))
            continue
        declared = set(projection[task])
        attr = factory_attrs.get(task, "")
        for name in sorted(expected[task] - declared):
            diagnostics.append(Diagnostic(
                code="DS004", severity=ERROR,
                message=(
                    f"task {task!r} reads LabConfig.{name} but the "
                    "projection omits it: sweep points differing only in "
                    f"{name} alias one cache entry and serve stale "
                    f"results{constructor_note(attr)}"
                ),
                location=location,
            ))
        for name in sorted(declared - expected[task]):
            diagnostics.append(Diagnostic(
                code="DS005", severity=WARNING,
                message=(
                    f"task {task!r} projects LabConfig.{name} but never "
                    "reads it: sweep points that could share its artefact "
                    "recompute it (lost dedup)"
                ),
                location=location,
            ))
        for name in sorted(declared - set(info.fields)):
            diagnostics.append(Diagnostic(
                code="DS003", severity=ERROR,
                message=(
                    f"task {task!r} projects {name!r}, which is not a "
                    "LabConfig field at all"
                ),
                location=location,
            ))

    # The selective_{count}_{window} family: window lives in the task
    # name, so its projection is the selection-config reads minus
    # selective_window, plus the correlation collection it is fit on.
    selective = _literal_str_tuple(config_module.tree, "_SELECTIVE_FIELDS")
    if selective is not None:
        declared_fields, line = selective
        if line not in config_module.suppressed:
            location = f"{config_file}:{line}"
            expected_selective = (
                (info.method_reads("selection_config") - {"selective_window"})
                | correlation_reads
            )
            declared = set(declared_fields)
            for name in sorted(expected_selective - declared):
                diagnostics.append(Diagnostic(
                    code="DS004", severity=ERROR,
                    message=(
                        f"selective tasks read LabConfig.{name} but "
                        "_SELECTIVE_FIELDS omits it: sweep points "
                        f"differing only in {name} alias one cache entry"
                    ),
                    location=location,
                ))
            for name in sorted(declared - expected_selective):
                diagnostics.append(Diagnostic(
                    code="DS005", severity=WARNING,
                    message=(
                        f"_SELECTIVE_FIELDS lists LabConfig.{name} but "
                        "selective tasks never read it (lost dedup)"
                    ),
                    location=location,
                ))
    return sort_diagnostics(diagnostics)


def _literal_flat_dict(tree: ast.Module, name: str) -> Dict[str, str]:
    """A module-level ``{str: str}`` literal (best effort)."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name \
                    and isinstance(value, ast.Dict):
                parsed = {}
                for key, element in zip(value.keys, value.values):
                    if isinstance(key, ast.Constant) \
                            and isinstance(key.value, str) \
                            and isinstance(element, ast.Constant) \
                            and isinstance(element.value, str):
                        parsed[key.value] = element.value
                return parsed
    return {}


def run_deps_pass(
    experiments_root: Optional[str] = None,
    config_path: Optional[str] = None,
    parallel_path: Optional[str] = None,
    package_root: Optional[str] = None,
) -> List[Diagnostic]:
    """Both sub-passes: requires= soundness plus projection soundness."""
    diagnostics = analyze_requires(
        experiments_root=experiments_root,
        parallel_path=parallel_path,
        package_root=package_root,
    )
    diagnostics.extend(analyze_projections(
        config_path=config_path,
        parallel_path=parallel_path,
    ))
    return sort_diagnostics(diagnostics)
