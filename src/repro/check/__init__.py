"""Static verification of workload IR, predictor contracts, and lint.

Three passes, none of which executes a workload or trains a predictor
on real experiment data:

``repro.check.ir``
    Walks a :class:`~repro.workloads.program.Program` without running
    it: control-flow reachability, address layout, branch-direction
    conventions, trip-count bounds, and condition well-formedness.

``repro.check.contracts``
    Introspects every :class:`~repro.predictors.base.BranchPredictor`
    subclass and the ``repro.tools`` registry, and dynamically enforces
    the trace-driven regime (state-pure ``predict``, exactly one
    ``update`` per branch, deterministic replay) through
    :class:`~repro.check.contracts.ContractCheckedPredictor`.

``repro.check.lint``
    An AST pass over ``src/repro`` flagging determinism hazards:
    unseeded RNGs, float equality in accuracy math, and iteration over
    sets feeding trace or report output.

Run all three with ``python -m repro check`` (or ``repro-tools check``).
"""

from repro.check.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    CheckFailure,
    Diagnostic,
    format_diagnostics,
    has_errors,
)
from repro.check.contracts import (
    ContractCheckedPredictor,
    ContractViolation,
    check_determinism,
    check_predictor_classes,
    check_registry,
    run_contract_suite,
)
from repro.check.ir import (
    ProgramVerificationError,
    verify_program,
    verify_program_or_raise,
)
from repro.check.lint import lint_paths, lint_source

__all__ = [
    "CheckFailure",
    "ContractCheckedPredictor",
    "ContractViolation",
    "Diagnostic",
    "ERROR",
    "INFO",
    "ProgramVerificationError",
    "WARNING",
    "check_determinism",
    "check_predictor_classes",
    "check_registry",
    "format_diagnostics",
    "has_errors",
    "lint_paths",
    "lint_source",
    "run_contract_suite",
    "verify_program",
    "verify_program_or_raise",
]
