"""Static verification of workload IR, predictor contracts, and lint.

Five passes, none of which executes a workload or trains a predictor
on real experiment data:

``repro.check.ir``
    Walks a :class:`~repro.workloads.program.Program` without running
    it: control-flow reachability, address layout, branch-direction
    conventions, trip-count bounds, and condition well-formedness.

``repro.check.contracts``
    Introspects every :class:`~repro.predictors.base.BranchPredictor`
    subclass and the ``repro.tools`` registry, and dynamically enforces
    the trace-driven regime (state-pure ``predict``, exactly one
    ``update`` per branch, deterministic replay) through
    :class:`~repro.check.contracts.ContractCheckedPredictor`.

``repro.check.lint``
    An AST pass over ``src/repro`` flagging determinism hazards:
    unseeded RNGs, float equality in accuracy math, and iteration over
    sets feeding trace or report output.

``repro.check.deps``
    Declaration soundness (DS codes): proves every experiment's
    ``@register(..., requires=)`` tuple matches the sim products its
    runner actually consumes, and that the ``TASK_CONFIG_FIELDS``
    cache-key projection covers exactly the :class:`LabConfig` fields
    each task's factory and kernel read.

``repro.check.workers``
    Worker safety (WS codes): flags module-global mutation, unpicklable
    closures handed to pool submission, and unsorted set iteration in
    code reachable from the multiprocess ``compute_task`` entry points.

Run all five with ``python -m repro check`` (or ``repro-tools check``).
"""

from repro.check.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    CheckFailure,
    Diagnostic,
    format_diagnostics,
    has_errors,
)
from repro.check.contracts import (
    ContractCheckedPredictor,
    ContractViolation,
    check_determinism,
    check_predictor_classes,
    check_registry,
    run_contract_suite,
)
from repro.check.ir import (
    ProgramVerificationError,
    verify_program,
    verify_program_or_raise,
)
from repro.check.deps import (
    analyze_projections,
    analyze_requires,
    run_deps_pass,
)
from repro.check.lint import lint_paths, lint_source
from repro.check.workers import analyze_worker_safety

__all__ = [
    "CheckFailure",
    "ContractCheckedPredictor",
    "ContractViolation",
    "Diagnostic",
    "ERROR",
    "INFO",
    "ProgramVerificationError",
    "WARNING",
    "analyze_projections",
    "analyze_requires",
    "analyze_worker_safety",
    "check_determinism",
    "check_predictor_classes",
    "check_registry",
    "format_diagnostics",
    "has_errors",
    "lint_paths",
    "lint_source",
    "run_contract_suite",
    "run_deps_pass",
    "verify_program",
    "verify_program_or_raise",
]
