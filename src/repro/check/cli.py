"""``python -m repro check`` / ``repro-tools check``: run all passes.

Examples::

    python -m repro check                # all three passes
    python -m repro check ir lint        # a subset
    python -m repro check --trace-length 2000 --strict

Exit code 0 when no error-severity diagnostics were found, 1 otherwise
(``--strict`` also fails on warnings).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, List, Optional

from repro.check.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    format_diagnostics,
)

#: Pass names in execution order.
PASS_NAMES = ["ir", "contracts", "lint"]

#: Default dynamic trace length for the contract pass (small: the
#: state-digest wrapper makes every branch deliberately expensive).
DEFAULT_CONTRACT_TRACE_LENGTH = 400


def run_ir_pass() -> List[Diagnostic]:
    """Verify every benchmark program in the workload suite."""
    from repro.check.ir import verify_program
    from repro.workloads.generator import build_program
    from repro.workloads.suite import BENCHMARK_NAMES, benchmark_spec

    diagnostics: List[Diagnostic] = []
    for name in BENCHMARK_NAMES:
        program = build_program(benchmark_spec(name, length=1000).profile)
        diagnostics.extend(verify_program(program, name=name))
    return diagnostics


def run_contracts_pass(trace_length: int) -> List[Diagnostic]:
    """Introspective audits plus dynamic checks over the registry."""
    from repro.check.contracts import (
        check_predictor_classes,
        check_registry,
        run_contract_suite,
    )
    from repro.tools import PREDICTOR_REGISTRY
    from repro.workloads.suite import load_benchmark

    diagnostics = check_predictor_classes()
    diagnostics.extend(check_registry())
    trace = load_benchmark("compress", length=trace_length)
    for spec_name in sorted(PREDICTOR_REGISTRY):
        factory = PREDICTOR_REGISTRY[spec_name]
        try:
            factory()
        except Exception:  # already reported by check_registry
            continue
        diagnostics.extend(
            run_contract_suite(factory, trace, label=f"registry:{spec_name}")
        )
    return diagnostics


def run_lint_pass(root: Optional[str]) -> List[Diagnostic]:
    """Lint the package source tree for determinism hazards."""
    from repro.check.lint import lint_paths

    if root is None:
        import repro

        root = str(Path(repro.__file__).parent)
    return lint_paths([root])


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Static verification: workload IR programs, predictor "
            "contracts, and determinism lint."
        ),
    )
    parser.add_argument(
        "passes",
        nargs="*",
        default=[],
        metavar="{ir,contracts,lint}",
        help=f"which passes to run (default: {' '.join(PASS_NAMES)})",
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=DEFAULT_CONTRACT_TRACE_LENGTH,
        help="dynamic branches used by the contract pass "
             f"(default {DEFAULT_CONTRACT_TRACE_LENGTH})",
    )
    parser.add_argument(
        "--lint-root",
        default=None,
        help="directory linted by the lint pass (default: the installed "
             "repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings too, not just errors",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _parser()
    args = parser.parse_args(argv)
    unknown = [name for name in args.passes if name not in PASS_NAMES]
    if unknown:
        parser.error(
            f"unknown pass(es) {', '.join(map(repr, unknown))}; choose "
            f"from {', '.join(PASS_NAMES)}"
        )
    selected = list(dict.fromkeys(args.passes)) or PASS_NAMES

    results: Dict[str, List[Diagnostic]] = {}
    for pass_name in PASS_NAMES:
        if pass_name not in selected:
            continue
        if pass_name == "ir":
            print("ir: verifying workload suite programs...", flush=True)
            results["ir"] = run_ir_pass()
        elif pass_name == "contracts":
            print("contracts: auditing predictor classes and registry...",
                  flush=True)
            results["contracts"] = run_contracts_pass(args.trace_length)
        elif pass_name == "lint":
            print("lint: scanning source for determinism hazards...",
                  flush=True)
            results["lint"] = run_lint_pass(args.lint_root)

    errors = warnings = 0
    for pass_name, diagnostics in results.items():
        errors += sum(1 for d in diagnostics if d.severity == ERROR)
        warnings += sum(1 for d in diagnostics if d.severity == WARNING)
        if diagnostics:
            print(f"\n{pass_name} findings:")
            print(format_diagnostics(diagnostics))
    print(
        f"\ncheck: {len(results)} pass(es), {errors} error(s), "
        f"{warnings} warning(s)"
    )
    if errors or (args.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
