"""``python -m repro check`` / ``repro-tools check``: run all passes.

Examples::

    python -m repro check                # all five passes
    python -m repro check ir lint        # a subset
    python -m repro check deps workers --format json
    python -m repro check --trace-length 2000 --strict

Exit code 0 when no error-severity diagnostics were found, 1 otherwise
(``--strict`` also fails on warnings).  ``--format json`` prints one
machine-readable document on stdout; ``--github`` additionally emits
GitHub Actions ``::error``/``::warning`` workflow annotations.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.check.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    format_diagnostics,
)

#: Pass names in execution order.
PASS_NAMES = ["ir", "contracts", "lint", "deps", "workers"]

#: Default dynamic trace length for the contract pass (small: the
#: state-digest wrapper makes every branch deliberately expensive).
DEFAULT_CONTRACT_TRACE_LENGTH = 400


def run_ir_pass() -> List[Diagnostic]:
    """Verify every benchmark program in the workload suite."""
    from repro.check.ir import verify_program
    from repro.workloads.generator import build_program
    from repro.workloads.suite import BENCHMARK_NAMES, benchmark_spec

    diagnostics: List[Diagnostic] = []
    for name in BENCHMARK_NAMES:
        program = build_program(benchmark_spec(name, length=1000).profile)
        diagnostics.extend(verify_program(program, name=name))
    return diagnostics


def run_contracts_pass(trace_length: int) -> List[Diagnostic]:
    """Introspective audits plus dynamic checks over the registry."""
    from repro.check.contracts import (
        check_kernel_bindings,
        check_predictor_classes,
        check_registry,
        run_contract_suite,
    )
    from repro.tools import PREDICTOR_REGISTRY
    from repro.workloads.suite import load_benchmark

    diagnostics = check_predictor_classes()
    diagnostics.extend(check_registry())
    diagnostics.extend(check_kernel_bindings())
    trace = load_benchmark("compress", length=trace_length)
    for spec_name in sorted(PREDICTOR_REGISTRY):
        factory = PREDICTOR_REGISTRY[spec_name]
        try:
            factory()
        except Exception:  # already reported by check_registry
            continue
        diagnostics.extend(
            run_contract_suite(factory, trace, label=f"registry:{spec_name}")
        )
    return diagnostics


def run_lint_pass(root: Optional[str]) -> List[Diagnostic]:
    """Lint the package source tree for determinism hazards."""
    from repro.check.lint import lint_paths

    if root is None:
        import repro

        root = str(Path(repro.__file__).parent)
    return lint_paths([root])


def run_deps_pass_cli(
    experiments_root: Optional[str],
    config_path: Optional[str],
    parallel_path: Optional[str],
) -> List[Diagnostic]:
    """Declaration-soundness pass (DS codes) with CLI path overrides."""
    from repro.check.deps import run_deps_pass

    return run_deps_pass(
        experiments_root=experiments_root,
        config_path=config_path,
        parallel_path=parallel_path,
    )


def run_workers_pass_cli(entry: Optional[str]) -> List[Diagnostic]:
    """Worker-safety pass (WS codes); ``entry`` is ``PATH:fn1,fn2``."""
    from repro.check.workers import analyze_worker_safety

    if entry is None:
        return analyze_worker_safety()
    path, _, names = entry.partition(":")
    functions = tuple(n for n in names.split(",") if n) or None
    if functions is None:
        return analyze_worker_safety(entry_path=path)
    return analyze_worker_safety(entry_path=path, entry_functions=functions)


def diagnostics_to_json(results: Dict[str, List[Diagnostic]]) -> dict:
    """Machine-readable document for ``--format json`` and CI artifacts."""
    records = []
    for pass_name, diagnostics in results.items():
        for diag in diagnostics:
            file_part, _, line_part = diag.location.rpartition(":")
            records.append({
                "pass": pass_name,
                "code": diag.code,
                "severity": diag.severity,
                "message": diag.message,
                "location": diag.location,
                "file": file_part or diag.location,
                "line": int(line_part) if line_part.isdigit() else None,
            })
    errors = sum(1 for r in records if r["severity"] == ERROR)
    warnings = sum(1 for r in records if r["severity"] == WARNING)
    return {
        "passes": sorted(results),
        "errors": errors,
        "warnings": warnings,
        "diagnostics": records,
    }


def github_annotations(results: Dict[str, List[Diagnostic]]) -> List[str]:
    """``::error file=...,line=...`` workflow-command lines."""
    lines = []
    for record in diagnostics_to_json(results)["diagnostics"]:
        kind = "error" if record["severity"] == ERROR else "warning"
        where = f"file={record['file']}"
        if record["line"]:
            where += f",line={record['line']}"
        # Workflow commands terminate the message at a newline.
        message = record["message"].replace("\n", " ")
        lines.append(
            f"::{kind} {where},title={record['code']}::{message}"
        )
    return lines


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Static verification: workload IR programs, predictor "
            "contracts, determinism lint, declaration soundness, and "
            "worker safety."
        ),
    )
    parser.add_argument(
        "passes",
        nargs="*",
        default=[],
        metavar="{" + ",".join(PASS_NAMES) + "}",
        help=f"which passes to run (default: {' '.join(PASS_NAMES)})",
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=DEFAULT_CONTRACT_TRACE_LENGTH,
        help="dynamic branches used by the contract pass "
             f"(default {DEFAULT_CONTRACT_TRACE_LENGTH})",
    )
    parser.add_argument(
        "--lint-root",
        default=None,
        help="directory linted by the lint pass (default: the installed "
             "repro package)",
    )
    parser.add_argument(
        "--deps-experiments-root",
        default=None,
        help="experiment modules analysed by the deps pass (default: the "
             "installed repro.experiments package)",
    )
    parser.add_argument(
        "--deps-config",
        default=None,
        help="LabConfig module checked by the deps projection sub-pass "
             "(default: the installed repro.analysis.config)",
    )
    parser.add_argument(
        "--deps-parallel",
        default=None,
        help="scheduler module providing DEFAULT_TASKS / compute_task "
             "(default: the installed repro.analysis.parallel)",
    )
    parser.add_argument(
        "--workers-entry",
        default=None,
        metavar="PATH[:FN1,FN2]",
        help="worker entry module (and optional entry function names) "
             "for the workers pass (default: compute_task/_run_task in "
             "the installed repro.analysis.parallel)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json suppresses progress lines and prints "
             "one machine-readable document)",
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="also emit GitHub Actions ::error/::warning annotations",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings too, not just errors",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _parser()
    args = parser.parse_args(argv)
    unknown = [name for name in args.passes if name not in PASS_NAMES]
    if unknown:
        parser.error(
            f"unknown pass(es) {', '.join(map(repr, unknown))}; choose "
            f"from {', '.join(PASS_NAMES)}"
        )
    selected = list(dict.fromkeys(args.passes)) or PASS_NAMES
    quiet = args.format == "json"

    def progress(message: str) -> None:
        if not quiet:
            print(message, flush=True)

    results: Dict[str, List[Diagnostic]] = {}
    for pass_name in PASS_NAMES:
        if pass_name not in selected:
            continue
        if pass_name == "ir":
            progress("ir: verifying workload suite programs...")
            results["ir"] = run_ir_pass()
        elif pass_name == "contracts":
            progress("contracts: auditing predictor classes and registry...")
            results["contracts"] = run_contracts_pass(args.trace_length)
        elif pass_name == "lint":
            progress("lint: scanning source for determinism hazards...")
            results["lint"] = run_lint_pass(args.lint_root)
        elif pass_name == "deps":
            progress("deps: checking requires= and cache-key projections...")
            results["deps"] = run_deps_pass_cli(
                args.deps_experiments_root,
                args.deps_config,
                args.deps_parallel,
            )
        elif pass_name == "workers":
            progress("workers: scanning pool-reachable code for hazards...")
            results["workers"] = run_workers_pass_cli(args.workers_entry)

    errors = warnings = 0
    for pass_name, diagnostics in results.items():
        errors += sum(1 for d in diagnostics if d.severity == ERROR)
        warnings += sum(1 for d in diagnostics if d.severity == WARNING)
        if diagnostics and not quiet:
            print(f"\n{pass_name} findings:")
            print(format_diagnostics(diagnostics))

    if args.github:
        for line in github_annotations(results):
            print(line, flush=True)
    if quiet:
        print(json.dumps(diagnostics_to_json(results), indent=2))
    else:
        print(
            f"\ncheck: {len(results)} pass(es), {errors} error(s), "
            f"{warnings} warning(s)"
        )
    if errors or (args.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
