"""Diagnostic records shared by every static-analysis pass.

A pass returns a flat list of :class:`Diagnostic`; severity decides the
process exit code (any :data:`ERROR` fails the check), codes give tests
and CI something stable to assert on, and ``location`` is free-form
("program:procedure", "file:line", "registry:name").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

#: Severity levels, ordered most to least severe.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a static-analysis pass.

    Attributes:
        code: Stable machine-readable code (``IR...``, ``PC...``,
            ``DH...``).
        severity: One of :data:`ERROR`, :data:`WARNING`, :data:`INFO`.
        message: Human-readable description of the finding.
        location: Where it was found (pass-specific format).
    """

    code: str
    severity: str
    message: str
    location: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_ORDER:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.severity}: {self.code}: {self.message}{where}"


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True if any diagnostic is error-severity."""
    return any(diag.severity == ERROR for diag in diagnostics)


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Order by severity (errors first), then code, then location."""
    return sorted(
        diagnostics,
        key=lambda d: (_SEVERITY_ORDER[d.severity], d.code, d.location),
    )


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Render a diagnostic listing, one per line, errors first."""
    if not diagnostics:
        return "no findings"
    return "\n".join(str(diag) for diag in sort_diagnostics(diagnostics))


class CheckFailure(Exception):
    """A check pass found error-severity diagnostics.

    The structured findings stay available on :attr:`diagnostics` so
    callers (the workload suite, tests, CI wrappers) can render or
    filter them instead of parsing the message.
    """

    def __init__(self, summary: str, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        super().__init__(f"{summary}\n{format_diagnostics(self.diagnostics)}")
