"""Predictor contract checking: introspective and dynamic.

Every predictor comparison in the reproduction assumes the same
trace-driven regime: ``predict()`` is a pure query, ``update()`` trains
exactly once per branch, and replaying a trace reproduces the same
predictions.  A predictor that breaks any of these silently corrupts
every downstream table.  Two layers of enforcement:

* **Introspective** (:func:`check_predictor_classes`,
  :func:`check_registry`): every concrete
  :class:`~repro.predictors.base.BranchPredictor` subclass declares its
  own unique class-level ``name`` (not the base placeholder), carries no
  unimplemented abstract methods, and the ``repro.tools`` registry maps
  each spec name to a default-constructible predictor with a unique
  instance name.

* **Dynamic** (:class:`ContractCheckedPredictor`,
  :func:`check_determinism`, :func:`run_contract_suite`): a wrapper
  asserts state purity of ``predict`` (cheap state digests before and
  after), strict predict/update interleaving (exactly one ``update``
  per branch), and that two fresh instances replaying one trace agree
  branch-for-branch.

Diagnostic codes: PC001 abstract residue, PC002 placeholder name, PC003
duplicate class name, PC004 registry entry broken, PC005 duplicate
registry instance name, PC006 ``predict`` mutated state, PC007
predict/update interleaving violation, PC008 nondeterministic replay,
PC009 ``simulate()`` fast path diverges from the generic replay, PC010
kernel-binding audit (:func:`check_kernel_bindings`): every exported
``simulate_*`` kernel must be bound to a registry spec so the PC009
dynamic check exercises it, PC011 chunked-fold divergence
(:func:`check_chunked_fold`): splitting a trace and chaining
``simulate()`` over the windows must reproduce the whole-trace bitmap
bit-for-bit at every split point -- the property the streaming trace
path (:func:`repro.analysis.streamed.chunked_bitmap`) rests on.
"""

from __future__ import annotations

import hashlib
import importlib
import pkgutil
import random
from typing import Callable, Dict, Iterable, List, Optional, Type

import numpy as np

from repro.check.diagnostics import ERROR, Diagnostic, sort_diagnostics
from repro.predictors.base import BranchPredictor
from repro.predictors.base import simulate as generic_simulate
from repro.trace.trace import Trace

#: The placeholder name on the abstract base class.
_PLACEHOLDER_NAME = "predictor"

_DIGEST_DEPTH_LIMIT = 8


def _digest_value(hasher, value, depth: int, seen: set) -> None:
    """Feed one object's deterministic byte representation to ``hasher``.

    Cheap and structural: numpy arrays hash raw bytes, containers hash
    their elements, arbitrary objects hash their attribute dicts.  Depth
    and cycle guards keep pathological predictors from recursing forever.
    """
    if depth > _DIGEST_DEPTH_LIMIT:
        hasher.update(b"<depth>")
        return
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        hasher.update(repr(value).encode())
        return
    if isinstance(value, np.ndarray):
        hasher.update(str(value.dtype).encode())
        hasher.update(str(value.shape).encode())
        hasher.update(value.tobytes())
        return
    if isinstance(value, np.generic):
        hasher.update(repr(value.item()).encode())
        return
    if isinstance(value, random.Random):
        hasher.update(repr(value.getstate()).encode())
        return
    object_id = id(value)
    if object_id in seen:
        hasher.update(b"<cycle>")
        return
    seen.add(object_id)
    try:
        if isinstance(value, dict):
            hasher.update(b"{")
            for key in sorted(value, key=repr):
                _digest_value(hasher, key, depth + 1, seen)
                hasher.update(b":")
                _digest_value(hasher, value[key], depth + 1, seen)
            hasher.update(b"}")
        elif isinstance(value, (list, tuple)) or type(value).__name__ == "deque":
            hasher.update(b"[")
            for item in value:
                _digest_value(hasher, item, depth + 1, seen)
            hasher.update(b"]")
        elif isinstance(value, (set, frozenset)):
            hasher.update(b"(")
            for item in sorted(value, key=repr):
                _digest_value(hasher, item, depth + 1, seen)
            hasher.update(b")")
        elif callable(value):
            hasher.update(f"<fn {getattr(value, '__qualname__', '?')}>".encode())
        else:
            hasher.update(type(value).__name__.encode())
            attributes = getattr(value, "__dict__", None)
            if attributes is not None:
                _digest_value(hasher, attributes, depth + 1, seen)
            for slot_holder in type(value).__mro__:
                for slot in getattr(slot_holder, "__slots__", ()):
                    if hasattr(value, slot):
                        hasher.update(slot.encode())
                        _digest_value(
                            hasher, getattr(value, slot), depth + 1, seen
                        )
    finally:
        seen.discard(object_id)


def state_digest(predictor: BranchPredictor) -> bytes:
    """A cheap digest of every piece of mutable predictor state."""
    hasher = hashlib.blake2b(digest_size=16)
    _digest_value(hasher, predictor, 0, set())
    return hasher.digest()


class ContractViolation(AssertionError):
    """A predictor broke the trace-driven predict/update contract."""


class ContractCheckedPredictor(BranchPredictor):
    """Wrapper enforcing the trace-driven contract on every call.

    Checks, per dynamic branch:

    * ``predict()`` leaves the wrapped predictor's state digest
      unchanged (state purity);
    * calls strictly alternate predict, update, predict, update --
      i.e. ``update()`` runs exactly once per predicted branch.

    Raises :class:`ContractViolation` at the first breach.  The wrapper
    is a checking harness, not a production predictor: digesting state
    on every call is deliberate overhead.
    """

    name = "contract-checked"

    def __init__(self, inner: BranchPredictor) -> None:
        self._inner = inner
        self._awaiting_update = False
        self.name = f"contract-checked({inner.name})"
        self.predict_calls = 0
        self.update_calls = 0

    @property
    def inner(self) -> BranchPredictor:
        return self._inner

    def predict(self, pc: int, target: int) -> bool:
        if self._awaiting_update:
            raise ContractViolation(
                f"{self._inner.name}: predict() called again before "
                "update() resolved the previous branch"
            )
        before = state_digest(self._inner)
        prediction = self._inner.predict(pc, target)
        after = state_digest(self._inner)
        if before != after:
            raise ContractViolation(
                f"{self._inner.name}: predict(pc={pc:#x}) mutated predictor "
                "state; predict() must be a pure query"
            )
        self._awaiting_update = True
        self.predict_calls += 1
        return prediction

    def update(self, pc: int, target: int, taken: bool) -> None:
        if not self._awaiting_update:
            raise ContractViolation(
                f"{self._inner.name}: update(pc={pc:#x}) called without a "
                "matching predict() (or called twice for one branch)"
            )
        self._inner.update(pc, target, taken)
        self._awaiting_update = False
        self.update_calls += 1

    def finish(self) -> None:
        """Assert the final predict has been resolved by an update."""
        if self._awaiting_update:
            raise ContractViolation(
                f"{self._inner.name}: trace ended with a predict() whose "
                "update() never ran"
            )


def iter_predictor_classes() -> List[Type[BranchPredictor]]:
    """Every BranchPredictor subclass, importing all predictor modules."""
    import repro.predictors as predictors_package

    for module_info in sorted(
        pkgutil.iter_modules(predictors_package.__path__),
        key=lambda info: info.name,
    ):
        importlib.import_module(f"repro.predictors.{module_info.name}")

    discovered: List[Type[BranchPredictor]] = []
    frontier: List[Type[BranchPredictor]] = [BranchPredictor]
    while frontier:
        cls = frontier.pop()
        for subclass in cls.__subclasses__():
            if subclass not in discovered:
                discovered.append(subclass)
                frontier.append(subclass)
    # Audit only the package's own predictors: downstream code (tests,
    # notebooks) may define ad-hoc subclasses that are not part of the
    # registry contract.
    return sorted(
        (cls for cls in discovered if cls.__module__.startswith("repro.")),
        key=lambda cls: cls.__qualname__,
    )


def check_predictor_classes(
    classes: Optional[Iterable[Type[BranchPredictor]]] = None,
) -> List[Diagnostic]:
    """Introspective audit of the predictor class hierarchy."""
    if classes is None:
        classes = iter_predictor_classes()
    diagnostics: List[Diagnostic] = []
    names_seen: Dict[str, str] = {}
    for cls in classes:
        location = f"{cls.__module__}.{cls.__qualname__}"
        missing = sorted(getattr(cls, "__abstractmethods__", frozenset()))
        if missing:
            diagnostics.append(Diagnostic(
                code="PC001", severity=ERROR,
                message=f"predictor class leaves abstract methods "
                        f"unimplemented: {', '.join(missing)}",
                location=location,
            ))
            continue
        own_name = cls.__dict__.get("name")
        if not isinstance(own_name, str) or own_name == _PLACEHOLDER_NAME:
            diagnostics.append(Diagnostic(
                code="PC002", severity=ERROR,
                message="concrete predictor must declare its own "
                        "class-level name (not the base placeholder)",
                location=location,
            ))
            continue
        if own_name in names_seen:
            diagnostics.append(Diagnostic(
                code="PC003", severity=ERROR,
                message=f"class-level name {own_name!r} duplicates "
                        f"{names_seen[own_name]}",
                location=location,
            ))
        else:
            names_seen[own_name] = location
    return sort_diagnostics(diagnostics)


def check_registry() -> List[Diagnostic]:
    """Audit the ``repro.tools`` predictor registry.

    Every spec name must map to a default-constructible
    :class:`BranchPredictor` whose instance name is unique across the
    registry (experiment reports key rows by instance name).
    """
    from repro.tools import PREDICTOR_REGISTRY  # lazy: avoid import cycle

    diagnostics: List[Diagnostic] = []
    instance_names: Dict[str, str] = {}
    for spec_name in sorted(PREDICTOR_REGISTRY):
        factory = PREDICTOR_REGISTRY[spec_name]
        location = f"registry:{spec_name}"
        try:
            instance = factory()
        except Exception as error:  # noqa: BLE001 - report, don't crash
            diagnostics.append(Diagnostic(
                code="PC004", severity=ERROR,
                message=f"registry entry is not default-constructible: "
                        f"{type(error).__name__}: {error}",
                location=location,
            ))
            continue
        if not isinstance(instance, BranchPredictor):
            diagnostics.append(Diagnostic(
                code="PC004", severity=ERROR,
                message=f"registry entry built a "
                        f"{type(instance).__name__}, not a BranchPredictor",
                location=location,
            ))
            continue
        if instance.name in instance_names:
            diagnostics.append(Diagnostic(
                code="PC005", severity=ERROR,
                message=f"instance name {instance.name!r} duplicates "
                        f"{instance_names[instance.name]}",
                location=location,
            ))
        else:
            instance_names[instance.name] = location
    return sort_diagnostics(diagnostics)


def check_kernel_bindings() -> List[Diagnostic]:
    """PC010: every exported simulate kernel is under PC009 coverage.

    Audits :data:`repro.sim.KERNEL_BINDINGS` against the kernel modules
    and the predictor registry: every module-level ``simulate_*``
    function exported by :mod:`repro.sim` must map to an existing
    ``repro.tools`` registry spec (whose contract-suite run dynamically
    checks the kernel), and every binding must name a kernel that still
    exists.  An unregistered or stale kernel fails ``repro check``.
    """
    import repro.sim as sim
    from repro.sim import KERNEL_BINDINGS
    from repro.tools import PREDICTOR_REGISTRY  # lazy: avoid import cycle

    diagnostics: List[Diagnostic] = []
    exported = sorted(
        name for name in getattr(sim, "__all__", dir(sim))
        if name.startswith("simulate_")
    )
    for kernel_name in exported:
        location = f"repro.sim.{kernel_name}"
        spec_name = KERNEL_BINDINGS.get(kernel_name)
        if spec_name is None:
            diagnostics.append(Diagnostic(
                code="PC010", severity=ERROR,
                message=(
                    "kernel is exported but has no KERNEL_BINDINGS entry; "
                    "bind it to a registry spec so the PC009 contract "
                    "check covers it"
                ),
                location=location,
            ))
            continue
        if spec_name not in PREDICTOR_REGISTRY:
            diagnostics.append(Diagnostic(
                code="PC010", severity=ERROR,
                message=(
                    f"kernel is bound to registry spec {spec_name!r}, "
                    "which does not exist in PREDICTOR_REGISTRY"
                ),
                location=location,
            ))
    for kernel_name in sorted(set(KERNEL_BINDINGS) - set(exported)):
        diagnostics.append(Diagnostic(
            code="PC010", severity=ERROR,
            message=(
                "stale KERNEL_BINDINGS entry: no exported kernel by "
                "this name in repro.sim"
            ),
            location=f"repro.sim.{kernel_name}",
        ))
    return sort_diagnostics(diagnostics)


def _prepare(instance: BranchPredictor, trace: Trace) -> BranchPredictor:
    """Fit oracle/profile predictors that require it before predict()."""
    fit = getattr(instance, "fit", None)
    if callable(fit):
        fit(trace)
    return instance


def check_determinism(
    factory: Callable[[], BranchPredictor], trace: Trace
) -> Optional[str]:
    """Replay ``trace`` on two fresh instances; return a fault or None."""
    first = _prepare(factory(), trace)
    second = _prepare(factory(), trace)
    bitmap_first = first.simulate(trace)
    bitmap_second = second.simulate(trace)
    if not np.array_equal(bitmap_first, bitmap_second):
        disagreements = int(np.sum(bitmap_first != bitmap_second))
        return (
            f"replaying {len(trace)} branches on two fresh instances "
            f"disagreed on {disagreements} predictions"
        )
    return None


def check_chunked_fold(
    factory: Callable[[], BranchPredictor],
    trace: Trace,
    reference: Optional[np.ndarray] = None,
) -> Optional[str]:
    """Chained window ``simulate()`` must equal the whole-trace run.

    The streaming path folds kernels over fixed windows and relies on
    every ``simulate()`` writing its carried state back, so resuming on
    the next window is indistinguishable from never having stopped.
    This replays a spread of split points -- first/last branch, an
    uneven prime stride, and the midpoint -- and compares the
    concatenated window bitmaps against the whole-trace bitmap.
    Oracle/profile predictors are fitted once, on the full trace, in
    both runs: fitting is a whole-run affair either way.

    Returns a fault description, or None when every fold agrees.
    """
    n = len(trace)
    if n < 2 or not getattr(factory(), "windowable", True):
        return None
    if reference is None:
        reference = np.asarray(
            _prepare(factory(), trace).simulate(trace), dtype=bool
        )
    splits = sorted({1, 7, n // 3, n // 2, n - 1} & set(range(1, n)))
    for split in splits:
        folded = _prepare(factory(), trace)
        bitmap = np.concatenate([
            np.asarray(folded.simulate(trace[:split]), dtype=bool),
            np.asarray(folded.simulate(trace[split:]), dtype=bool),
        ])
        if not np.array_equal(bitmap, reference):
            disagreements = int(np.sum(bitmap != reference))
            return (
                f"splitting the trace at branch {split} and chaining "
                f"simulate() over the two windows changed "
                f"{disagreements} of {n} predictions vs the whole-trace "
                "run; simulate() must write carried state back so the "
                "streaming fold can resume"
            )
    return None


def run_contract_suite(
    factory: Callable[[], BranchPredictor],
    trace: Trace,
    label: Optional[str] = None,
) -> List[Diagnostic]:
    """Full dynamic contract check for one predictor factory.

    Drives a :class:`ContractCheckedPredictor` through the generic
    predict-then-update loop (state purity + interleaving), then checks
    replay determinism with two further fresh instances.
    """
    from repro.obs.metrics import METRICS

    METRICS.inc("check.contract_checks")
    diagnostics: List[Diagnostic] = []
    probe = factory()
    location = label or probe.name
    wrapped = ContractCheckedPredictor(_prepare(probe, trace))
    reference = None
    try:
        reference = generic_simulate(wrapped, trace)
        wrapped.finish()
    except ContractViolation as violation:
        code = "PC006" if "mutated" in str(violation) else "PC007"
        diagnostics.append(Diagnostic(
            code=code, severity=ERROR, message=str(violation),
            location=location,
        ))
    fault = check_determinism(factory, trace)
    if fault is not None:
        diagnostics.append(Diagnostic(
            code="PC008", severity=ERROR, message=fault, location=location,
        ))
    fast = None
    if reference is not None:
        # A predictor overriding simulate() (vectorised kernels, scalar
        # fast paths) must be bit-identical to the contract-checked
        # generic predict-then-update replay above.
        fast = np.asarray(_prepare(factory(), trace).simulate(trace), dtype=bool)
        if not np.array_equal(fast, reference):
            disagreements = int(np.sum(fast != reference))
            diagnostics.append(Diagnostic(
                code="PC009", severity=ERROR,
                message=(
                    f"simulate() fast path disagrees with the generic "
                    f"predict/update replay on {disagreements} of "
                    f"{len(trace)} predictions"
                ),
                location=location,
            ))
            fast = None
    chunk_fault = check_chunked_fold(factory, trace, reference=fast)
    if chunk_fault is not None:
        diagnostics.append(Diagnostic(
            code="PC011", severity=ERROR, message=chunk_fault,
            location=location,
        ))
    return diagnostics
