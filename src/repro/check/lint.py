"""AST lint pass: determinism hazards in the reproduction's own source.

The reproduction's claim to faithfulness is that every table and figure
is a pure function of (workload seed, run seed, predictor config).
Three source-level hazards silently break that:

====== =================================================================
DH001  ``random.Random()`` constructed without a seed -- its stream
       differs run to run.
DH002  module-level ``random.*`` call (``random.random()``,
       ``random.shuffle()``...) -- draws from the shared global RNG, so
       results depend on import and call order across the whole process.
DH003  float equality (``==``/``!=`` against a float literal) in
       accuracy math -- rounding differences flip the comparison.
DH004  direct iteration over a ``set``/``frozenset`` -- iteration order
       varies with PYTHONHASHSEED, reordering any trace or report
       output it feeds.
DH005  unseeded ``numpy.random.default_rng()`` / ``Generator()`` or a
       global ``numpy.random.*`` draw (``np.random.rand()``...) -- the
       numpy kernels make these the same hazard as DH001/DH002.
====== =================================================================

Suppress a finding by putting ``check: ignore`` in a comment on the
flagged line.  The pass is purely syntactic (no imports of the linted
code), so it is safe to run on anything.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Union

from repro.check.diagnostics import ERROR, Diagnostic, sort_diagnostics

_SUPPRESS_MARKER = "check: ignore"

#: Module-level functions of ``random`` that draw from the global RNG.
_GLOBAL_RNG_FUNCTIONS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})


#: ``numpy.random`` module-level functions that draw from (or reseed)
#: the legacy process-global generator.
_NUMPY_GLOBAL_RNG_FUNCTIONS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald",
    "weibull", "zipf",
})

#: Constructors of seedable numpy generators (unseeded -> DH005).
_NUMPY_RNG_CONSTRUCTORS = frozenset({"default_rng", "RandomState"})


def _is_numpy_random(node: ast.expr) -> bool:
    """True for ``numpy.random`` / ``np.random`` attribute bases."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("numpy", "np")
    )


def _is_set_expression(node: ast.expr) -> bool:
    """True for expressions that definitely produce a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _HazardVisitor(ast.NodeVisitor):
    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.diagnostics: List[Diagnostic] = []

    def _report(self, code: str, message: str, node: ast.AST) -> None:
        line = getattr(node, "lineno", 0)
        self.diagnostics.append(Diagnostic(
            code=code, severity=ERROR, message=message,
            location=f"{self.filename}:{line}",
        ))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        unseeded = not node.args and not node.keywords
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
                and func.value.id == "random":
            if func.attr == "Random" and unseeded:
                self._report(
                    "DH001",
                    "random.Random() constructed without a seed; pass an "
                    "explicit seed so runs are reproducible", node,
                )
            elif func.attr in _GLOBAL_RNG_FUNCTIONS:
                self._report(
                    "DH002",
                    f"random.{func.attr}() draws from the process-global "
                    "RNG; use a seeded random.Random instance", node,
                )
        elif isinstance(func, ast.Name) and func.id == "Random" and unseeded:
            self._report(
                "DH001",
                "Random() constructed without a seed; pass an explicit "
                "seed so runs are reproducible", node,
            )
        elif isinstance(func, ast.Attribute) and _is_numpy_random(func.value):
            if func.attr in _NUMPY_RNG_CONSTRUCTORS and unseeded:
                self._report(
                    "DH005",
                    f"numpy.random.{func.attr}() constructed without a "
                    "seed; pass an explicit seed so runs are reproducible",
                    node,
                )
            elif func.attr in _NUMPY_GLOBAL_RNG_FUNCTIONS:
                self._report(
                    "DH005",
                    f"numpy.random.{func.attr}() draws from the "
                    "process-global numpy RNG; use a seeded "
                    "numpy.random.default_rng(seed) generator", node,
                )
        elif isinstance(func, ast.Name) \
                and func.id in _NUMPY_RNG_CONSTRUCTORS and unseeded:
            self._report(
                "DH005",
                f"{func.id}() constructed without a seed; pass an "
                "explicit seed so runs are reproducible", node,
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        has_float = any(
            isinstance(operand, ast.Constant)
            and isinstance(operand.value, float)
            for operand in operands
        )
        if has_eq and has_float:
            self._report(
                "DH003",
                "float equality comparison; use a tolerance "
                "(math.isclose / numpy.isclose) in accuracy math", node,
            )
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if _is_set_expression(iter_node):
            self._report(
                "DH004",
                "iterating a set directly; order depends on hash seeding "
                "-- sort it before it feeds trace or report output",
                iter_node,
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_container(self, node) -> None:
        for comprehension in node.generators:
            self._check_iteration(comprehension.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_container
    visit_SetComp = _visit_comprehension_container
    visit_DictComp = _visit_comprehension_container
    visit_GeneratorExp = _visit_comprehension_container


def _suppressed_lines(source: str) -> set:
    return {
        number
        for number, line in enumerate(source.splitlines(), start=1)
        if _SUPPRESS_MARKER in line
    }


def lint_source(source: str, filename: str = "<string>") -> List[Diagnostic]:
    """Lint one module's source text; returns its determinism hazards."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as error:
        return [Diagnostic(
            code="DH000", severity=ERROR,
            message=f"source failed to parse: {error.msg}",
            location=f"{filename}:{error.lineno or 0}",
        )]
    visitor = _HazardVisitor(filename)
    visitor.visit(tree)
    suppressed = _suppressed_lines(source)
    return [
        diag for diag in visitor.diagnostics
        if int(diag.location.rsplit(":", 1)[1]) not in suppressed
    ]


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    diagnostics: List[Diagnostic] = []
    for source_file in files:
        text = source_file.read_text(encoding="utf-8")
        diagnostics.extend(lint_source(text, filename=str(source_file)))
    return sort_diagnostics(diagnostics)
