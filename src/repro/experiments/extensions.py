"""Extension experiments (beyond the paper's tables and figures).

Each follows a thread the paper opens but does not tabulate:

* ``ext_interference`` -- direct measurement of the PHT interference the
  paper's interference-free instruments remove (section 2.2).
* ``ext_hybrid`` -- the conclusion's implied experiment: an
  implementable chooser hybrid of gshare and PAs against its components,
  with the pipeline-cost view of the intro.
* ``ext_taxonomy`` -- the full Yeh/Patt first/second-level taxonomy on
  the suite (GAg / GAs / gshare / PAg / PAs, plus the idealised
  per-address-PHT points).
* ``ext_profile`` -- the Sechrest/Young static-PHT question: profiled
  second levels vs adaptive counters, same input vs a different input.
* ``ext_training`` -- the section-3.6.3 training-time effect: accuracy
  by per-branch execution age for gshare vs the selective history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.cost import PipelineModel
from repro.analysis.interference import measure_gshare_interference
from repro.analysis.runner import Lab
from repro.experiments.base import ExperimentResult, register
from repro.experiments.report import format_table
from repro.predictors.hybrid import ChooserHybrid
from repro.predictors.profile_based import (
    BranchClassificationHybrid,
    StaticPhtPAs,
)
from repro.predictors.twolevel import (
    GAgPredictor,
    GAsPredictor,
    GsharePredictor,
    PAgPredictor,
    PAsPredictor,
)
from repro.workloads.suite import load_benchmark


@dataclass
class ExtInterferenceResult(ExperimentResult):
    #: benchmark -> (conflict rate, conflict misp. rate, private misp. rate, occupancy)
    rows: Dict[str, tuple]

    experiment_id = "ext_interference"
    title = "gshare PHT interference, measured directly (extension)"

    def render(self) -> str:
        table = format_table(
            (
                "benchmark",
                "conflict rate",
                "misp. on conflict",
                "misp. on private",
                "PHT occupancy",
            ),
            [
                (
                    name,
                    f"{row[0] * 100:.1f}%",
                    f"{row[1] * 100:.1f}%",
                    f"{row[2] * 100:.1f}%",
                    f"{row[3] * 100:.1f}%",
                )
                for name, row in self.rows.items()
            ],
        )
        return (
            f"{table}\n"
            "conflict accesses (entry last trained by another branch) "
            "mispredict far more often -- the effect the paper's "
            "interference-free instruments remove"
        )


@register("ext_interference", requires=())
def run_interference(labs: Dict[str, Lab]) -> ExtInterferenceResult:
    """Measure interference for the reference gshare on every benchmark."""
    rows = {}
    for name, lab in labs.items():
        config = lab.config
        report = measure_gshare_interference(
            lab.trace, config.gshare_history_bits, config.gshare_pht_bits
        )
        rows[name] = (
            report.conflict_rate,
            report.conflict_misprediction_rate,
            report.private_misprediction_rate,
            report.occupancy,
        )
    return ExtInterferenceResult(rows=rows)


@dataclass
class ExtHybridResult(ExperimentResult):
    #: benchmark -> (gshare, pas, hybrid, oracle best-of, hybrid speedup)
    rows: Dict[str, tuple]

    experiment_id = "ext_hybrid"
    title = "Chooser hybrid of gshare and PAs (extension)"

    def render(self) -> str:
        table = format_table(
            ("benchmark", "gshare", "PAs", "hybrid", "per-branch oracle", "speedup vs gshare"),
            [
                (name, row[0], row[1], row[2], row[3], f"{row[4]:.3f}x")
                for name, row in self.rows.items()
            ],
        )
        return (
            f"{table}\n"
            "speedup uses the analytical pipeline model "
            "(base CPI 1.0, 18% branches, 7-cycle flush); the oracle "
            "column is the per-branch best-of upper bound"
        )


@register("ext_hybrid", requires=("gshare", "pas"))
def run_hybrid(labs: Dict[str, Lab]) -> ExtHybridResult:
    """Compare the implementable hybrid against components and oracle."""
    model = PipelineModel()
    rows = {}
    for name, lab in labs.items():
        config = lab.config
        gshare_accuracy = lab.accuracy("gshare")
        pas_accuracy = lab.accuracy("pas")
        hybrid = ChooserHybrid(
            GsharePredictor(config.gshare_history_bits, config.gshare_pht_bits),
            PAsPredictor(config.pas_history_bits, config.pas_bht_bits),
        )
        hybrid_accuracy = float(hybrid.simulate(lab.trace).mean())
        from repro.predictors.hybrid import OracleCombiner

        oracle = OracleCombiner.combine(
            lab.trace, lab.correct("gshare"), lab.correct("pas")
        )
        rows[name] = (
            gshare_accuracy * 100,
            pas_accuracy * 100,
            hybrid_accuracy * 100,
            float(oracle.mean()) * 100,
            model.speedup(gshare_accuracy, hybrid_accuracy),
        )
    return ExtHybridResult(rows=rows)


@dataclass
class ExtTaxonomyResult(ExperimentResult):
    #: benchmark -> {variant: accuracy %}
    rows: Dict[str, Dict[str, float]]

    experiment_id = "ext_taxonomy"
    title = "Yeh/Patt two-level taxonomy on the suite (extension)"

    VARIANTS = ("GAg", "GAs", "gshare", "PAg", "PAs", "GAp*", "PAp*")

    def render(self) -> str:
        table = format_table(
            ("benchmark",) + self.VARIANTS,
            [
                (name,) + tuple(row[v] for v in self.VARIANTS)
                for name, row in self.rows.items()
            ],
        )
        return (
            f"{table}\n"
            "* GAp/PAp are realised as the interference-free predictors "
            "(one PHT per branch is a per-address second level)"
        )


@register("ext_taxonomy", requires=("gshare", "pas", "if_gshare", "if_pas"))
def run_taxonomy(labs: Dict[str, Lab]) -> ExtTaxonomyResult:
    """Simulate every taxonomy point with comparable budgets."""
    rows = {}
    for name, lab in labs.items():
        trace = lab.trace
        config = lab.config
        h = 10  # comparable scaled history for the shared-PHT points
        rows[name] = {
            "GAg": float(GAgPredictor(h).simulate(trace).mean()) * 100,
            "GAs": float(GAsPredictor(h, 4).simulate(trace).mean()) * 100,
            "gshare": lab.accuracy("gshare") * 100,
            "PAg": float(
                PAgPredictor(config.pas_history_bits, config.pas_bht_bits)
                .simulate(trace)
                .mean()
            )
            * 100,
            "PAs": lab.accuracy("pas") * 100,
            "GAp*": lab.accuracy("if_gshare") * 100,
            "PAp*": lab.accuracy("if_pas") * 100,
        }
    return ExtTaxonomyResult(rows=rows)


@dataclass
class ExtProfileResult(ExperimentResult):
    #: benchmark -> (adaptive PAs, static PHT same input, static PHT other
    #: input, Chang hybrid other input)
    rows: Dict[str, tuple]

    experiment_id = "ext_profile"
    title = "Statically determined PHTs and branch classification (extension)"

    def render(self) -> str:
        table = format_table(
            (
                "benchmark",
                "adaptive PAs",
                "static PHT (same input)",
                "static PHT (other input)",
                "Chang hybrid (other input)",
            ),
            [(name,) + row for name, row in self.rows.items()],
        )
        return (
            f"{table}\n"
            "with the same profiling/testing input a static PHT rivals "
            "adaptive counters (Sechrest et al.); a different input "
            "erodes it, which Chang-style classification partly recovers"
        )


@register("ext_profile", requires=("pas",))
def run_profile(labs: Dict[str, Lab]) -> ExtProfileResult:
    """Profile-based second levels, same-input and cross-input."""
    rows = {}
    for name, lab in labs.items():
        trace = lab.trace
        config = lab.config
        history = config.pas_history_bits
        other_input = load_benchmark(name, length=len(trace), run_seed=777)

        same = StaticPhtPAs(history).fit(trace)
        cross = StaticPhtPAs(history).fit(other_input)
        chang = BranchClassificationHybrid(
            PAsPredictor(history, config.pas_bht_bits), bias_threshold=0.95
        ).fit(other_input)
        rows[name] = (
            lab.accuracy("pas") * 100,
            float(same.simulate(trace).mean()) * 100,
            float(cross.simulate(trace).mean()) * 100,
            float(chang.simulate(trace).mean()) * 100,
        )
    return ExtProfileResult(rows=rows)


@dataclass
class ExtTrainingResult(ExperimentResult):
    #: benchmark -> {predictor: (cold accuracy, warm accuracy, cost)}
    rows: Dict[str, Dict[str, tuple]]

    experiment_id = "ext_training"
    title = "Training time: accuracy by per-branch execution age (extension)"

    def render(self) -> str:
        lines = []
        for name, by_predictor in self.rows.items():
            lines.append(f"{name}:")
            for predictor, (cold, warm, cost) in by_predictor.items():
                lines.append(
                    f"  {predictor:12s} cold {cold * 100:6.2f}%  "
                    f"warm {warm * 100:6.2f}%  training cost "
                    f"{cost * 100:5.2f} points"
                )
        lines.append(
            "cold = first 4 executions of each branch, warm = after 256; "
            "the selective history's tiny pattern space trains far faster "
            "than gshare's (the section-3.6.3 effect)"
        )
        return "\n".join(lines)


@register("ext_training", requires=("gshare", "if_gshare", "correlation"))
def run_training(labs: Dict[str, Lab]) -> ExtTrainingResult:
    """Warmup curves for gshare, IF-gshare, and the selective history."""
    from repro.analysis.warmup import warmup_curve

    rows: Dict[str, Dict[str, tuple]] = {}
    for name, lab in labs.items():
        trace = lab.trace
        rows[name] = {}
        for label, bitmap in (
            ("gshare", lab.correct("gshare")),
            ("if-gshare", lab.correct("if_gshare")),
            ("selective-3", lab.selective_correct(3)),
        ):
            curve = warmup_curve(trace, bitmap)
            rows[name][label] = (
                curve.cold_accuracy(),
                curve.warm_accuracy(),
                curve.training_cost(),
            )
    return ExtTrainingResult(rows=rows)
