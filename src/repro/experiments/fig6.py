"""Figure 6: distribution of per-address predictability classes.

Every branch is assigned to the per-address class (section 4.1) whose
predictor handles it best -- loop, repeating pattern, non-repeating
pattern -- or to no class when the ideal static predictor does at least
as well.  Fractions are weighted by dynamic execution frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.runner import Lab
from repro.classify.per_address import (
    PER_ADDRESS_CLASSES,
    PerAddressClassification,
    classify_per_address,
)
from repro.experiments.base import ExperimentResult, register
from repro.experiments.report import format_stacked_fractions


@dataclass
class Fig6Result(ExperimentResult):
    classifications: Dict[str, PerAddressClassification]

    experiment_id = "fig6"
    title = "Per-address predictability class distribution (dynamic-weighted)"

    def render(self) -> str:
        stacks = {
            name: classification.dynamic_fractions
            for name, classification in self.classifications.items()
        }
        chart = format_stacked_fractions(stacks, PER_ADDRESS_CLASSES)
        mean_static = sum(
            c.dynamic_fractions["ideal_static"]
            for c in self.classifications.values()
        ) / len(self.classifications)
        mean_biased = sum(
            c.static_best_biased_fraction for c in self.classifications.values()
        ) / len(self.classifications)
        return (
            f"{chart}\n"
            f"mean ideal-static-best fraction: {mean_static * 100:.1f}% "
            f"(paper: ~50%)\n"
            f"of those, >99% biased: {mean_biased * 100:.1f}% (paper: 88%)"
        )


@register("fig6", requires=("loop", "fixed_best", "block", "if_pas", "ideal_static"))
def run(labs: Dict[str, Lab]) -> Fig6Result:
    """Classify every benchmark's branches into the section-4 classes."""
    return Fig6Result(
        classifications={
            name: classify_per_address(lab) for name, lab in labs.items()
        }
    )
