"""Figure 8: branches best predicted by the predictability *classes*.

Like figure 7 but with the paper's richer instruments: the global side
may use interference-free gshare or the 3-branch selective history
(section 3.4); the per-address side any of the section-4.1 class
predictors.  The static-best fraction shrinks from figure 7's 55% to
40%, showing predictability the simple two-level predictors leave
unexploited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.runner import Lab
from repro.classify.global_local import (
    BestPredictorDistribution,
    best_predictor_distribution,
)
from repro.experiments.base import ExperimentResult, register
from repro.experiments.report import format_stacked_fractions

_ORDER = ("per_address", "ideal_static", "global")


@dataclass
class Fig8Result(ExperimentResult):
    distributions: Dict[str, BestPredictorDistribution]

    experiment_id = "fig8"
    title = "Branches best predicted by global correlation, per-address methods, or ideal static"

    def render(self) -> str:
        stacks = {
            name: dist.dynamic_fractions
            for name, dist in self.distributions.items()
        }
        chart = format_stacked_fractions(stacks, _ORDER)
        means = {
            label: sum(d.dynamic_fractions[label] for d in self.distributions.values())
            / len(self.distributions)
            for label in _ORDER
        }
        mean_biased = sum(
            d.static_best_biased_fraction for d in self.distributions.values()
        ) / len(self.distributions)
        return (
            f"{chart}\n"
            f"means: per-address {means['per_address'] * 100:.1f}% (paper 22%), "
            f"static {means['ideal_static'] * 100:.1f}% (paper 40%), "
            f"global {means['global'] * 100:.1f}% (paper 38%)\n"
            f"static-best >99% biased: {mean_biased * 100:.1f}% (paper 92%)"
        )


@register("fig8", requires=("if_gshare", "loop", "fixed_best", "block", "if_pas", "ideal_static", "correlation"))
def run(labs: Dict[str, Lab]) -> Fig8Result:
    """Best-of distribution over the global and per-address classes."""
    distributions = {}
    for name, lab in labs.items():
        distributions[name] = best_predictor_distribution(
            lab.trace,
            {
                "global": [lab.correct("if_gshare"), lab.selective_correct(3)],
                "per_address": [
                    lab.correct("loop"),
                    lab.correct("fixed_best"),
                    lab.correct("block"),
                    lab.correct("if_pas"),
                ],
            },
            lab.correct("ideal_static"),
        )
    return Fig8Result(distributions=distributions)
