"""Table 2: correlation gshare fails to exploit.

The hypothetical "gshare w/ Corr" predictor uses the 1-branch selective
history for exactly those static branches where it beats gshare, and
gshare elsewhere.  If gshare captured even the single strongest
correlation per branch, the combiner would gain nothing; the paper finds
~4-point gains for gcc and go.  The same construction against
interference-free gshare separates interference losses from training-time
losses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.accuracy import misprediction_reduction
from repro.analysis.runner import Lab
from repro.experiments.base import ExperimentResult, register
from repro.experiments.paper_reference import TABLE2
from repro.experiments.report import format_table
from repro.predictors.hybrid import OracleCombiner


@dataclass
class Table2Row:
    benchmark: str
    gshare: float
    gshare_with_corr: float
    if_gshare: float
    if_gshare_with_corr: float

    @property
    def gain(self) -> float:
        return self.gshare_with_corr - self.gshare

    @property
    def if_gain(self) -> float:
        return self.if_gshare_with_corr - self.if_gshare


@dataclass
class Table2Result(ExperimentResult):
    rows: Dict[str, Table2Row]

    experiment_id = "table2"
    title = "Accuracy of gshare with and without additional correlation"

    def render(self) -> str:
        table = format_table(
            (
                "benchmark",
                "gshare",
                "gshare w/ Corr",
                "IF gshare",
                "IF gshare w/ Corr",
                "gain",
                "IF gain",
                "misp. reduction",
            ),
            [
                (
                    row.benchmark,
                    row.gshare,
                    row.gshare_with_corr,
                    row.if_gshare,
                    row.if_gshare_with_corr,
                    row.gain,
                    row.if_gain,
                    f"{misprediction_reduction(row.gshare / 100, row.gshare_with_corr / 100) * 100:.1f}%",
                )
                for row in self.rows.values()
            ],
        )
        paper = format_table(
            ("benchmark", "gshare", "w/ Corr", "IF gshare", "IF w/ Corr"),
            [(name,) + TABLE2[name] for name in self.rows if name in TABLE2],
        )
        return f"{table}\n\npaper's Table 2 for reference:\n{paper}"


@register("table2", requires=("gshare", "if_gshare", "correlation"))
def run(labs: Dict[str, Lab]) -> Table2Result:
    """Build both oracle combiners per benchmark."""
    rows = {}
    for name, lab in labs.items():
        trace = lab.trace
        selective_1 = lab.selective_correct(1)
        gshare = lab.correct("gshare")
        if_gshare = lab.correct("if_gshare")
        combined = OracleCombiner.combine(trace, gshare, selective_1)
        if_combined = OracleCombiner.combine(trace, if_gshare, selective_1)
        rows[name] = Table2Row(
            benchmark=name,
            gshare=float(gshare.mean()) * 100,
            gshare_with_corr=float(combined.mean()) * 100,
            if_gshare=float(if_gshare.mean()) * 100,
            if_gshare_with_corr=float(if_combined.mean()) * 100,
        )
    return Table2Result(rows=rows)
