"""Text rendering helpers shared by the experiment modules.

The paper's artefacts are tables and bar/line charts; we render both as
monospace text so results print in a terminal and diff cleanly in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Abbreviations used along the paper's figure x-axes.
SHORT_NAMES = {
    "compress": "com",
    "gcc": "gcc",
    "go": "go",
    "ijpeg": "ijp",
    "m88ksim": "m88",
    "perl": "per",
    "vortex": "vor",
    "xlisp": "xli",
}


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A simple aligned monospace table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row width {len(row)} does not match header width {columns}"
            )
    cells = [[str(h) for h in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [max(len(line[i]) for line in cells) for i in range(columns)]
    out: List[str] = []
    for line_index, line in enumerate(cells):
        out.append(
            "  ".join(value.rjust(widths[i]) for i, value in enumerate(line))
        )
        if line_index == 0:
            out.append("  ".join("-" * widths[i] for i in range(columns)))
    return "\n".join(out)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_bar_chart(
    series: Dict[str, Dict[str, float]],
    width: int = 50,
    unit: str = "%",
) -> str:
    """Horizontal text bars: one group per benchmark, one bar per series.

    Args:
        series: benchmark -> {label: value in [0, 100]}.
        width: Character width of a full-scale (100) bar.
        unit: Suffix printed after each value.
    """
    out: List[str] = []
    label_width = max(
        (len(label) for values in series.values() for label in values),
        default=0,
    )
    for benchmark, values in series.items():
        out.append(f"{benchmark}:")
        for label, value in values.items():
            bar = "#" * max(0, round(value / 100.0 * width))
            out.append(
                f"  {label.ljust(label_width)} |{bar} {value:.1f}{unit}"
            )
    return "\n".join(out)


def format_stacked_fractions(
    fractions_by_benchmark: Dict[str, Dict[str, float]],
    order: Sequence[str],
    width: int = 60,
) -> str:
    """A 100%-stacked text bar per benchmark (figures 6-8).

    Args:
        fractions_by_benchmark: benchmark -> {label: fraction in [0, 1]}.
        order: Label order (bottom-to-top in the paper's stacks).
        width: Total character width of the stack.
    """
    glyphs = ["#", "=", ".", "o", "+", "~"]
    out: List[str] = []
    legend = ", ".join(
        f"{glyphs[i % len(glyphs)]}={label}" for i, label in enumerate(order)
    )
    out.append(f"legend: {legend}")
    name_width = max((len(name) for name in fractions_by_benchmark), default=0)
    for benchmark, fractions in fractions_by_benchmark.items():
        bar = ""
        for i, label in enumerate(order):
            segment = round(fractions.get(label, 0.0) * width)
            bar += glyphs[i % len(glyphs)] * segment
        values = "  ".join(
            f"{label}={fractions.get(label, 0.0) * 100:.1f}%" for label in order
        )
        out.append(f"{benchmark.ljust(name_width)} |{bar:<{width}}| {values}")
    return "\n".join(out)


def format_line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    height: int = 12,
    width: int = 60,
    y_label: str = "",
) -> str:
    """A monospace 2D line chart: one glyph per series.

    Args:
        series: label -> [(x, y), ...] points (x ascending).
        height: Plot rows.
        width: Plot columns.
        y_label: Axis annotation printed above the plot.
    """
    glyphs = "ox+*#@"
    all_points = [p for points in series.values() for p in points]
    if not all_points:
        return "(no data)"
    xs = [x for x, _y in all_points]
    ys = [y for _x, y in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, points in enumerate(series.values()):
        glyph = glyphs[series_index % len(glyphs)]
        for x, y in points:
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            grid[row][column] = glyph

    lines = []
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            margin = f"{y_high:8.1f} |"
        elif row_index == height - 1:
            margin = f"{y_low:8.1f} |"
        else:
            margin = " " * 8 + " |"
        lines.append(margin + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9 + f" {x_low:<10.4g}" + " " * max(0, width - 22) + f"{x_high:>10.4g}"
    )
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={label}" for i, label in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
