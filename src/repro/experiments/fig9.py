"""Figure 9: the percentile curve of gshare minus PAs accuracy.

Every dynamic branch contributes the accuracy difference of its static
branch; the sorted, dynamic-weighted distribution is plotted against
percentiles.  Fat tails on both sides -- many branches where PAs is far
better AND many where gshare is far better -- are the paper's argument
for hybrid predictors.  The paper plots gcc (fat tails) and perl
(representative of the rest); we compute every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.percentile import PercentileCurve, percentile_difference_curve
from repro.analysis.runner import Lab
from repro.experiments.base import ExperimentResult, register
from repro.experiments.report import format_line_chart, format_table


@dataclass
class Fig9Result(ExperimentResult):
    curves: Dict[str, PercentileCurve]

    experiment_id = "fig9"
    title = "Difference between gshare and PAs accuracy (percentile curve)"

    def render(self) -> str:
        sample_points = (0, 5, 10, 25, 50, 75, 90, 95, 100)
        headers = ("benchmark",) + tuple(f"p{p}" for p in sample_points) + (
            "PAs-better area",
            "gshare-better area",
        )
        rows = []
        for name, curve in self.curves.items():
            rows.append(
                (name,)
                + tuple(curve.tail(p) for p in sample_points)
                + (curve.area_b_better(), curve.area_a_better())
            )
        table = format_table(headers, rows)
        plotted = {
            name: list(zip(curve.percentiles, curve.differences))
            for name, curve in self.curves.items()
            if name in ("gcc", "perl")
        } or {
            name: list(zip(curve.percentiles, curve.differences))
            for name, curve in list(self.curves.items())[:2]
        }
        chart = format_line_chart(
            plotted,
            y_label="gshare accuracy - PAs accuracy (points) vs percentile "
            "of dynamic branches",
        )
        return (
            f"{table}\n\n{chart}\n"
            "negative = PAs better, positive = gshare better "
            "(percentage points; paper plots gcc and perl)"
        )


@register("fig9", requires=("gshare", "pas"))
def run(labs: Dict[str, Lab]) -> Fig9Result:
    """Percentile curves of gshare - PAs for every benchmark."""
    curves = {}
    for name, lab in labs.items():
        curves[name] = percentile_difference_curve(
            lab.trace, lab.correct("gshare"), lab.correct("pas")
        )
    return Fig9Result(curves=curves)
