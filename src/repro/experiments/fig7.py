"""Figure 7: branches best predicted by gshare, PAs, or ideal static.

Per static branch, whichever of gshare and PAs is more accurate wins,
unless the ideal static predictor matches or beats both ("Ideal Static
Best").  Fractions are dynamic-weighted.  The paper: static 55% (83% of
those >99% biased), gshare 29%, PAs 16% on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.runner import Lab
from repro.classify.global_local import (
    BestPredictorDistribution,
    best_predictor_distribution,
)
from repro.experiments.base import ExperimentResult, register
from repro.experiments.report import format_stacked_fractions

_ORDER = ("pas", "ideal_static", "gshare")


@dataclass
class Fig7Result(ExperimentResult):
    distributions: Dict[str, BestPredictorDistribution]

    experiment_id = "fig7"
    title = "Branches best predicted by gshare, PAs, or ideal static"

    def render(self) -> str:
        stacks = {
            name: dist.dynamic_fractions
            for name, dist in self.distributions.items()
        }
        chart = format_stacked_fractions(stacks, _ORDER)
        means = {
            label: sum(d.dynamic_fractions[label] for d in self.distributions.values())
            / len(self.distributions)
            for label in _ORDER
        }
        mean_biased = sum(
            d.static_best_biased_fraction for d in self.distributions.values()
        ) / len(self.distributions)
        return (
            f"{chart}\n"
            f"means: PAs {means['pas'] * 100:.1f}% (paper 16%), "
            f"static {means['ideal_static'] * 100:.1f}% (paper 55%), "
            f"gshare {means['gshare'] * 100:.1f}% (paper 29%)\n"
            f"static-best >99% biased: {mean_biased * 100:.1f}% (paper 83%)"
        )


@register("fig7", requires=("gshare", "pas", "ideal_static"))
def run(labs: Dict[str, Lab]) -> Fig7Result:
    """Best-of distribution over gshare / PAs / ideal static."""
    distributions = {}
    for name, lab in labs.items():
        distributions[name] = best_predictor_distribution(
            lab.trace,
            {
                "gshare": [lab.correct("gshare")],
                "pas": [lab.correct("pas")],
            },
            lab.correct("ideal_static"),
        )
    return Fig7Result(distributions=distributions)
