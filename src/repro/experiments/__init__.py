"""Experiment suite: one module per table/figure of the paper.

Every experiment consumes a dict of per-benchmark
:class:`~repro.analysis.runner.Lab` objects (so simulations are shared)
and produces a result object with a ``render()`` text report mirroring
the paper's table or figure.

========== ==================================================== =========================
id          paper artefact                                       module
========== ==================================================== =========================
``table1``  Table 1: benchmark summary                           :mod:`repro.experiments.table1`
``fig4``    Fig 4: selective history vs gshare                   :mod:`repro.experiments.fig4`
``fig5``    Fig 5: accuracy vs history length                    :mod:`repro.experiments.fig5`
``table2``  Table 2: gshare w/ and w/o added correlation         :mod:`repro.experiments.table2`
``fig6``    Fig 6: per-address class distribution                :mod:`repro.experiments.fig6`
``table3``  Table 3: PAs w/ and w/o loop enhancement             :mod:`repro.experiments.table3`
``fig7``    Fig 7: best of gshare / PAs / ideal static           :mod:`repro.experiments.fig7`
``fig8``    Fig 8: best of global / per-address / static classes :mod:`repro.experiments.fig8`
``fig9``    Fig 9: gshare - PAs accuracy percentiles             :mod:`repro.experiments.fig9`
========== ==================================================== =========================
"""

from repro.experiments.base import (
    EXPERIMENT_IDS,
    EXTENSION_IDS,
    ExperimentResult,
    build_labs,
    run_experiment,
)

__all__ = [
    "EXPERIMENT_IDS",
    "EXTENSION_IDS",
    "ExperimentResult",
    "build_labs",
    "run_experiment",
]
