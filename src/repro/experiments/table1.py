"""Table 1: the benchmark suite summary.

The paper lists each SPECint95 benchmark, its input set, and the number
of dynamic conditional branches simulated; we add the scaled trace length
and the static branch count of the analogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.runner import Lab
from repro.experiments.base import ExperimentResult, register
from repro.experiments.report import format_table
from repro.workloads.suite import PAPER_BRANCH_COUNTS, PAPER_INPUTS


@dataclass
class Table1Row:
    benchmark: str
    paper_input: str
    paper_branches: int
    trace_length: int
    static_branches: int
    taken_rate: float


@dataclass
class Table1Result(ExperimentResult):
    rows: Dict[str, Table1Row]

    experiment_id = "table1"
    title = "Summary of the SPECint95 benchmark analogues"

    def render(self) -> str:
        return format_table(
            (
                "benchmark",
                "paper input",
                "paper #branches",
                "our #branches",
                "static",
                "taken rate",
            ),
            [
                (
                    row.benchmark,
                    row.paper_input,
                    row.paper_branches,
                    row.trace_length,
                    row.static_branches,
                    row.taken_rate,
                )
                for row in self.rows.values()
            ],
        )


@register("table1", requires=())
def run(labs: Dict[str, Lab]) -> Table1Result:
    """Build Table 1 from the suite labs."""
    rows = {}
    for name, lab in labs.items():
        stats = lab.stats
        rows[name] = Table1Row(
            benchmark=name,
            paper_input=PAPER_INPUTS.get(name, "-"),
            paper_branches=PAPER_BRANCH_COUNTS.get(name, 0),
            trace_length=stats.num_dynamic,
            static_branches=stats.num_static,
            taken_rate=stats.taken_rate,
        )
    return Table1Result(rows=rows)
