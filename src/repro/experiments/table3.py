"""Table 3: loop behaviour PAs fails to capture.

The hypothetical "PAs w/ Loop" predictor uses the section-4.1.1 loop
predictor for every branch *classified* loop-type and PAs for the rest.
The gain quantifies how much loop behaviour PAs misses; even an
interference-free PAs cannot predict the exits of loops longer than its
history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.accuracy import misprediction_reduction
from repro.analysis.runner import Lab
from repro.classify.per_address import classify_per_address
from repro.experiments.base import ExperimentResult, register
from repro.experiments.paper_reference import TABLE3
from repro.experiments.report import format_table
from repro.predictors.hybrid import OracleCombiner


@dataclass
class Table3Row:
    benchmark: str
    pas: float
    pas_with_loop: float
    if_pas: float
    if_pas_with_loop: float

    @property
    def gain(self) -> float:
        return self.pas_with_loop - self.pas

    @property
    def if_gain(self) -> float:
        return self.if_pas_with_loop - self.if_pas


@dataclass
class Table3Result(ExperimentResult):
    rows: Dict[str, Table3Row]

    experiment_id = "table3"
    title = "Prediction accuracy of PAs with and without loop enhancement"

    def render(self) -> str:
        table = format_table(
            (
                "benchmark",
                "PAs",
                "PAs w/ Loop",
                "IF PAs",
                "IF PAs w/ Loop",
                "gain",
                "IF gain",
                "misp. reduction",
            ),
            [
                (
                    row.benchmark,
                    row.pas,
                    row.pas_with_loop,
                    row.if_pas,
                    row.if_pas_with_loop,
                    row.gain,
                    row.if_gain,
                    f"{misprediction_reduction(row.pas / 100, row.pas_with_loop / 100) * 100:.1f}%",
                )
                for row in self.rows.values()
            ],
        )
        paper = format_table(
            ("benchmark", "PAs", "w/ Loop", "IF PAs", "IF w/ Loop"),
            [(name,) + TABLE3[name] for name in self.rows if name in TABLE3],
        )
        return f"{table}\n\npaper's Table 3 for reference:\n{paper}"


@register("table3", requires=("loop", "fixed_best", "block", "if_pas", "ideal_static", "pas"))
def run(labs: Dict[str, Lab]) -> Table3Result:
    """Build the loop combiner against PAs and IF-PAs per benchmark."""
    rows = {}
    for name, lab in labs.items():
        trace = lab.trace
        loop_members = classify_per_address(lab).members("loop")
        loop_correct = lab.correct("loop")
        pas = lab.correct("pas")
        if_pas = lab.correct("if_pas")
        combined = OracleCombiner.combine_with_mask(
            trace, pas, loop_correct, loop_members
        )
        if_combined = OracleCombiner.combine_with_mask(
            trace, if_pas, loop_correct, loop_members
        )
        rows[name] = Table3Row(
            benchmark=name,
            pas=float(pas.mean()) * 100,
            pas_with_loop=float(combined.mean()) * 100,
            if_pas=float(if_pas.mean()) * 100,
            if_pas_with_loop=float(if_combined.mean()) * 100,
        )
    return Table3Result(rows=rows)
