"""Figure 5: accuracy as a function of history length (3-branch selective).

The history length n (how far back the oracle may look for correlated
branches) sweeps 8..32 in steps of 4.  The paper finds steady growth up
to ~20 and little beyond -- the most correlated branches are close to the
branch they predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.runner import Lab
from repro.experiments.base import ExperimentResult, register
from repro.experiments.report import format_line_chart, format_table

#: The paper's sweep: history lengths 8 to 32 in intervals of 4.
HISTORY_LENGTHS: Tuple[int, ...] = (8, 12, 16, 20, 24, 28, 32)


@dataclass
class Fig5Result(ExperimentResult):
    #: benchmark -> {history length -> accuracy %}.
    curves: Dict[str, Dict[int, float]]

    experiment_id = "fig5"
    title = "Accuracy vs history length, 3-branch selective history"

    def render(self) -> str:
        headers = ("benchmark",) + tuple(f"n={n}" for n in HISTORY_LENGTHS)
        rows = [
            (name,) + tuple(curve[n] for n in HISTORY_LENGTHS)
            for name, curve in self.curves.items()
        ]
        table = format_table(headers, rows)
        chart = format_line_chart(
            {
                name: [(n, curve[n]) for n in HISTORY_LENGTHS]
                for name, curve in self.curves.items()
            },
            y_label="selective-3 accuracy (%) vs history length n",
        )
        gains = {
            name: curve[HISTORY_LENGTHS[-1]] - curve[20]
            for name, curve in self.curves.items()
        }
        flat = max(gains.values())
        return (
            f"{table}\n\n{chart}\n"
            f"largest gain from n=20 to n=32: {flat:.2f} points "
            f"(the paper finds little gain past 20)"
        )


@register("fig5", requires=("correlation",))
def run(labs: Dict[str, Lab]) -> Fig5Result:
    """Sweep the selective-history window per benchmark."""
    curves: Dict[str, Dict[int, float]] = {}
    for name, lab in labs.items():
        curves[name] = {
            n: lab.selective_accuracy(3, window=n) * 100
            for n in HISTORY_LENGTHS
        }
    return Fig5Result(curves=curves)
