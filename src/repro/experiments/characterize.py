"""Workload-mix characterisation: accuracy across the behaviour simplex.

``ext_characterize`` sweeps the workload mix (see
:func:`repro.workloads.suite.apply_mix`) over a compact probe
benchmark: one corner point per behaviour class -- that class boosted,
the other three dropped, the unclassified biased baseline always
present -- plus the unmixed baseline and a uniform blend.  At each
point the registry predictors run over the regenerated trace, so the
table reads as per-class predictability: which behaviour each predictor
family actually captures, isolated by construction rather than by
post-hoc attribution.

The runner deliberately ignores the session labs (``requires=()``):
every probe trace is regenerated at a small fixed length and seed, so
the result is deterministic and independent of the run's own workload
source -- it characterises the *generator's* behaviour classes, which
is exactly what a mix-weight sweep axis then modulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.runner import Lab
from repro.experiments.base import ExperimentResult, register
from repro.experiments.report import format_table
from repro.workloads.motifs import MIX_CLASSES
from repro.workloads.suite import load_benchmark

#: The probe benchmark; ``xlisp`` is the only profile with units in all
#: four behaviour classes, so every simplex corner is non-degenerate.
PROBE_BENCHMARK = "xlisp"

#: Dynamic branches per probe point -- small enough to regenerate in
#: milliseconds, long enough for two-level histories to warm up.
PROBE_LENGTH = 20000

#: Fixed execution seed; the experiment is deterministic by design.
PROBE_SEED = 12345

#: Boost applied to the emphasised class at each simplex corner.
PROBE_BOOST = 4.0

#: Predictors characterised at each mix point (Lab registry names).
PROBE_PREDICTORS = ("gshare", "pas", "loop", "block", "ideal_static")


def _mix_points() -> Tuple[Tuple[str, dict], ...]:
    """The deterministic probe points over the mix simplex."""
    points = [("baseline", {})]
    for emphasised in MIX_CLASSES:
        mix = {
            cls: (PROBE_BOOST if cls == emphasised else 0.0)
            for cls in MIX_CLASSES
        }
        points.append((emphasised, mix))
    points.append(("blend", {cls: 2.0 for cls in MIX_CLASSES}))
    return tuple(points)


@dataclass
class CharacterizeResult(ExperimentResult):
    #: mix point -> (mix signature, branches, {predictor: accuracy})
    rows: Dict[str, tuple]

    experiment_id = "ext_characterize"
    title = "Per-class predictability across the workload-mix simplex (extension)"

    def render(self) -> str:
        table = format_table(
            ("mix point", "branches") + PROBE_PREDICTORS,
            [
                (
                    point,
                    str(row[1]),
                    *(
                        f"{row[2][predictor] * 100:.1f}%"
                        for predictor in PROBE_PREDICTORS
                    ),
                )
                for point, row in self.rows.items()
            ],
        )
        return (
            f"{table}\n"
            f"probe: {PROBE_BENCHMARK} @ {PROBE_LENGTH} branches, seed "
            f"{PROBE_SEED}; each class corner boosts that class "
            f"{PROBE_BOOST:g}x and drops the other three (the biased "
            "baseline mass is unclassified and always present)"
        )


@register("ext_characterize", requires=())
def run_characterize(labs: Dict[str, Lab]) -> CharacterizeResult:
    """Accuracy of the registry predictors at each mix probe point."""
    rows: Dict[str, tuple] = {}
    for point, mix in _mix_points():
        trace = load_benchmark(
            PROBE_BENCHMARK, PROBE_LENGTH, PROBE_SEED, mix=mix or None
        )
        lab = Lab(trace, DEFAULT_CONFIG)
        accuracies = {
            predictor: lab.accuracy(predictor)
            for predictor in PROBE_PREDICTORS
        }
        signature = ",".join(
            f"{cls}={format(weight, 'g')}" for cls, weight in sorted(mix.items())
        )
        rows[point] = (signature, len(trace), accuracies)
    return CharacterizeResult(rows=rows)
