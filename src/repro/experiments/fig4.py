"""Figure 4: selective history vs gshare and interference-free gshare.

For each benchmark, the prediction accuracy of the oracle selective
history of 1, 2 and 3 branches (section 3.4), compared with an
interference-free gshare and a regular gshare.  The paper's headline:
three oracle-chosen branches nearly match the interference-free gshare
that uses all 16 recent outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.runner import Lab
from repro.experiments.base import ExperimentResult, register
from repro.experiments.report import format_table


@dataclass
class Fig4Row:
    benchmark: str
    selective_1: float
    selective_2: float
    selective_3: float
    if_gshare: float
    gshare: float


@dataclass
class Fig4Result(ExperimentResult):
    rows: Dict[str, Fig4Row]

    experiment_id = "fig4"
    title = "Selective history vs gshare and interference-free gshare"

    def render(self) -> str:
        table = format_table(
            (
                "benchmark",
                "IF 1-branch",
                "IF 2-branch",
                "IF 3-branch",
                "IF gshare",
                "gshare",
            ),
            [
                (
                    row.benchmark,
                    row.selective_1,
                    row.selective_2,
                    row.selective_3,
                    row.if_gshare,
                    row.gshare,
                )
                for row in self.rows.values()
            ],
        )
        closeness = max(
            row.if_gshare - row.selective_3 for row in self.rows.values()
        )
        return (
            f"{table}\n"
            f"largest IF-gshare advantage over 3-branch selective: "
            f"{closeness:.2f} points"
        )


@register("fig4", requires=("gshare", "if_gshare", "correlation"))
def run(labs: Dict[str, Lab]) -> Fig4Result:
    """Measure the five figure-4 series per benchmark."""
    rows = {}
    for name, lab in labs.items():
        rows[name] = Fig4Row(
            benchmark=name,
            selective_1=lab.selective_accuracy(1) * 100,
            selective_2=lab.selective_accuracy(2) * 100,
            selective_3=lab.selective_accuracy(3) * 100,
            if_gshare=lab.accuracy("if_gshare") * 100,
            gshare=lab.accuracy("gshare") * 100,
        )
    return Fig4Result(rows=rows)
