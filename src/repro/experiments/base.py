"""Experiment protocol, registry, lab construction, result contract."""

from __future__ import annotations

import abc
import dataclasses
import json
from typing import Any, Callable, Dict, Optional

from repro.analysis.cache import ResultCache
from repro.analysis.config import DEFAULT_CONFIG, LabConfig
from repro.analysis.runner import Lab
from repro.obs.metrics import METRICS
from repro.obs.tracing import span
from repro.workloads.suite import BENCHMARK_NAMES, load_benchmark, scaled_length

#: Version of the serialised :meth:`ExperimentResult.to_dict` layout.
#: Version 1 was the implicit pre-contract layout (flat fields, no
#: version marker); version 2 adds ``schema_version`` while keeping
#: every version-1 field in place, so version-1 readers keep working.
RESULT_SCHEMA_VERSION = 2


class ExperimentResult(abc.ABC):
    """Base class for experiment results.

    Subclasses are dataclasses holding the measured numbers; ``render()``
    produces the monospace report mirroring the paper's artefact, and
    :meth:`to_dict` / :meth:`to_json` are the one serialisation contract
    shared by ``repro.experiments.export``, the run manifest, and the
    CLI's ``--json`` flag.
    """

    #: Experiment id (``table1`` .. ``fig9``).
    experiment_id: str = ""
    #: Human-readable title matching the paper's caption.
    title: str = ""

    @abc.abstractmethod
    def render(self) -> str:
        """The text report for this experiment."""

    def to_dict(self) -> Dict[str, Any]:
        """The schema-versioned JSON-ready form of this result.

        Layout: ``schema_version`` + ``experiment_id`` + ``title`` plus
        one key per dataclass field, all converted to plain JSON types.
        The field keys match the pre-versioned (version-1) export
        layout, so readers of old ``--json`` files parse new ones
        unchanged.
        """
        from repro.experiments.export import to_jsonable

        payload: Dict[str, Any] = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
        }
        for field in dataclasses.fields(self):
            payload[field.name] = to_jsonable(getattr(self, field.name))
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical (key-sorted) JSON of :meth:`to_dict`.

        Bit-identical across equivalent runs; the run manifest digests
        this string to compare runs.
        """
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.render()}"


class ReplayedResult(ExperimentResult):
    """An experiment result replayed from a stored serialisation.

    ``repro report --resume`` rebuilds finished experiments from the
    run journal instead of re-simulating them.  A replayed result holds
    the journaled ``to_dict`` payload and rendered text verbatim, so
    its canonical JSON -- and therefore the manifest ``result_digest``
    -- is bit-identical to the original run's.
    """

    def __init__(self, payload: Dict[str, Any], render_text: str) -> None:
        self._payload = payload
        self._render = render_text
        self.experiment_id = str(payload.get("experiment_id", ""))
        self.title = str(payload.get("title", ""))

    def render(self) -> str:
        return self._render

    def to_dict(self) -> Dict[str, Any]:
        return json.loads(json.dumps(self._payload))


#: Registered experiment runners, keyed by experiment id.
_REGISTRY: Dict[str, Callable[[Dict[str, Lab]], ExperimentResult]] = {}

#: Simulation tasks each experiment declares it reads, keyed by id.
_REQUIRES: Dict[str, tuple] = {}


def register(experiment_id: str, requires: Optional[tuple] = None):
    """Decorator registering an experiment runner under an id.

    Args:
        experiment_id: Stable id (``table1`` .. ``fig9``, ``ext_*``).
        requires: The simulation task names this experiment's runner
            reads from its labs (``()`` for an experiment that works
            straight off the traces).  The planner uses these to prime
            exactly the needed simulations; an experiment registered
            without a declaration falls back to the full default task
            set, which is always sufficient.
    """

    def decorate(runner: Callable[[Dict[str, Lab]], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = runner
        if requires is not None:
            _REQUIRES[experiment_id] = tuple(requires)
        return runner

    return decorate


def experiment_requires(experiment_id: str) -> tuple:
    """The simulation tasks ``experiment_id`` declared it reads.

    Falls back to the scheduler's full default task set for an
    experiment with no declaration -- conservative but always correct.

    Raises:
        KeyError: For an unregistered experiment id.
    """
    _ensure_registered()
    if experiment_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{sorted(_REGISTRY)}"
        )
    if experiment_id in _REQUIRES:
        return _REQUIRES[experiment_id]
    from repro.analysis.parallel import DEFAULT_TASKS

    return tuple(DEFAULT_TASKS)


def build_labs(
    max_length: Optional[int] = None,
    config: LabConfig = DEFAULT_CONFIG,
    run_seed: int = 12345,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    policy: Optional[Any] = None,
    injector: Optional[Any] = None,
    failures: Optional[list] = None,
    tasks: Optional[tuple] = None,
    benchmarks: Optional[tuple] = None,
    pool: Optional[Any] = None,
    chunk_branches: Optional[int] = None,
    source: Optional[Any] = None,
) -> Dict[str, Lab]:
    """One :class:`Lab` per trace of the run's source.

    Args:
        max_length: Scale anchor for the longest benchmark (defaults to
            ``REPRO_TRACE_LENGTH`` / 200k); the others keep the paper's
            proportions.
        config: Predictor sizing.
        run_seed: Workload execution seed.
        jobs: If set, eagerly prime every lab's standard simulations via
            the parallel scheduler with this many workers (1 = serial
            priming).  Default None leaves labs lazy, as before.
        cache: Optional on-disk result cache attached to every lab.
        policy: Retry policy for the priming pass
            (:class:`repro.resilience.RetryPolicy`; None = defaults).
        injector: Fault injector for the priming pass
            (:class:`repro.resilience.FaultInjector`; None = no faults).
        failures: If given, structured task-failure dicts from the
            priming pass are appended here instead of raising.
        tasks: Simulation-task subset to prime (None = the scheduler's
            full default set).  Plan-driven runs pass exactly the tasks
            their experiments declared.
        benchmarks: Benchmark subset to build (None = the full suite,
            :data:`~repro.workloads.suite.BENCHMARK_NAMES`).
        pool: Session-owned :class:`repro.analysis.parallel.WorkerPool`
            the priming pass schedules onto (None = a per-pass pool).
        chunk_branches: Streaming window for the chunkable simulation
            tasks (see :func:`repro.analysis.parallel.prime_labs`);
            None keeps the whole-trace path.
        source: Optional :data:`~repro.spec.TraceSource` the labs load
            from.  None keeps the legacy behaviour (the unmixed suite);
            a :class:`~repro.spec.SyntheticSource` applies its mix
            weights, and an :class:`~repro.spec.ImportedSource` loads
            its digest-verified foreign traces instead of generating.
    """
    labs = {}
    sources: Dict[str, tuple] = {}
    with span("build_labs", run_seed=run_seed):
        if source is not None and getattr(source, "kind", "") == "imported":
            from repro.trace.ingest import load_imported_trace

            wanted = source.trace_names() if benchmarks is None else benchmarks
            for name in wanted:
                entry = source.entry(name)
                trace = load_imported_trace(
                    entry.path,
                    format=entry.format,
                    expected_digest=entry.digest,
                )
                labs[name] = Lab(trace, config, cache=cache)
                sources[name] = (
                    "imported", entry.path, entry.format, entry.digest,
                )
        else:
            from repro.workloads.suite import effective_mix, mix_signature

            mix = source.mix_map() if source is not None else None
            for name in (BENCHMARK_NAMES if benchmarks is None else benchmarks):
                length = scaled_length(name, max_length)
                variant = mix_signature(name, mix) if mix else ""
                trace = (
                    cache.load_trace(name, length, run_seed, variant=variant)
                    if cache
                    else None
                )
                if trace is None:
                    trace = load_benchmark(name, length, run_seed, mix=mix)
                    if cache is not None:
                        cache.store_trace(
                            name, length, run_seed, trace, variant=variant
                        )
                labs[name] = Lab(trace, config, cache=cache)
                if variant:
                    sources[name] = ("synthetic", effective_mix(name, mix))
        if jobs is not None:
            from repro.analysis.parallel import DEFAULT_TASKS, prime_labs

            prime_labs(
                labs,
                run_seed,
                jobs=jobs,
                cache=cache,
                tasks=DEFAULT_TASKS if tasks is None else tuple(tasks),
                policy=policy,
                injector=injector,
                failures=failures,
                pool=pool,
                chunk_branches=chunk_branches,
                sources=sources or None,
            )
    return labs


def run_experiment(experiment_id: str, labs: Dict[str, Lab]) -> ExperimentResult:
    """Run one registered experiment over prebuilt labs."""
    _ensure_registered()
    try:
        runner = _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{sorted(_REGISTRY)}"
        ) from None
    METRICS.inc("experiments.run")
    with span("experiment", experiment=experiment_id), \
            METRICS.timer("experiments.seconds"):
        return runner(labs)


def _ensure_registered() -> None:
    """Import the experiment modules so their decorators run."""
    from repro.experiments import (  # noqa: F401
        characterize,
        extensions,
        fig4,
        fig5,
        fig6,
        fig7,
        fig8,
        fig9,
        table1,
        table2,
        table3,
    )


def experiment_ids() -> tuple:
    _ensure_registered()
    return tuple(sorted(_REGISTRY))


#: Stable public list of experiment ids in paper order.
EXPERIMENT_IDS = (
    "table1",
    "fig4",
    "fig5",
    "table2",
    "fig6",
    "table3",
    "fig7",
    "fig8",
    "fig9",
)

#: Extension experiments (beyond the paper; see experiments.extensions).
EXTENSION_IDS = (
    "ext_interference",
    "ext_hybrid",
    "ext_taxonomy",
    "ext_profile",
    "ext_training",
    "ext_characterize",
)
