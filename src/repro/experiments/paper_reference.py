"""The paper's published numbers, for paper-vs-measured reporting.

Only values printed in the paper are recorded; figures 4-9 are plots, so
their entries capture the qualitative claims the text states about them.
"""

from __future__ import annotations

#: Table 2: gshare / gshare w/ Corr / IF gshare / IF gshare w/ Corr (%).
TABLE2 = {
    "compress": (92.16, 92.40, 92.25, 92.41),
    "gcc": (92.27, 95.95, 96.23, 96.73),
    "go": (84.11, 88.54, 91.53, 92.14),
    "ijpeg": (92.56, 93.12, 93.22, 93.31),
    "m88ksim": (98.44, 98.58, 98.51, 98.59),
    "perl": (97.84, 98.29, 98.18, 98.34),
    "vortex": (98.98, 99.29, 99.28, 99.32),
    "xlisp": (95.37, 95.52, 95.47, 95.52),
}

#: Table 3: PAs / PAs w/ Loop / IF PAs / IF PAs w/ Loop (%).
TABLE3 = {
    "compress": (93.46, 93.49, 94.41, 94.42),
    "gcc": (92.08, 92.91, 91.86, 93.20),
    "go": (82.16, 83.53, 84.81, 85.84),
    "ijpeg": (94.87, 95.50, 95.86, 96.28),
    "m88ksim": (98.58, 99.14, 99.09, 99.35),
    "perl": (96.83, 96.96, 97.79, 97.87),
    "vortex": (98.86, 99.14, 99.03, 99.23),
    "xlisp": (95.46, 95.54, 96.70, 96.73),
}

#: Aggregate claims stated in the paper's text.
CLAIMS = {
    "fig4": "3-branch selective history approaches interference-free "
    "gshare; even 1 branch is respectable",
    "fig5": "accuracy grows from history length 12 up to ~20, little "
    "gain beyond",
    "fig6": "about half the branches are ideal-static-best (88% of them "
    ">99% biased); ~1/3 non-repeating; ~1/6 loop; few repeating",
    "fig7": "static best for 55% on average (83% of them >99% biased); "
    "gshare best 29%; PAs best 16%",
    "fig8": "static best shrinks to 40% (92% of them >99% biased); "
    "global correlation best 38%; per-address best 22%",
    "fig9": "both tails are fat for gcc (10% of branches: PAs better by "
    ">7 points; 10%: gshare better by >10.4 points); perl has thinner "
    "tails",
}
