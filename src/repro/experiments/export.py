"""JSON export of experiment results.

The serialisation contract lives on the base class:
:meth:`repro.experiments.base.ExperimentResult.to_dict` (schema-
versioned dict) and ``to_json`` (canonical string) are what this
module, the run manifest, and the CLI's ``--json`` flag all consume.
This module keeps the recursive value converter (:func:`to_jsonable`)
that contract is built on, plus the file-level :func:`export_results`.

Compatibility: version-2 documents are a superset of the pre-versioned
(version-1) layout -- same flat field keys, plus a ``schema_version``
marker -- so readers of old ``--json`` files keep working.  Calling
:func:`to_jsonable` directly on an :class:`ExperimentResult` still
yields the version-1 (unversioned) layout and is deprecated in favour
of ``result.to_dict()``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

import numpy as np

from repro.experiments.base import ExperimentResult


def to_jsonable(value: Any) -> Any:
    """Recursively convert a result payload to JSON-encodable types.

    .. deprecated::
        For a whole :class:`ExperimentResult`, prefer
        ``result.to_dict()`` -- the schema-versioned contract.  Passing
        a result here still produces the legacy (version-1, unversioned)
        layout for old readers.
    """
    if isinstance(value, ExperimentResult):
        payload = {
            "experiment_id": value.experiment_id,
            "title": value.title,
        }
        for field in dataclasses.fields(value):
            payload[field.name] = to_jsonable(getattr(value, field.name))
        return payload
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot export value of type {type(value).__name__}")


def export_results(results: Dict[str, ExperimentResult], path: str) -> None:
    """Write a map of experiment results to ``path`` as JSON.

    Each entry is the result's :meth:`~ExperimentResult.to_dict`
    (schema-versioned; a field-compatible superset of the legacy
    layout).
    """
    payload = {
        experiment_id: result.to_dict()
        for experiment_id, result in results.items()
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
