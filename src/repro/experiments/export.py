"""JSON export of experiment results.

Experiment results are nested dataclasses containing numpy arrays and
tuples keyed by ints; this module converts any of them into plain JSON
types so the reproduced numbers can be fed to external plotting.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

import numpy as np

from repro.experiments.base import ExperimentResult


def to_jsonable(value: Any) -> Any:
    """Recursively convert a result payload to JSON-encodable types."""
    if isinstance(value, ExperimentResult):
        payload = {
            "experiment_id": value.experiment_id,
            "title": value.title,
        }
        for field in dataclasses.fields(value):
            payload[field.name] = to_jsonable(getattr(value, field.name))
        return payload
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot export value of type {type(value).__name__}")


def export_results(results: Dict[str, ExperimentResult], path: str) -> None:
    """Write a map of experiment results to ``path`` as JSON."""
    payload = {
        experiment_id: to_jsonable(result)
        for experiment_id, result in results.items()
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
