"""Trace toolkit: generate, inspect, and simulate ``.bpt`` trace files.

Subcommands::

    python -m repro.tools generate gcc -o gcc.bpt --length 50000
    python -m repro.tools stats gcc.bpt
    python -m repro.tools simulate gcc.bpt --predictor gshare --predictor pas
    python -m repro.tools interference gcc.bpt
    python -m repro.tools check

The simulate subcommand accepts predictor specs of the form
``name[:key=value,...]``, e.g. ``gshare:history_bits=12,pht_bits=12``.

Every subcommand accepts the shared engine options from
:mod:`repro.cliopts` (``--jobs``, ``--cache-dir``, ``--no-cache``,
``--seed``, ``--metrics-out``, ``--trace-out``); ``generate`` reuses the
result cache's trace store, and ``--metrics-out``/``--trace-out`` dump
the command's telemetry on exit.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.interference import measure_gshare_interference
from repro.cliopts import engine_parent, write_observability_outputs
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.interference_free import (
    InterferenceFreeGshare,
    InterferenceFreePAs,
)
from repro.predictors.loop import LoopPredictor
from repro.predictors.path import PathBasedPredictor
from repro.predictors.skewed import SkewedPredictor
from repro.predictors.pattern import (
    BlockPatternPredictor,
    FixedLengthPatternPredictor,
)
from repro.predictors.selective import SelectiveHistoryPredictor
from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BackwardTakenPredictor,
    IdealStaticPredictor,
)
from repro.predictors.twolevel import (
    GAgPredictor,
    GAsPredictor,
    GsharePredictor,
    PAgPredictor,
    PAsPredictor,
)
from repro.trace.stats import compute_statistics
from repro.trace.stream import (
    read_text_trace,
    read_trace,
    write_text_trace,
    write_trace,
)
from repro.workloads.suite import BENCHMARK_NAMES, load_benchmark

def _fixed_pattern_factory(k: int = 8) -> FixedLengthPatternPredictor:
    """Default-constructible wrapper (the class itself requires ``k``)."""
    return FixedLengthPatternPredictor(k)


#: Predictor factories accepted by ``simulate --predictor``.
PREDICTOR_REGISTRY: Dict[str, Callable[..., BranchPredictor]] = {
    "always-taken": AlwaysTakenPredictor,
    "always-not-taken": AlwaysNotTakenPredictor,
    "btfnt": BackwardTakenPredictor,
    "ideal-static": IdealStaticPredictor,
    "bimodal": BimodalPredictor,
    "gag": GAgPredictor,
    "gas": GAsPredictor,
    "gshare": GsharePredictor,
    "pag": PAgPredictor,
    "pas": PAsPredictor,
    "if-gshare": InterferenceFreeGshare,
    "if-pas": InterferenceFreePAs,
    "loop": LoopPredictor,
    "block": BlockPatternPredictor,
    "fixed": _fixed_pattern_factory,
    "selective": SelectiveHistoryPredictor,
    "path": PathBasedPredictor,
    "egskew": SkewedPredictor,
}


def parse_predictor_spec(spec: str) -> BranchPredictor:
    """Instantiate a predictor from ``name[:key=value,...]``.

    Values are parsed as integers (every registry parameter is an int
    width or size).

    Raises:
        SystemExit: On an unknown predictor name, a malformed
            ``key=value`` pair, or arguments the predictor's
            constructor rejects -- always naming the offending spec.
    """
    name, _, argument_text = spec.partition(":")
    try:
        factory = PREDICTOR_REGISTRY[name]
    except KeyError:
        raise SystemExit(
            f"error: unknown predictor {name!r} in spec {spec!r}; choose "
            f"from {', '.join(sorted(PREDICTOR_REGISTRY))}"
        ) from None
    kwargs = {}
    if argument_text:
        for item in argument_text.split(","):
            key, _, value = item.partition("=")
            if not value:
                raise SystemExit(
                    f"error: malformed predictor argument {item!r} in spec "
                    f"{spec!r}; expected key=value"
                )
            try:
                kwargs[key.strip()] = int(value)
            except ValueError:
                raise SystemExit(
                    f"error: predictor argument {item!r} in spec {spec!r} "
                    "is not an integer"
                ) from None
    try:
        return factory(**kwargs)
    except (TypeError, ValueError) as error:
        raise SystemExit(
            f"error: bad arguments for predictor {name!r} in spec "
            f"{spec!r}: {error}"
        ) from None


def _load_any(path: str):
    """Read a trace by extension: .txt/.trace = text, otherwise binary."""
    if str(path).endswith((".txt", ".trace")):
        return read_text_trace(path)
    return read_trace(path)


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = None
    cache = None
    if not args.no_cache:
        from repro.analysis.cache import ResultCache

        cache = ResultCache(args.cache_dir)
        trace = cache.load_trace(args.benchmark, args.length, args.seed)
    if trace is None:
        trace = load_benchmark(
            args.benchmark, length=args.length, run_seed=args.seed
        )
        if cache is not None:
            cache.store_trace(args.benchmark, args.length, args.seed, trace)
    if str(args.output).endswith((".txt", ".trace")):
        write_text_trace(trace, args.output)
    else:
        write_trace(trace, args.output)
    print(f"wrote {len(trace)} branches to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = _load_any(args.trace)
    stats = compute_statistics(trace)
    print(f"dynamic branches:        {stats.num_dynamic}")
    print(f"static branches:         {stats.num_static}")
    print(f"taken rate:              {stats.taken_rate:.4f}")
    print(f"backward-branch rate:    {stats.backward_rate:.4f}")
    print(f"ideal-static accuracy:   {stats.ideal_static_accuracy * 100:.2f}%")
    print(
        f">99%-biased dyn fraction: "
        f"{stats.biased_99_dynamic_fraction * 100:.2f}%"
    )
    return 0


def _simulate_spec(job):
    """Worker for ``simulate --jobs``: one predictor spec on one trace file.

    Module-level so it pickles; re-reads the trace in the worker rather
    than shipping the columns through the pipe.
    """
    trace_path, spec = job
    trace = _load_any(trace_path)
    predictor = parse_predictor_spec(spec)
    return predictor.name, predictor.accuracy(trace)


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = _load_any(args.trace)
    print(f"{args.trace}: {len(trace)} dynamic branches")
    if args.jobs is not None and args.jobs > 1 and len(args.predictor) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            # map() preserves input order, so output is deterministic.
            rows = list(
                pool.map(
                    _simulate_spec,
                    [(args.trace, spec) for spec in args.predictor],
                )
            )
    else:
        rows = []
        for spec in args.predictor:
            predictor = parse_predictor_spec(spec)
            rows.append((predictor.name, predictor.accuracy(trace)))
    for name, accuracy in rows:
        print(f"  {name:28s} {accuracy * 100:6.2f}%")
    return 0


def _cmd_interference(args: argparse.Namespace) -> int:
    trace = _load_any(args.trace)
    report = measure_gshare_interference(
        trace, args.history_bits, args.pht_bits
    )
    print(f"gshare {args.history_bits}h/{args.pht_bits}p on {args.trace}:")
    print(f"  conflict access rate:        {report.conflict_rate * 100:.2f}%")
    print(
        f"  misprediction on conflicts:  "
        f"{report.conflict_misprediction_rate * 100:.2f}%"
    )
    print(
        f"  misprediction on private:    "
        f"{report.private_misprediction_rate * 100:.2f}%"
    )
    print(f"  PHT occupancy:               {report.occupancy * 100:.2f}%")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check.cli import main as check_main  # lazy: avoid cycle

    forwarded: List[str] = list(args.passes)
    if args.strict:
        forwarded.append("--strict")
    if args.format != "text":
        forwarded.extend(["--format", args.format])
    if args.github:
        forwarded.append("--github")
    return check_main(forwarded)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tools", description="Branch-trace toolkit."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    # Every subcommand carries the shared engine options (--jobs,
    # --cache-dir, --no-cache, --seed, --metrics-out, --trace-out), so
    # the same flag means the same thing everywhere.
    engine = [engine_parent()]

    generate = subparsers.add_parser(
        "generate", parents=engine,
        help="generate a benchmark trace to a .bpt file",
    )
    generate.add_argument("benchmark", choices=BENCHMARK_NAMES)
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--length", type=int, default=None)
    generate.set_defaults(func=_cmd_generate)

    stats = subparsers.add_parser(
        "stats", parents=engine, help="summarise a .bpt file"
    )
    stats.add_argument("trace")
    stats.set_defaults(func=_cmd_stats)

    simulate = subparsers.add_parser(
        "simulate", parents=engine, help="run predictors over a .bpt file"
    )
    simulate.add_argument("trace")
    simulate.add_argument(
        "--predictor",
        action="append",
        default=None,
        help="predictor spec name[:key=value,...]; repeatable",
    )
    simulate.set_defaults(func=_cmd_simulate)

    interference = subparsers.add_parser(
        "interference", parents=engine,
        help="measure gshare PHT interference on a .bpt file",
    )
    interference.add_argument("trace")
    interference.add_argument("--history-bits", type=int, default=16)
    interference.add_argument("--pht-bits", type=int, default=16)
    interference.set_defaults(func=_cmd_interference)

    check = subparsers.add_parser(
        "check", parents=engine,
        help="run the static verification passes (repro.check)",
    )
    check.add_argument(
        "passes", nargs="*",
        choices=["ir", "contracts", "lint", "deps", "workers"],
        default=[], help="passes to run (default: all)",
    )
    check.add_argument("--strict", action="store_true",
                       help="fail on warnings too")
    check.add_argument("--format", choices=["text", "json"], default="text",
                       help="diagnostic output format")
    check.add_argument("--github", action="store_true",
                       help="emit GitHub Actions workflow annotations")
    check.set_defaults(func=_cmd_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "--version":
        from repro.cliopts import version_string

        print(version_string("repro-tools"))
        return 0
    args = _parser().parse_args(argv)
    if getattr(args, "predictor", "missing") is None:
        args.predictor = ["gshare", "pas:history_bits=6,bht_bits=12"]
    try:
        code = args.func(args)
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    write_observability_outputs(args)
    return code


if __name__ == "__main__":
    sys.exit(main())
