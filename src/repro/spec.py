"""RunSpec: one frozen, serialisable description of "a run".

Four PRs of engine growth accreted onto a kwarg-driven entry path --
``api.run_report`` took a dozen loose parameters and ``repro`` mirrored
them as flags, so there was no single object that *is* the run.  This
module introduces it:

* :class:`RunSpec` -- a frozen, schema-versioned dataclass capturing the
  workload suite (:class:`WorkloadSpec`), the predictor sizing
  (:class:`~repro.analysis.config.LabConfig`), the experiment ids, the
  engine options (:class:`EngineOptions`: jobs, cache, retries,
  timeouts, fault spec, journal/resume), and an optional
  :class:`SweepSpec` gridding over ``LabConfig`` fields.
* JSON round-trip -- :meth:`RunSpec.to_json` / :meth:`RunSpec.from_json`
  with strict unknown-field rejection, so ``repro run spec.json`` and a
  version-controlled spec file are first-class ways to launch a run.
* :meth:`RunSpec.digest` -- a content digest of the run's *identity*
  (workload, config, experiments, sweep).  Engine options deliberately
  do not participate: ``--jobs 4`` changes how a run executes, never
  what it computes, and the digest is the key the journal, the manifest
  and the result cache compare runs by.

The paper's own method is a sweep -- the same traces evaluated across
predictor sizings (figures 4-9, tables 1-3) -- and :class:`SweepSpec`
makes that grid the core experimental object: ``expand_points()`` turns
one swept spec into per-point specs whose digests differ exactly in the
swept fields.

:func:`spec_from_kwargs` is the keyword-flavoured builder: it folds the
CLI's loose flags into the identical spec, so
``spec_from_kwargs(max_length=20_000)`` and an explicit
``RunSpec(workload=WorkloadSpec(max_length=20_000))`` share one digest.
(The old ``api.run_report(**kwargs)`` shim that used to sit on top of
it is gone; execute specs with :func:`repro.api.run_spec`.)
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.config import DEFAULT_CONFIG, LabConfig
from repro.errors import SpecError

#: Bump on any spec layout or semantics change.
SPEC_SCHEMA_VERSION = 1

#: Discriminator so readers can reject non-spec JSON early.
SPEC_KIND = "repro.runspec"

#: LabConfig field names a spec (and a sweep axis) may set.
CONFIG_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(LabConfig)
)

#: Sweep expansion modes: ``grid`` takes the cartesian product of the
#: axes, ``zip`` pairs them element-wise (all axes must be equal length).
SWEEP_MODES = ("grid", "zip")


def _reject_unknown(payload: Dict[str, Any], allowed, context: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise SpecError(
            f"{context}: unknown field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _require(payload: Any, type_, context: str):
    if not isinstance(payload, type_):
        raise SpecError(
            f"{context}: expected {type_.__name__}, got "
            f"{type(payload).__name__}"
        )
    return payload


@dataclass(frozen=True)
class WorkloadSpec:
    """Which traces a run simulates.

    Attributes:
        max_length: Scale anchor for the longest benchmark trace
            (None = ``REPRO_TRACE_LENGTH`` or 200k); the others keep the
            paper's proportions.
        seed: Workload execution seed (the "input data set").
        benchmarks: Benchmark subset, in suite order (None = the full
            eight-benchmark paper suite).
    """

    max_length: Optional[int] = None
    seed: int = 12345
    benchmarks: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if self.benchmarks is not None:
            object.__setattr__(self, "benchmarks", tuple(self.benchmarks))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_length": self.max_length,
            "seed": self.seed,
            "benchmarks": (
                None if self.benchmarks is None else list(self.benchmarks)
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkloadSpec":
        _require(payload, dict, "workload")
        _reject_unknown(
            payload, ("max_length", "seed", "benchmarks"), "workload"
        )
        benchmarks = payload.get("benchmarks")
        if benchmarks is not None:
            benchmarks = tuple(
                _require(name, str, "workload.benchmarks[]")
                for name in _require(benchmarks, list, "workload.benchmarks")
            )
        spec = cls(
            max_length=payload.get("max_length"),
            seed=payload.get("seed", 12345),
            benchmarks=benchmarks,
        )
        if spec.max_length is not None and (
            not isinstance(spec.max_length, int) or spec.max_length <= 0
        ):
            raise SpecError("workload.max_length: expected a positive int")
        if not isinstance(spec.seed, int):
            raise SpecError("workload.seed: expected an int")
        return spec


@dataclass(frozen=True)
class EngineOptions:
    """How a run executes -- never *what* it computes.

    Every field mirrors one engine flag; None defers to the same
    environment default the flag uses.  Excluded from
    :meth:`RunSpec.digest` by design.
    """

    jobs: Optional[int] = None
    cache: bool = True
    cache_dir: Optional[str] = None
    retries: Optional[int] = None
    task_timeout: Optional[float] = None
    fault_spec: Optional[str] = None
    journal: Optional[str] = None
    resume: bool = False
    chunk_branches: Optional[int] = None

    _FIELDS = (
        "jobs", "cache", "cache_dir", "retries", "task_timeout",
        "fault_spec", "journal", "resume", "chunk_branches",
    )

    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EngineOptions":
        _require(payload, dict, "engine")
        _reject_unknown(payload, cls._FIELDS, "engine")
        return cls(**payload)

    @classmethod
    def from_env(cls, **overrides: Any) -> "EngineOptions":
        """Options with every unset field resolved from the environment.

        This is the *single* env/flag resolution point: the engine
        (:class:`repro.api.EngineSession`), the server, and CLI
        utilities like ``repro cache stats`` all route through it, so
        one ``REPRO_*`` variable means one thing everywhere.

        ``overrides`` are CLI-flag-style values; ``None`` (or an absent
        key) defers to the environment, which in turn defers to the
        built-in default:

        * ``jobs`` -- ``REPRO_JOBS``, else the CPU count;
        * ``cache_dir`` -- ``REPRO_CACHE_DIR``, else ``.repro-cache``;
        * ``retries``/``task_timeout`` -- ``REPRO_MAX_RETRIES`` /
          ``REPRO_TASK_TIMEOUT``, else unset (the retry policy's own
          defaults apply);
        * ``fault_spec`` -- ``REPRO_FAULT_SPEC``, else unset;
        * ``chunk_branches`` -- ``REPRO_CHUNK_BRANCHES``, else unset
          (whole-trace priming; set = streamed chunk window).

        Raises:
            SpecError: On an unknown override name.
        """
        _reject_unknown(overrides, cls._FIELDS, "engine")
        options = cls(**overrides)
        return options.resolved()

    def resolved(self) -> "EngineOptions":
        """A copy with every ``None`` field pinned to its env default.

        Two resolved option sets built under the same environment are
        equal, which is what lets the server, the CLI and tests agree
        on where the cache lives and how many workers run without each
        re-parsing ``REPRO_*`` variables on its own.
        """
        from repro.analysis.cache import default_cache_dir
        from repro.analysis.parallel import resolve_jobs
        from repro.resilience.faults import ENV_FAULT_SPEC
        from repro.resilience.retry import ENV_MAX_RETRIES, ENV_TASK_TIMEOUT
        from repro.trace.stream import ENV_CHUNK_BRANCHES, normalize_chunk_branches

        updates: Dict[str, Any] = {}
        updates["jobs"] = resolve_jobs(
            self.jobs if self.jobs is None else int(self.jobs)
        )
        if self.cache_dir is None:
            updates["cache_dir"] = str(default_cache_dir())
        if self.retries is None:
            text = os.environ.get(ENV_MAX_RETRIES)
            if text:
                try:
                    updates["retries"] = int(text)
                except ValueError:
                    pass
        if self.task_timeout is None:
            text = os.environ.get(ENV_TASK_TIMEOUT)
            if text:
                try:
                    updates["task_timeout"] = float(text)
                except ValueError:
                    pass
        if self.fault_spec is None:
            env_spec = os.environ.get(ENV_FAULT_SPEC)
            if env_spec:
                updates["fault_spec"] = env_spec
        chunk = self.chunk_branches
        if chunk is None:
            text = os.environ.get(ENV_CHUNK_BRANCHES)
            if text:
                try:
                    chunk = int(text)
                except ValueError:
                    chunk = None
        if chunk is not None:
            try:
                updates["chunk_branches"] = normalize_chunk_branches(int(chunk))
            except (TypeError, ValueError) as error:
                raise SpecError(f"engine.chunk_branches: {error}") from None
        return replace(self, **updates)


@dataclass(frozen=True)
class SweepSpec:
    """A grid over ``LabConfig`` fields.

    Attributes:
        axes: ``((field, (value, ...)), ...)`` sorted by field name;
            each field must be a :class:`LabConfig` sizing field.
        mode: ``grid`` (cartesian product, the default) or ``zip``
            (element-wise pairing; axes must share one length).
    """

    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    mode: str = "grid"

    def __post_init__(self):
        normalized = tuple(
            sorted((name, tuple(values)) for name, values in dict(self.axes).items())
        )
        object.__setattr__(self, "axes", normalized)
        for name, values in self.axes:
            if name not in CONFIG_FIELDS:
                raise SpecError(
                    f"sweep axis {name!r} is not a LabConfig field; choose "
                    f"from {', '.join(CONFIG_FIELDS)}"
                )
            if not values:
                raise SpecError(f"sweep axis {name!r} has no values")
            for value in values:
                if not isinstance(value, int):
                    raise SpecError(
                        f"sweep axis {name!r}: values must be ints, got "
                        f"{value!r}"
                    )
        if not self.axes:
            raise SpecError("sweep: at least one axis is required")
        if self.mode not in SWEEP_MODES:
            raise SpecError(
                f"sweep mode {self.mode!r} not in {SWEEP_MODES}"
            )
        if self.mode == "zip":
            lengths = {len(values) for _, values in self.axes}
            if len(lengths) > 1:
                raise SpecError(
                    "sweep mode 'zip' requires equal-length axes; got "
                    f"lengths {sorted(lengths)}"
                )

    def coordinates(self) -> List[Dict[str, Any]]:
        """Every grid point as an ordered ``{field: value}`` mapping."""
        names = [name for name, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        if self.mode == "zip":
            combos = list(zip(*value_lists))
        else:
            combos = list(itertools.product(*value_lists))
        return [dict(zip(names, combo)) for combo in combos]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "axes": {name: list(values) for name, values in self.axes},
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepSpec":
        _require(payload, dict, "sweep")
        _reject_unknown(payload, ("axes", "mode"), "sweep")
        axes = _require(payload.get("axes", {}), dict, "sweep.axes")
        return cls(
            axes=tuple(
                (name, tuple(_require(values, list, f"sweep.axes[{name!r}]")))
                for name, values in axes.items()
            ),
            mode=payload.get("mode", "grid"),
        )


def _config_to_dict(config: LabConfig) -> Dict[str, Any]:
    return {name: getattr(config, name) for name in CONFIG_FIELDS}


def _config_from_dict(payload: Dict[str, Any]) -> LabConfig:
    _require(payload, dict, "config")
    _reject_unknown(payload, CONFIG_FIELDS, "config")
    for name, value in payload.items():
        if not isinstance(value, int):
            raise SpecError(
                f"config.{name}: expected an int, got {value!r}"
            )
    return LabConfig(**payload)


@dataclass(frozen=True)
class RunSpec:
    """The complete, serialisable description of one run (or sweep).

    A spec is pure data: constructing one performs no work, and two
    specs with equal :meth:`digest` describe runs that must produce
    bit-identical results.  ``repro run spec.json`` executes one;
    :func:`repro.api.run_spec` is the library entry point.
    """

    experiments: Tuple[str, ...] = ()
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    config: LabConfig = DEFAULT_CONFIG
    engine: EngineOptions = field(default_factory=EngineOptions)
    sweep: Optional[SweepSpec] = None

    def __post_init__(self):
        object.__setattr__(self, "experiments", tuple(self.experiments))

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The schema-versioned JSON-ready form of this spec."""
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "kind": SPEC_KIND,
            "experiments": list(self.experiments),
            "workload": self.workload.to_dict(),
            "config": _config_to_dict(self.config),
            "engine": self.engine.to_dict(),
            "sweep": None if self.sweep is None else self.sweep.to_dict(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical (key-sorted) JSON of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSpec":
        """Parse a spec document, rejecting unknown fields at every level.

        Raises:
            SpecError: On a wrong kind/schema version, an unknown field
                anywhere in the document, or a mistyped value.
        """
        _require(payload, dict, "spec")
        _reject_unknown(
            payload,
            (
                "schema_version", "kind", "experiments", "workload",
                "config", "engine", "sweep",
            ),
            "spec",
        )
        kind = payload.get("kind", SPEC_KIND)
        if kind != SPEC_KIND:
            raise SpecError(f"spec kind {kind!r} != {SPEC_KIND!r}")
        version = payload.get("schema_version", SPEC_SCHEMA_VERSION)
        if version != SPEC_SCHEMA_VERSION:
            raise SpecError(
                f"spec schema_version {version!r} != {SPEC_SCHEMA_VERSION} "
                "(this reader)"
            )
        experiments = tuple(
            _require(item, str, "experiments[]")
            for item in _require(
                payload.get("experiments", []), list, "experiments"
            )
        )
        sweep = payload.get("sweep")
        return cls(
            experiments=experiments,
            workload=WorkloadSpec.from_dict(payload.get("workload", {})),
            config=_config_from_dict(payload.get("config", {})),
            engine=EngineOptions.from_dict(payload.get("engine", {})),
            sweep=None if sweep is None else SweepSpec.from_dict(sweep),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"spec is not valid JSON: {error}") from None
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str) -> "RunSpec":
        with open(path) as fh:
            text = fh.read()
        return cls.from_json(text)

    def to_file(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=2))
            fh.write("\n")

    # -- identity ----------------------------------------------------------

    def identity(self) -> Dict[str, Any]:
        """The digest-relevant subset: what the run computes.

        Engine options (jobs, cache, retries, ...) are excluded: they
        change execution, never results.
        """
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "experiments": list(self.experiments),
            "workload": self.workload.to_dict(),
            "config": _config_to_dict(self.config),
            "sweep": None if self.sweep is None else self.sweep.to_dict(),
        }

    def digest(self) -> str:
        """Content digest of this spec's identity (hex, stable)."""
        canonical = json.dumps(self.identity(), sort_keys=True)
        return hashlib.blake2b(
            canonical.encode(), digest_size=16
        ).hexdigest()

    def input_digest(self) -> str:
        """Digest of the run's *inputs* only: workload plus config.

        Unlike :meth:`digest`, the experiment selection and sweep do
        not participate: an experiment journaled under one selection is
        replayable under any other as long as the traces and sizing
        match.  This is what the run journal keys resume on.
        """
        canonical = json.dumps(
            {
                "schema_version": SPEC_SCHEMA_VERSION,
                "workload": self.workload.to_dict(),
                "config": _config_to_dict(self.config),
            },
            sort_keys=True,
        )
        return hashlib.blake2b(
            canonical.encode(), digest_size=16
        ).hexdigest()

    # -- sweep expansion ---------------------------------------------------

    def point(self, coords: Dict[str, Any]) -> "RunSpec":
        """The single-point spec at one sweep coordinate.

        The returned spec has ``coords`` folded into its config and no
        sweep, so its digest differs from a sibling point's exactly in
        the swept fields.
        """
        return replace(
            self, config=replace(self.config, **coords), sweep=None
        )

    def expand_points(self) -> List[Tuple[Dict[str, Any], "RunSpec"]]:
        """``(coords, point spec)`` per grid point, in grid order.

        A spec without a sweep expands to a single point with empty
        coords, so planners treat runs and sweeps uniformly.
        """
        if self.sweep is None:
            return [({}, self)]
        return [
            (coords, self.point(coords))
            for coords in self.sweep.coordinates()
        ]


def spec_from_kwargs(
    experiments: Optional[Sequence[str]] = None,
    *,
    max_length: Optional[int] = None,
    config: Optional[LabConfig] = None,
    seed: int = 12345,
    jobs: Optional[Union[int, str]] = None,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    fault_spec: Optional[str] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    chunk_branches: Optional[int] = None,
) -> RunSpec:
    """The keyword surface, folded into a spec.

    The spec it builds carries exactly the same identity an explicit
    :class:`RunSpec` with these values would, so keyword callers
    (``run_spec(spec_from_kwargs(...))``, the CLI's flag path) and
    spec files produce interchangeable digests, manifests and journal
    keys.
    """
    from repro.experiments.base import EXPERIMENT_IDS

    return RunSpec(
        experiments=tuple(
            experiments if experiments is not None else EXPERIMENT_IDS
        ),
        workload=WorkloadSpec(max_length=max_length, seed=seed),
        config=config if config is not None else DEFAULT_CONFIG,
        engine=EngineOptions(
            jobs=None if jobs is None else int(jobs),
            cache=use_cache,
            cache_dir=cache_dir,
            retries=retries,
            task_timeout=task_timeout,
            fault_spec=fault_spec,
            journal=journal_path,
            resume=resume,
            chunk_branches=(
                None if chunk_branches is None else int(chunk_branches)
            ),
        ),
    )
