"""RunSpec: one frozen, serialisable description of "a run".

Four PRs of engine growth accreted onto a kwarg-driven entry path --
``api.run_report`` took a dozen loose parameters and ``repro`` mirrored
them as flags, so there was no single object that *is* the run.  This
module introduces it:

* :class:`RunSpec` -- a frozen, schema-versioned dataclass capturing the
  workload suite (:class:`WorkloadSpec`), the predictor sizing
  (:class:`~repro.analysis.config.LabConfig`), the experiment ids, the
  engine options (:class:`EngineOptions`: jobs, cache, retries,
  timeouts, fault spec, journal/resume), and an optional
  :class:`SweepSpec` gridding over ``LabConfig`` fields.
* JSON round-trip -- :meth:`RunSpec.to_json` / :meth:`RunSpec.from_json`
  with strict unknown-field rejection, so ``repro run spec.json`` and a
  version-controlled spec file are first-class ways to launch a run.
* :meth:`RunSpec.digest` -- a content digest of the run's *identity*
  (workload, config, experiments, sweep).  Engine options deliberately
  do not participate: ``--jobs 4`` changes how a run executes, never
  what it computes, and the digest is the key the journal, the manifest
  and the result cache compare runs by.

The paper's own method is a sweep -- the same traces evaluated across
predictor sizings (figures 4-9, tables 1-3) -- and :class:`SweepSpec`
makes that grid the core experimental object: ``expand_points()`` turns
one swept spec into per-point specs whose digests differ exactly in the
swept fields.

:func:`spec_from_kwargs` is the keyword-flavoured builder: it folds the
CLI's loose flags into the identical spec, so
``spec_from_kwargs(max_length=20_000)`` and an explicit
``RunSpec(workload=WorkloadSpec(max_length=20_000))`` share one digest.
(The old ``api.run_report(**kwargs)`` shim that used to sit on top of
it is gone; execute specs with :func:`repro.api.run_spec`.)
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.config import DEFAULT_CONFIG, LabConfig
from repro.errors import SpecError

#: Bump on any spec layout or semantics change.  v2 added the tagged
#: trace-source union (``workload.kind``: synthetic | imported), mix
#: weights, and workload/mix sweep axes.
SPEC_SCHEMA_VERSION = 2

#: Document versions this reader accepts.  v1 documents (no ``kind``
#: tag, no mix) parse via the synthetic compat path.
SPEC_ACCEPTED_VERSIONS = (1, 2)

#: The schema version embedded in :meth:`RunSpec.identity`.  Pinned
#: independently of the *document* version above: a document-layout
#: revision that does not change what any existing run computes must
#: not shift every digest, journal key and cache key in the fleet.
#: Bump this only when identity semantics themselves change.
SPEC_IDENTITY_VERSION = 1

#: Discriminator so readers can reject non-spec JSON early.
SPEC_KIND = "repro.runspec"

#: Trace-source kinds a v2 workload may declare.
SOURCE_KINDS = ("synthetic", "imported")

#: Workload-level sweep axes (beyond LabConfig fields and ``mix.*``).
WORKLOAD_SWEEP_FIELDS = ("workload.max_length", "workload.seed")

#: LabConfig field names a spec (and a sweep axis) may set.
CONFIG_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(LabConfig)
)

#: Sweep expansion modes: ``grid`` takes the cartesian product of the
#: axes, ``zip`` pairs them element-wise (all axes must be equal length).
SWEEP_MODES = ("grid", "zip")


def _reject_unknown(payload: Dict[str, Any], allowed, context: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise SpecError(
            f"{context}: unknown field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _require(payload: Any, type_, context: str):
    if not isinstance(payload, type_):
        raise SpecError(
            f"{context}: expected {type_.__name__}, got "
            f"{type(payload).__name__}"
        )
    return payload


def _canonical_mix(mix: Any) -> Optional[Tuple[Tuple[str, float], ...]]:
    """Validate a mix mapping and normalise it to a sorted tuple.

    Rejects unknown behaviour classes and negative / non-numeric
    weights *here*, at spec-parse depth, so a bad ``mix.noise`` axis
    fails before any generator work starts.  An empty mix normalises
    to ``None`` (the identity), keeping legacy digests untouched.
    """
    if mix is None:
        return None
    from repro.workloads.motifs import MIX_CLASSES

    if not isinstance(mix, dict):
        mix = dict(mix)
    items = []
    for cls in sorted(mix):
        if not isinstance(cls, str) or cls not in MIX_CLASSES:
            raise SpecError(
                f"workload.mix: unknown behaviour class {cls!r}; choose "
                f"from {', '.join(MIX_CLASSES)}"
            )
        raw = mix[cls]
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise SpecError(
                f"workload.mix[{cls!r}]: expected a number, got {raw!r}"
            )
        weight = float(raw)
        if weight < 0 or weight != weight:
            raise SpecError(
                f"workload.mix[{cls!r}]: weight must be non-negative, "
                f"got {raw!r}"
            )
        items.append((cls, weight))
    return tuple(items) or None


@dataclass(frozen=True)
class SyntheticSource:
    """The generated suite: which analogue traces a run simulates.

    The v1 ``WorkloadSpec`` (``WorkloadSpec`` remains as an alias),
    generalised with first-class behaviour-class ``mix`` weights.

    Attributes:
        max_length: Scale anchor for the longest benchmark trace
            (None = ``REPRO_TRACE_LENGTH`` or 200k); the others keep the
            paper's proportions.
        seed: Workload execution seed (the "input data set").
        benchmarks: Benchmark subset, in suite order (None = the full
            eight-benchmark paper suite).
        mix: Behaviour-class weights over loop/pattern/correlated/noise
            (None = the untouched paper profiles).  Serialised, and
            digested, only when set -- a mix-free source round-trips to
            the exact v1 JSON layout, so every pre-existing digest,
            journal key and cache key is preserved.
    """

    kind = "synthetic"

    max_length: Optional[int] = None
    seed: int = 12345
    benchmarks: Optional[Tuple[str, ...]] = None
    mix: Optional[Tuple[Tuple[str, float], ...]] = None

    def __post_init__(self):
        if self.benchmarks is not None:
            object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(self, "mix", _canonical_mix(self.mix))

    def mix_map(self) -> Optional[Dict[str, float]]:
        """The mix as a plain mapping (None when unset)."""
        return None if self.mix is None else dict(self.mix)

    def trace_names(self) -> Tuple[str, ...]:
        """The benchmark names this source yields, in suite order."""
        if self.benchmarks is not None:
            return self.benchmarks
        from repro.workloads.suite import BENCHMARK_NAMES

        return tuple(BENCHMARK_NAMES)

    def trace_identity(self, name: str) -> str:
        """Per-benchmark source-identity suffix for plan/cache keys.

        ``""`` whenever this source yields the exact legacy trace --
        including a mix that happens not to touch ``name``'s profile --
        so unchanged traces dedupe against legacy keys across mix-swept
        points.
        """
        if self.mix is None:
            return ""
        from repro.workloads.suite import mix_signature

        signature = mix_signature(name, dict(self.mix))
        return f"mix={signature}" if signature else ""

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "max_length": self.max_length,
            "seed": self.seed,
            "benchmarks": (
                None if self.benchmarks is None else list(self.benchmarks)
            ),
        }
        if self.mix is not None:
            # Tagged v2 layout -- only when the new field is in play, so
            # mix-free sources keep the v1 byte layout (and digests).
            payload["kind"] = self.kind
            payload["mix"] = {cls: weight for cls, weight in self.mix}
        return payload

    def identity_dict(self) -> Dict[str, Any]:
        """The digest-relevant form (same as the wire form here)."""
        return self.to_dict()

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SyntheticSource":
        _require(payload, dict, "workload")
        _reject_unknown(
            payload,
            ("kind", "max_length", "seed", "benchmarks", "mix"),
            "workload",
        )
        benchmarks = payload.get("benchmarks")
        if benchmarks is not None:
            benchmarks = tuple(
                _require(name, str, "workload.benchmarks[]")
                for name in _require(benchmarks, list, "workload.benchmarks")
            )
        mix = payload.get("mix")
        if mix is not None:
            _require(mix, dict, "workload.mix")
        spec = cls(
            max_length=payload.get("max_length"),
            seed=payload.get("seed", 12345),
            benchmarks=benchmarks,
            mix=None if mix is None else tuple(sorted(mix.items())),
        )
        if spec.max_length is not None and (
            not isinstance(spec.max_length, int) or spec.max_length <= 0
        ):
            raise SpecError("workload.max_length: expected a positive int")
        if not isinstance(spec.seed, int):
            raise SpecError("workload.seed: expected an int")
        return spec


#: Compat alias: the v1 name for the synthetic source.
WorkloadSpec = SyntheticSource


@dataclass(frozen=True)
class TraceEntry:
    """One imported trace, referenced by content digest.

    Attributes:
        name: The benchmark-style name the trace runs under.
        digest: The canonical trace content digest
            (:meth:`repro.trace.trace.Trace.digest`), the entry's
            *identity*: two entries with equal digests are the same
            trace wherever their files live.
        path: Where the trace bytes live (``.bpt`` spill, text, or
            binary PC+taken).  Execution detail -- excluded from the
            spec digest so a spec stays portable across machines.
        format: Optional declared format (``bpt2``/``text``/``binary``;
            None = sniff from the file).
        branches: Optional declared dynamic branch count, used for
            chunk-span planning before the file is opened.
    """

    name: str
    digest: str
    path: str
    format: Optional[str] = None
    branches: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "digest": self.digest,
            "path": self.path,
            "format": self.format,
            "branches": self.branches,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any], context: str) -> "TraceEntry":
        _require(payload, dict, context)
        _reject_unknown(
            payload, ("name", "digest", "path", "format", "branches"), context
        )
        entry = cls(
            name=_require(payload.get("name", ""), str, f"{context}.name"),
            digest=_require(
                payload.get("digest", ""), str, f"{context}.digest"
            ),
            path=_require(payload.get("path", ""), str, f"{context}.path"),
            format=payload.get("format"),
            branches=payload.get("branches"),
        )
        if not entry.name:
            raise SpecError(f"{context}.name: must be a non-empty string")
        if not entry.digest:
            raise SpecError(f"{context}.digest: must be a non-empty string")
        if not entry.path:
            raise SpecError(f"{context}.path: must be a non-empty string")
        if entry.format is not None and not isinstance(entry.format, str):
            raise SpecError(f"{context}.format: expected a string or null")
        if entry.branches is not None and (
            not isinstance(entry.branches, int) or entry.branches <= 0
        ):
            raise SpecError(f"{context}.branches: expected a positive int")
        return entry


@dataclass(frozen=True)
class ImportedSource:
    """Foreign traces (CBP-style text / binary / ``.bpt``), by digest.

    The run's inputs are the trace *contents*: the spec digest covers
    each entry's name and content digest only, never its path, so a
    spec produced on one machine keys the same journal entries and
    cache hits on another.

    Attributes:
        traces: The imported traces, in run order.
        seed: Nominal run seed recorded in manifests (imported traces
            carry their own outcomes; nothing is generated from this).
    """

    kind = "imported"

    traces: Tuple[TraceEntry, ...] = ()
    seed: int = 0

    #: Imported traces have no synthetic scale anchor.
    max_length = None

    def __post_init__(self):
        object.__setattr__(self, "traces", tuple(self.traces))
        if not self.traces:
            raise SpecError("workload.traces: at least one trace is required")
        names = [entry.name for entry in self.traces]
        if len(set(names)) != len(names):
            raise SpecError(
                f"workload.traces: duplicate trace name(s) in {names}"
            )

    def trace_names(self) -> Tuple[str, ...]:
        return tuple(entry.name for entry in self.traces)

    def entry(self, name: str) -> TraceEntry:
        for candidate in self.traces:
            if candidate.name == name:
                return candidate
        raise KeyError(f"imported source has no trace named {name!r}")

    def trace_identity(self, name: str) -> str:
        """Content-digest identity for plan/cache keys."""
        return f"digest={self.entry(name).digest}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "traces": [entry.to_dict() for entry in self.traces],
        }

    def identity_dict(self) -> Dict[str, Any]:
        """Digest form: names and content digests only, never paths."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "traces": [
                {"name": entry.name, "digest": entry.digest}
                for entry in self.traces
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ImportedSource":
        _require(payload, dict, "workload")
        _reject_unknown(payload, ("kind", "seed", "traces"), "workload")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise SpecError("workload.seed: expected an int")
        raw = _require(payload.get("traces", []), list, "workload.traces")
        traces = tuple(
            TraceEntry.from_dict(item, f"workload.traces[{i}]")
            for i, item in enumerate(raw)
        )
        return cls(traces=traces, seed=seed)


#: The trace-source union every layer downstream of parsing sees.
TraceSource = Union[SyntheticSource, ImportedSource]


def workload_from_dict(payload: Dict[str, Any]) -> TraceSource:
    """Parse a workload document, dispatching on its ``kind`` tag.

    Untagged documents are v1 synthetic workloads (the compat path);
    unknown kinds are rejected here, at parse time.
    """
    _require(payload, dict, "workload")
    kind = payload.get("kind", "synthetic")
    if kind == "synthetic":
        return SyntheticSource.from_dict(payload)
    if kind == "imported":
        return ImportedSource.from_dict(payload)
    raise SpecError(
        f"workload.kind {kind!r} not one of {SOURCE_KINDS}"
    )


@dataclass(frozen=True)
class EngineOptions:
    """How a run executes -- never *what* it computes.

    Every field mirrors one engine flag; None defers to the same
    environment default the flag uses.  Excluded from
    :meth:`RunSpec.digest` by design.
    """

    jobs: Optional[int] = None
    cache: bool = True
    cache_dir: Optional[str] = None
    retries: Optional[int] = None
    task_timeout: Optional[float] = None
    fault_spec: Optional[str] = None
    journal: Optional[str] = None
    resume: bool = False
    chunk_branches: Optional[int] = None

    _FIELDS = (
        "jobs", "cache", "cache_dir", "retries", "task_timeout",
        "fault_spec", "journal", "resume", "chunk_branches",
    )

    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EngineOptions":
        _require(payload, dict, "engine")
        _reject_unknown(payload, cls._FIELDS, "engine")
        return cls(**payload)

    @classmethod
    def from_env(cls, **overrides: Any) -> "EngineOptions":
        """Options with every unset field resolved from the environment.

        This is the *single* env/flag resolution point: the engine
        (:class:`repro.api.EngineSession`), the server, and CLI
        utilities like ``repro cache stats`` all route through it, so
        one ``REPRO_*`` variable means one thing everywhere.

        ``overrides`` are CLI-flag-style values; ``None`` (or an absent
        key) defers to the environment, which in turn defers to the
        built-in default:

        * ``jobs`` -- ``REPRO_JOBS``, else the CPU count;
        * ``cache_dir`` -- ``REPRO_CACHE_DIR``, else ``.repro-cache``;
        * ``retries``/``task_timeout`` -- ``REPRO_MAX_RETRIES`` /
          ``REPRO_TASK_TIMEOUT``, else unset (the retry policy's own
          defaults apply);
        * ``fault_spec`` -- ``REPRO_FAULT_SPEC``, else unset;
        * ``chunk_branches`` -- ``REPRO_CHUNK_BRANCHES``, else unset
          (whole-trace priming; set = streamed chunk window).

        Raises:
            SpecError: On an unknown override name.
        """
        _reject_unknown(overrides, cls._FIELDS, "engine")
        options = cls(**overrides)
        return options.resolved()

    def resolved(self) -> "EngineOptions":
        """A copy with every ``None`` field pinned to its env default.

        Two resolved option sets built under the same environment are
        equal, which is what lets the server, the CLI and tests agree
        on where the cache lives and how many workers run without each
        re-parsing ``REPRO_*`` variables on its own.
        """
        from repro.analysis.cache import default_cache_dir
        from repro.analysis.parallel import resolve_jobs
        from repro.resilience.faults import ENV_FAULT_SPEC
        from repro.resilience.retry import ENV_MAX_RETRIES, ENV_TASK_TIMEOUT
        from repro.trace.stream import ENV_CHUNK_BRANCHES, normalize_chunk_branches

        updates: Dict[str, Any] = {}
        updates["jobs"] = resolve_jobs(
            self.jobs if self.jobs is None else int(self.jobs)
        )
        if self.cache_dir is None:
            updates["cache_dir"] = str(default_cache_dir())
        if self.retries is None:
            text = os.environ.get(ENV_MAX_RETRIES)
            if text:
                try:
                    updates["retries"] = int(text)
                except ValueError:
                    pass
        if self.task_timeout is None:
            text = os.environ.get(ENV_TASK_TIMEOUT)
            if text:
                try:
                    updates["task_timeout"] = float(text)
                except ValueError:
                    pass
        if self.fault_spec is None:
            env_spec = os.environ.get(ENV_FAULT_SPEC)
            if env_spec:
                updates["fault_spec"] = env_spec
        chunk = self.chunk_branches
        if chunk is None:
            text = os.environ.get(ENV_CHUNK_BRANCHES)
            if text:
                try:
                    chunk = int(text)
                except ValueError:
                    chunk = None
        if chunk is not None:
            try:
                updates["chunk_branches"] = normalize_chunk_branches(int(chunk))
            except (TypeError, ValueError) as error:
                raise SpecError(f"engine.chunk_branches: {error}") from None
        return replace(self, **updates)


def _validate_axis(name: str, values: Tuple[Any, ...]) -> None:
    """Reject an unknown axis name or a mistyped axis value."""
    if name in CONFIG_FIELDS or name in WORKLOAD_SWEEP_FIELDS:
        for value in values:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(
                    f"sweep axis {name!r}: values must be ints, got "
                    f"{value!r}"
                )
        return
    if name.startswith("mix."):
        from repro.workloads.motifs import MIX_CLASSES

        cls = name[len("mix."):]
        if cls not in MIX_CLASSES:
            raise SpecError(
                f"sweep axis {name!r}: unknown behaviour class {cls!r}; "
                f"choose from {', '.join(MIX_CLASSES)}"
            )
        for value in values:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"sweep axis {name!r}: weights must be numbers, got "
                    f"{value!r}"
                )
            if value < 0 or value != value:
                raise SpecError(
                    f"sweep axis {name!r}: weights must be non-negative, "
                    f"got {value!r}"
                )
        return
    raise SpecError(
        f"sweep axis {name!r} is not sweepable; choose a LabConfig field "
        f"({', '.join(CONFIG_FIELDS)}), a workload field "
        f"({', '.join(WORKLOAD_SWEEP_FIELDS)}), or mix.<class>"
    )


@dataclass(frozen=True)
class SweepSpec:
    """A grid over config, workload, and mix fields.

    Attributes:
        axes: ``((field, (value, ...)), ...)`` sorted by field name.
            A field is a :class:`LabConfig` sizing field (int values),
            one of :data:`WORKLOAD_SWEEP_FIELDS` (int values), or
            ``mix.<class>`` for a behaviour class from
            :data:`repro.workloads.motifs.MIX_CLASSES` (non-negative
            numeric weights).
        mode: ``grid`` (cartesian product, the default) or ``zip``
            (element-wise pairing; axes must share one length).
    """

    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    mode: str = "grid"

    def __post_init__(self):
        normalized = tuple(
            sorted((name, tuple(values)) for name, values in dict(self.axes).items())
        )
        object.__setattr__(self, "axes", normalized)
        for name, values in self.axes:
            if not values:
                raise SpecError(f"sweep axis {name!r} has no values")
            _validate_axis(name, values)
        if not self.axes:
            raise SpecError("sweep: at least one axis is required")
        if self.mode not in SWEEP_MODES:
            raise SpecError(
                f"sweep mode {self.mode!r} not in {SWEEP_MODES}"
            )
        if self.mode == "zip":
            lengths = {len(values) for _, values in self.axes}
            if len(lengths) > 1:
                raise SpecError(
                    "sweep mode 'zip' requires equal-length axes; got "
                    f"lengths {sorted(lengths)}"
                )

    def coordinates(self) -> List[Dict[str, Any]]:
        """Every grid point as an ordered ``{field: value}`` mapping."""
        names = [name for name, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        if self.mode == "zip":
            combos = list(zip(*value_lists))
        else:
            combos = list(itertools.product(*value_lists))
        return [dict(zip(names, combo)) for combo in combos]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "axes": {name: list(values) for name, values in self.axes},
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepSpec":
        _require(payload, dict, "sweep")
        _reject_unknown(payload, ("axes", "mode"), "sweep")
        axes = _require(payload.get("axes", {}), dict, "sweep.axes")
        return cls(
            axes=tuple(
                (name, tuple(_require(values, list, f"sweep.axes[{name!r}]")))
                for name, values in axes.items()
            ),
            mode=payload.get("mode", "grid"),
        )


def _config_to_dict(config: LabConfig) -> Dict[str, Any]:
    return {name: getattr(config, name) for name in CONFIG_FIELDS}


def _config_from_dict(payload: Dict[str, Any]) -> LabConfig:
    _require(payload, dict, "config")
    _reject_unknown(payload, CONFIG_FIELDS, "config")
    for name, value in payload.items():
        if not isinstance(value, int):
            raise SpecError(
                f"config.{name}: expected an int, got {value!r}"
            )
    return LabConfig(**payload)


@dataclass(frozen=True)
class RunSpec:
    """The complete, serialisable description of one run (or sweep).

    A spec is pure data: constructing one performs no work, and two
    specs with equal :meth:`digest` describe runs that must produce
    bit-identical results.  ``repro run spec.json`` executes one;
    :func:`repro.api.run_spec` is the library entry point.
    """

    experiments: Tuple[str, ...] = ()
    workload: TraceSource = field(default_factory=SyntheticSource)
    config: LabConfig = DEFAULT_CONFIG
    engine: EngineOptions = field(default_factory=EngineOptions)
    sweep: Optional[SweepSpec] = None

    def __post_init__(self):
        object.__setattr__(self, "experiments", tuple(self.experiments))

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The schema-versioned JSON-ready form of this spec."""
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "kind": SPEC_KIND,
            "experiments": list(self.experiments),
            "workload": self.workload.to_dict(),
            "config": _config_to_dict(self.config),
            "engine": self.engine.to_dict(),
            "sweep": None if self.sweep is None else self.sweep.to_dict(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical (key-sorted) JSON of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSpec":
        """Parse a spec document, rejecting unknown fields at every level.

        Raises:
            SpecError: On a wrong kind/schema version, an unknown field
                anywhere in the document, or a mistyped value.
        """
        _require(payload, dict, "spec")
        _reject_unknown(
            payload,
            (
                "schema_version", "kind", "experiments", "workload",
                "config", "engine", "sweep",
            ),
            "spec",
        )
        kind = payload.get("kind", SPEC_KIND)
        if kind != SPEC_KIND:
            raise SpecError(f"spec kind {kind!r} != {SPEC_KIND!r}")
        version = payload.get("schema_version", SPEC_SCHEMA_VERSION)
        if version not in SPEC_ACCEPTED_VERSIONS:
            raise SpecError(
                f"spec schema_version {version!r} not in "
                f"{SPEC_ACCEPTED_VERSIONS} (this reader)"
            )
        experiments = tuple(
            _require(item, str, "experiments[]")
            for item in _require(
                payload.get("experiments", []), list, "experiments"
            )
        )
        sweep = payload.get("sweep")
        return cls(
            experiments=experiments,
            workload=workload_from_dict(payload.get("workload", {})),
            config=_config_from_dict(payload.get("config", {})),
            engine=EngineOptions.from_dict(payload.get("engine", {})),
            sweep=None if sweep is None else SweepSpec.from_dict(sweep),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"spec is not valid JSON: {error}") from None
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str) -> "RunSpec":
        with open(path) as fh:
            text = fh.read()
        return cls.from_json(text)

    def to_file(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=2))
            fh.write("\n")

    # -- identity ----------------------------------------------------------

    def identity(self) -> Dict[str, Any]:
        """The digest-relevant subset: what the run computes.

        Engine options (jobs, cache, retries, ...) are excluded: they
        change execution, never results.  The workload participates via
        :meth:`~SyntheticSource.identity_dict` -- for imported sources
        that is trace names plus content digests, never file paths.
        """
        return {
            "schema_version": SPEC_IDENTITY_VERSION,
            "experiments": list(self.experiments),
            "workload": self.workload.identity_dict(),
            "config": _config_to_dict(self.config),
            "sweep": None if self.sweep is None else self.sweep.to_dict(),
        }

    def digest(self) -> str:
        """Content digest of this spec's identity (hex, stable)."""
        canonical = json.dumps(self.identity(), sort_keys=True)
        return hashlib.blake2b(
            canonical.encode(), digest_size=16
        ).hexdigest()

    def input_digest(self) -> str:
        """Digest of the run's *inputs* only: workload plus config.

        Unlike :meth:`digest`, the experiment selection and sweep do
        not participate: an experiment journaled under one selection is
        replayable under any other as long as the traces and sizing
        match.  This is what the run journal keys resume on.
        """
        canonical = json.dumps(
            {
                "schema_version": SPEC_IDENTITY_VERSION,
                "workload": self.workload.identity_dict(),
                "config": _config_to_dict(self.config),
            },
            sort_keys=True,
        )
        return hashlib.blake2b(
            canonical.encode(), digest_size=16
        ).hexdigest()

    # -- sweep expansion ---------------------------------------------------

    def point(self, coords: Dict[str, Any]) -> "RunSpec":
        """The single-point spec at one sweep coordinate.

        The returned spec has ``coords`` folded into its config and
        workload (``workload.*`` / ``mix.*`` axes) and no sweep, so its
        digest differs from a sibling point's exactly in the swept
        fields.

        Raises:
            SpecError: When a workload or mix axis targets an imported
                source (there is nothing to regenerate).
        """
        config_coords = {
            name: value
            for name, value in coords.items()
            if name in CONFIG_FIELDS
        }
        workload_coords = {
            name.split(".", 1)[1]: value
            for name, value in coords.items()
            if name in WORKLOAD_SWEEP_FIELDS
        }
        mix_coords = {
            name[len("mix."):]: value
            for name, value in coords.items()
            if name.startswith("mix.")
        }
        workload = self.workload
        if workload_coords or mix_coords:
            if not isinstance(workload, SyntheticSource):
                swept = sorted(
                    set(coords) - set(config_coords)
                )
                raise SpecError(
                    f"sweep axes {swept} require a synthetic workload; "
                    f"this spec imports traces"
                )
            updates: Dict[str, Any] = dict(workload_coords)
            if mix_coords:
                merged = dict(workload.mix or ())
                merged.update(mix_coords)
                updates["mix"] = tuple(sorted(merged.items()))
            workload = replace(workload, **updates)
        return replace(
            self,
            config=replace(self.config, **config_coords),
            workload=workload,
            sweep=None,
        )

    def expand_points(self) -> List[Tuple[Dict[str, Any], "RunSpec"]]:
        """``(coords, point spec)`` per grid point, in grid order.

        A spec without a sweep expands to a single point with empty
        coords, so planners treat runs and sweeps uniformly.
        """
        if self.sweep is None:
            return [({}, self)]
        return [
            (coords, self.point(coords))
            for coords in self.sweep.coordinates()
        ]


def spec_from_kwargs(
    experiments: Optional[Sequence[str]] = None,
    *,
    max_length: Optional[int] = None,
    config: Optional[LabConfig] = None,
    seed: int = 12345,
    jobs: Optional[Union[int, str]] = None,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    fault_spec: Optional[str] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    chunk_branches: Optional[int] = None,
) -> RunSpec:
    """The keyword surface, folded into a spec.

    The spec it builds carries exactly the same identity an explicit
    :class:`RunSpec` with these values would, so keyword callers
    (``run_spec(spec_from_kwargs(...))``, the CLI's flag path) and
    spec files produce interchangeable digests, manifests and journal
    keys.
    """
    from repro.experiments.base import EXPERIMENT_IDS

    return RunSpec(
        experiments=tuple(
            experiments if experiments is not None else EXPERIMENT_IDS
        ),
        workload=WorkloadSpec(max_length=max_length, seed=seed),
        config=config if config is not None else DEFAULT_CONFIG,
        engine=EngineOptions(
            jobs=None if jobs is None else int(jobs),
            cache=use_cache,
            cache_dir=cache_dir,
            retries=retries,
            task_timeout=task_timeout,
            fault_spec=fault_spec,
            journal=journal_path,
            resume=resume,
            chunk_branches=(
                None if chunk_branches is None else int(chunk_branches)
            ),
        ),
    )
