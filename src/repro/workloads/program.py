"""Structured-program IR and the trace-emitting interpreter.

A :class:`Program` is a set of procedures built from structured
statements (blocks, ifs, for/while loops, calls, assignments).  Layout
assigns every branch site a fixed address, with loop branches backward
and if/while-exit branches forward, so traces carry realistic
direction information for the backward-branch tagging scheme
(section 3.2) and the BTFNT baseline.  Execution interprets the program
against an :class:`Environment` (boolean variables + seeded RNG) and
emits one trace record per executed conditional branch.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.trace.trace import Trace, TraceBuilder
from repro.workloads.conditions import Expr, TripCountGenerator

#: Address stride between instruction slots.
ADDRESS_STRIDE = 4


class Environment:
    """Mutable program state: variables, counters, and the workload RNG.

    Variables are booleans (branch conditions); counters are integers
    (recursion depths, element counts) read through
    :class:`~repro.workloads.conditions.CounterBelowExpr`.
    """

    __slots__ = ("variables", "counters", "rng")

    def __init__(self, rng: random.Random) -> None:
        self.variables: Dict[str, bool] = {}
        self.counters: Dict[str, int] = {}
        self.rng = rng


class _AddressAllocator:
    """Hands out increasing instruction addresses."""

    def __init__(self, start: int = 0x1000) -> None:
        self._next = start

    def allocate(self) -> int:
        address = self._next
        self._next += ADDRESS_STRIDE
        return address


class _TraceComplete(Exception):
    """Raised internally when the requested trace length is reached."""


class _Emitter:
    """Collects emitted branches and stops execution at the target length.

    ``builder`` is anything with ``append(pc, target, taken)`` and
    ``__len__``: the default whole-trace :class:`TraceBuilder`, or a
    :class:`~repro.trace.trace.ChunkedTraceBuilder` when the caller
    streams windows out instead of materialising the run.
    """

    def __init__(self, target_length: int, builder=None) -> None:
        self.builder = TraceBuilder() if builder is None else builder
        self._target = target_length

    def emit(self, pc: int, target: int, taken: bool) -> None:
        self.builder.append(pc, target, taken)
        if len(self.builder) >= self._target:
            raise _TraceComplete


class Statement(abc.ABC):
    """A structured-program statement."""

    @abc.abstractmethod
    def layout(self, allocator: _AddressAllocator) -> None:
        """Assign addresses to this statement's branch sites."""

    @abc.abstractmethod
    def execute(self, env: Environment, emitter: _Emitter, program: "Program") -> None:
        """Interpret the statement, emitting branches as they execute."""


class Block(Statement):
    """A sequence of statements."""

    def __init__(self, statements: Sequence[Statement]) -> None:
        self.statements: List[Statement] = list(statements)

    def layout(self, allocator: _AddressAllocator) -> None:
        for statement in self.statements:
            statement.layout(allocator)

    def execute(self, env: Environment, emitter: _Emitter, program: "Program") -> None:
        for statement in self.statements:
            statement.execute(env, emitter, program)


class Assign(Statement):
    """Evaluate an expression and store it in a variable (no branch)."""

    def __init__(self, name: str, expr: Expr) -> None:
        self.name = name
        self.expr = expr

    def layout(self, allocator: _AddressAllocator) -> None:
        pass

    def execute(self, env: Environment, emitter: _Emitter, program: "Program") -> None:
        env.variables[self.name] = bool(self.expr.evaluate(env))


class Effect(Statement):
    """Run an arbitrary environment mutation (no branch)."""

    def __init__(self, action: Callable[[Environment], None]) -> None:
        self.action = action

    def layout(self, allocator: _AddressAllocator) -> None:
        pass

    def execute(self, env: Environment, emitter: _Emitter, program: "Program") -> None:
        self.action(env)


class If(Statement):
    """A conditional: one forward branch, taken when the condition holds."""

    def __init__(
        self,
        condition: Expr,
        then_body: Optional[Statement] = None,
        else_body: Optional[Statement] = None,
    ) -> None:
        self.condition = condition
        self.then_body = then_body
        self.else_body = else_body
        self.pc = -1
        self.target = -1

    def layout(self, allocator: _AddressAllocator) -> None:
        self.pc = allocator.allocate()
        if self.then_body is not None:
            self.then_body.layout(allocator)
        if self.else_body is not None:
            self.else_body.layout(allocator)
        # Forward target: past the whole statement.
        self.target = allocator.allocate()

    def execute(self, env: Environment, emitter: _Emitter, program: "Program") -> None:
        outcome = bool(self.condition.evaluate(env))
        emitter.emit(self.pc, self.target, outcome)
        body = self.then_body if outcome else self.else_body
        if body is not None:
            body.execute(env, emitter, program)


class ForLoop(Statement):
    """A bottom-tested loop: backward branch taken while iterating.

    The trip generator yields the number of body executions t (>= 1);
    the loop-closing branch executes t times -- taken t-1 times, then
    not-taken once -- the paper's for-type behaviour.
    """

    def __init__(self, trips: TripCountGenerator, body: Statement) -> None:
        self.trips = trips
        self.body = body
        self.start = -1
        self.pc = -1

    def layout(self, allocator: _AddressAllocator) -> None:
        self.start = allocator.allocate()
        self.body.layout(allocator)
        self.pc = allocator.allocate()  # after the body: backward branch

    def execute(self, env: Environment, emitter: _Emitter, program: "Program") -> None:
        trip_count = max(1, int(self.trips(env)))
        for iteration in range(trip_count):
            self.body.execute(env, emitter, program)
            emitter.emit(self.pc, self.start, iteration < trip_count - 1)


class WhileLoop(Statement):
    """A top-tested loop: forward exit branch, taken once to leave.

    The trip generator yields the number of body executions t (>= 0);
    the exit branch executes t+1 times -- not-taken t times, then taken
    once -- the paper's while-type behaviour.
    """

    def __init__(self, trips: TripCountGenerator, body: Statement) -> None:
        self.trips = trips
        self.body = body
        self.pc = -1
        self.target = -1

    def layout(self, allocator: _AddressAllocator) -> None:
        self.pc = allocator.allocate()
        self.body.layout(allocator)
        self.target = allocator.allocate()  # forward: past the loop

    def execute(self, env: Environment, emitter: _Emitter, program: "Program") -> None:
        trip_count = max(0, int(self.trips(env)))
        for _iteration in range(trip_count):
            emitter.emit(self.pc, self.target, False)
            self.body.execute(env, emitter, program)
        emitter.emit(self.pc, self.target, True)


class AddCounter(Statement):
    """Add ``delta`` to an integer counter (no branch)."""

    def __init__(self, name: str, delta: int) -> None:
        self.name = name
        self.delta = delta

    def layout(self, allocator: _AddressAllocator) -> None:
        pass

    def execute(self, env: Environment, emitter: _Emitter, program: "Program") -> None:
        env.counters[self.name] = env.counters.get(self.name, 0) + self.delta


class SetCounter(Statement):
    """Set an integer counter (no branch)."""

    def __init__(self, name: str, value: int) -> None:
        self.name = name
        self.value = value

    def layout(self, allocator: _AddressAllocator) -> None:
        pass

    def execute(self, env: Environment, emitter: _Emitter, program: "Program") -> None:
        env.counters[self.name] = self.value


class Call(Statement):
    """Invoke another procedure by name.

    Procedures may call themselves (directly or mutually); guard the
    recursion with a depth counter or the interpreter will recurse until
    Python's limit.
    """

    def __init__(self, callee: str) -> None:
        self.callee = callee

    def layout(self, allocator: _AddressAllocator) -> None:
        pass

    def execute(self, env: Environment, emitter: _Emitter, program: "Program") -> None:
        program.procedure(self.callee).body.execute(env, emitter, program)


class Procedure:
    """A named procedure with a single body statement."""

    def __init__(self, name: str, body: Statement) -> None:
        self.name = name
        self.body = body


class Program:
    """A complete synthetic program.

    Args:
        procedures: All procedures; addresses are laid out in the given
            order.
        main: Name of the procedure executed repeatedly to produce the
            trace.
    """

    def __init__(self, procedures: Sequence[Procedure], main: str) -> None:
        self._procedures = {proc.name: proc for proc in procedures}
        if len(self._procedures) != len(procedures):
            raise ValueError("duplicate procedure names")
        if main not in self._procedures:
            raise ValueError(f"main procedure {main!r} not defined")
        self._main = main
        allocator = _AddressAllocator()
        for proc in procedures:
            proc.body.layout(allocator)

    def procedure(self, name: str) -> Procedure:
        try:
            return self._procedures[name]
        except KeyError:
            raise KeyError(f"undefined procedure {name!r}") from None

    @property
    def procedures(self) -> List[Procedure]:
        """All procedures in layout order (static-analysis entry point)."""
        return list(self._procedures.values())

    @property
    def main(self) -> str:
        return self._main


def execute_program(program: Program, num_branches: int, seed: int) -> Trace:
    """Run ``program`` until ``num_branches`` conditional branches execute.

    The main procedure is invoked repeatedly (an outer driver loop, like
    a benchmark's main processing loop); the trace is cut at exactly
    ``num_branches`` records.

    Args:
        program: The program to interpret.
        num_branches: Target dynamic conditional branch count (> 0).
        seed: Workload RNG seed; identical seeds reproduce identical
            traces.
    """
    if num_branches < 1:
        raise ValueError(f"num_branches must be >= 1, got {num_branches}")
    env = Environment(random.Random(seed))
    emitter = _Emitter(num_branches)
    main_body = program.procedure(program.main).body
    try:
        while True:
            main_body.execute(env, emitter, program)
    except _TraceComplete:
        pass
    return emitter.builder.build()


def stream_program(
    program: Program,
    num_branches: int,
    seed: int,
    sink,
    chunk_branches: int,
) -> int:
    """Run ``program`` like :func:`execute_program`, streaming windows out.

    Identical interpretation (same seed, same records, same cut point),
    but branches are flushed to ``sink(pc, target, taken)`` in
    ``chunk_branches``-sized windows instead of accumulating in memory
    -- peak residency is one window regardless of ``num_branches``.
    Returns the number of branches emitted (== ``num_branches``).
    """
    from repro.trace.trace import ChunkedTraceBuilder

    if num_branches < 1:
        raise ValueError(f"num_branches must be >= 1, got {num_branches}")
    env = Environment(random.Random(seed))
    emitter = _Emitter(num_branches, builder=ChunkedTraceBuilder(sink, chunk_branches))
    main_body = program.procedure(program.main).body
    try:
        while True:
            main_body.execute(env, emitter, program)
    except _TraceComplete:
        pass
    return emitter.builder.finish()
