"""Reusable branch-behaviour motifs.

Each motif builds a statement subtree exhibiting one behaviour class from
the paper.  Benchmark analogues (:mod:`repro.workloads.generator`) are
composed from these, with parameters drawn from a per-benchmark build
RNG so that every instance is a distinct static-code unit.

Correlation motifs take the *source* expression for the shared condition
as a parameter: a Markov source makes the leading branch dynamically
predictable but statically unpredictable (the common case in real code),
a Bernoulli source makes it noise that only the correlated follower can
benefit from.
"""

from __future__ import annotations

import random
from typing import List

from repro.workloads.conditions import (
    AndExpr,
    BernoulliExpr,
    ConstExpr,
    Expr,
    MarkovExpr,
    NotExpr,
    OrExpr,
    PatternExpr,
    PhaseExpr,
    SelfHistoryExpr,
    TripCountGenerator,
)
from repro.workloads.conditions import VarExpr
from repro.workloads.conditions import CounterBelowExpr
from repro.workloads.program import (
    AddCounter,
    Assign,
    Block,
    Call,
    ForLoop,
    If,
    SetCounter,
    Statement,
    WhileLoop,
)

#: The paper's behaviour classes, as sweepable mix dimensions.  Each
#: generator unit kind maps onto exactly one class (or none: the
#: biased mass is the baseline every benchmark keeps), and a
#: :class:`~repro.spec.SyntheticSource` ``mix`` weight scales every
#: unit of that class in a profile.
MIX_CLASSES = ("loop", "pattern", "correlated", "noise")

#: Unit kind -> behaviour class.  Kinds absent here (``biased_run``,
#: ``biased``) are the unclassified baseline mass: mix weights never
#: touch them, so a program can never scale itself empty.
MOTIF_CLASSES = {
    "for_loop": "loop",
    "while_loop": "loop",
    "loop_nest": "loop",
    "gated_loop": "loop",
    "pattern": "pattern",
    "block": "pattern",
    "selfdep": "pattern",
    "corr_pair": "correlated",
    "corr_triple": "correlated",
    "corr_quad": "correlated",
    "assign_corr": "correlated",
    "chain": "correlated",
    "call": "correlated",
    "recursion": "correlated",
    "noise": "noise",
    "data": "noise",
    "markov": "noise",
    "phase": "noise",
}


def mix_class(kind: str) -> str:
    """The behaviour class of one unit kind ('' for the biased mass)."""
    return MOTIF_CLASSES.get(kind, "")


def biased_branch(probability: float) -> Statement:
    """A single branch taken with fixed probability (bias class)."""
    return If(BernoulliExpr(probability))


def biased_run(rng: random.Random, count: int, low: float, high: float) -> Statement:
    """A straight-line block of heavily biased branches.

    Real code is dominated by error checks and rarely-changing guards;
    the paper finds that roughly 45% of dynamic branches are more than
    99% biased.  This motif supplies that mass cheaply.
    """
    branches: List[Statement] = []
    for _ in range(count):
        probability = rng.uniform(low, high)
        if rng.random() < 0.35:
            probability = 1.0 - probability
        branches.append(If(BernoulliExpr(probability)))
    return Block(branches)


def data_branch(probability: float) -> Statement:
    """A weakly biased, history-independent branch (hard for everyone)."""
    return If(BernoulliExpr(probability))


def markov_branch(p_stay: float) -> Statement:
    """A branch driven by temporally-correlated data (non-repeating class)."""
    return If(MarkovExpr(p_stay))


def self_history_branch(
    rng: random.Random, depth: int, flip_probability: float
) -> Statement:
    """A branch predictable from its own history but never periodic.

    The truth table is drawn at build time and rejected if constant (a
    constant function would be a biased branch, not a non-repeating
    pattern).
    """
    size = 1 << depth
    while True:
        table = [rng.random() < 0.5 for _ in range(size)]
        if any(table) and not all(table):
            break
    return If(SelfHistoryExpr(table, depth, flip_probability))


def pattern_branch(pattern: List[bool]) -> Statement:
    """A branch repeating a fixed outcome pattern (fixed-length class)."""
    return If(PatternExpr(pattern))


def block_pattern_branch(taken_run: int, not_taken_run: int) -> Statement:
    """A branch taken n times then not-taken m times (block class)."""
    return If(PatternExpr([True] * taken_run + [False] * not_taken_run))


def phased_branch(period: int, p_first: float, p_second: float) -> Statement:
    """A branch whose bias flips between program phases."""
    return If(PhaseExpr(period, BernoulliExpr(p_first), BernoulliExpr(p_second)))


def correlated_pair(
    prefix: str,
    first_source: Expr,
    p_second: float = 0.6,
    filler: int = 0,
    filler_bias: float = 0.9,
) -> Statement:
    """Figure 1a: ``if (cond1) ... if (cond1 AND cond2)``.

    The second branch is fully determined by the first whenever cond1 is
    false; ``filler`` biased branches can be placed between the pair to
    control the correlation distance (figure 5's subject).
    """
    c1 = f"{prefix}_c1"
    c2 = f"{prefix}_c2"
    statements: List[Statement] = [
        Assign(c1, first_source),
        Assign(c2, BernoulliExpr(p_second)),
        If(VarExpr(c1)),
    ]
    statements.extend(If(BernoulliExpr(filler_bias)) for _ in range(filler))
    statements.append(If(AndExpr(VarExpr(c1), VarExpr(c2))))
    return Block(statements)


def assignment_correlation(
    prefix: str, condition_source: Expr, p_background: float = 0.3
) -> Statement:
    """Figure 1b: ``if (cond1) a = 2; ... if (a == 0)``.

    The flag tested by the second branch is set on the first branch's
    taken path, so the second branch's outcome is generated *based on*
    the first's outcome -- the paper's second kind of direction
    correlation.
    """
    c1 = f"{prefix}_c1"
    flag = f"{prefix}_flag"
    return Block(
        [
            Assign(flag, BernoulliExpr(p_background)),
            Assign(c1, condition_source),
            If(VarExpr(c1), then_body=Assign(flag, ConstExpr(True))),
            If(VarExpr(flag)),
        ]
    )


def if_elif_chain(
    prefix: str,
    first_source: Expr,
    second_source: Expr,
    p_arm: float = 0.6,
) -> Statement:
    """Figure 2: an if/elif chain followed by a branch on the chain's conditions.

    Reaching the third arm implies the first two conditions were false
    (their negations true), so *being in the path* -- not the arm's own
    direction -- predicts the later ``if (cond1 AND cond2)`` branch.
    """
    c1 = f"{prefix}_c1"
    c2 = f"{prefix}_c2"
    chain = If(
        NotExpr(VarExpr(c1)),
        then_body=biased_branch(0.8),
        else_body=If(
            NotExpr(VarExpr(c2)),
            then_body=biased_branch(0.85),
            else_body=If(BernoulliExpr(p_arm)),
        ),
    )
    return Block(
        [
            Assign(c1, first_source),
            Assign(c2, second_source),
            chain,
            If(AndExpr(VarExpr(c1), VarExpr(c2))),
        ]
    )


def for_loop(trips: TripCountGenerator, body: Statement) -> Statement:
    """A for-type loop (backward branch, taken n times then not-taken)."""
    return ForLoop(trips, body)


def while_loop(trips: TripCountGenerator, body: Statement) -> Statement:
    """A while-type loop (forward exit branch, not-taken n times then taken)."""
    return WhileLoop(trips, body)


def loop_nest(
    outer_trips: TripCountGenerator,
    inner_trips: TripCountGenerator,
    inner_body: Statement,
) -> Statement:
    """Two nested for-loops (image-processing style row/column scans)."""
    return ForLoop(outer_trips, ForLoop(inner_trips, inner_body))


def call_site_pair(prefix: str, callee: str, p_alternate: float = 0.7) -> Statement:
    """Two call sites priming a mode flag the callee branches on.

    The callee's branch outcome depends on *where it was called from* --
    the subroutine-entry in-path correlation the paper describes: "If the
    current branch is at the beginning of a subroutine, its outcome may
    depend on where the subroutine was called from."
    """
    mode = f"{callee}_mode"
    return Block(
        [
            Assign(mode, ConstExpr(True)),
            Call(callee),
            If(BernoulliExpr(0.95)),
            Assign(mode, BernoulliExpr(p_alternate)),
            Call(callee),
        ]
    )


def make_callee_body(callee: str, extra_branches: int = 2) -> Statement:
    """Body for a procedure used by :func:`call_site_pair`."""
    mode = f"{callee}_mode"
    statements: List[Statement] = [If(VarExpr(mode))]
    statements.extend(
        If(OrExpr(VarExpr(mode), BernoulliExpr(0.15)))
        for _ in range(extra_branches)
    )
    return Block(statements)


def random_pattern(rng: random.Random, length: int) -> List[bool]:
    """A random, non-trivial fixed pattern of the given length."""
    if length < 2:
        raise ValueError(f"pattern length must be >= 2, got {length}")
    while True:
        pattern = [rng.random() < 0.5 for _ in range(length)]
        if any(pattern) and not all(pattern):
            return pattern


def gated_loop(prefix: str, trips: TripCountGenerator, body: Statement, p_enter: float = 0.8) -> Statement:
    """A guarded loop: the guard correlates with the loop branches behind it."""
    guard = f"{prefix}_enter"
    return Block(
        [
            Assign(guard, BernoulliExpr(p_enter)),
            If(VarExpr(guard), then_body=ForLoop(trips, body)),
        ]
    )


def correlated_triple(
    prefix: str,
    p_first: float,
    p_second: float,
    filler: int = 0,
    filler_bias: float = 0.92,
) -> Statement:
    """Figure 1c: ``if (c1) ... if (c2) ... if (c1 AND c2)``.

    Both conditions are tested by *separate* prior branches, so a
    1-branch selective history captures only half the information and a
    2-branch history determines the final branch exactly -- the paper's
    case for correlation with multiple branches.
    """
    c1 = f"{prefix}_c1"
    c2 = f"{prefix}_c2"
    statements: List[Statement] = [
        Assign(c1, BernoulliExpr(p_first)),
        Assign(c2, BernoulliExpr(p_second)),
        If(VarExpr(c1)),
        If(VarExpr(c2)),
    ]
    statements.extend(If(BernoulliExpr(filler_bias)) for _ in range(filler))
    statements.append(If(AndExpr(VarExpr(c1), VarExpr(c2))))
    return Block(statements)


def correlated_quad(
    prefix: str,
    p_first: float,
    p_second: float,
    p_third: float,
) -> Statement:
    """Three observable conditions feeding one branch.

    ``if (c1) ... if (c2) ... if (c3) ... if (c1 AND (c2 OR c3))``:
    a 3-branch selective history is needed to pin the final branch down.
    """
    c1 = f"{prefix}_c1"
    c2 = f"{prefix}_c2"
    c3 = f"{prefix}_c3"
    return Block(
        [
            Assign(c1, BernoulliExpr(p_first)),
            Assign(c2, BernoulliExpr(p_second)),
            Assign(c3, BernoulliExpr(p_third)),
            If(VarExpr(c1)),
            If(VarExpr(c2)),
            If(VarExpr(c3)),
            If(AndExpr(VarExpr(c1), OrExpr(VarExpr(c2), VarExpr(c3)))),
        ]
    )


def make_recursive_procedure(
    callee: str,
    max_depth: int,
    p_continue: float,
) -> "Procedure":
    """A depth-guarded self-calling procedure (xlisp-style recursion).

    The recursion branch is taken with probability ``p_continue`` while
    the depth counter is below ``max_depth``; its outcome therefore
    correlates with call depth, and the leaf branch behind it sees a
    depth-dependent path -- behaviour only recursion produces.
    """
    from repro.workloads.program import Procedure

    depth = f"{callee}_depth"
    body = Block(
        [
            If(
                AndExpr(
                    CounterBelowExpr(depth, max_depth),
                    BernoulliExpr(p_continue),
                ),
                then_body=Block(
                    [
                        AddCounter(depth, 1),
                        Call(callee),
                        AddCounter(depth, -1),
                    ]
                ),
                else_body=If(BernoulliExpr(0.9)),  # leaf work
            ),
        ]
    )
    return Procedure(callee, body)


def recursive_descent(prefix: str, callee: str) -> Statement:
    """Call site for :func:`make_recursive_procedure`."""
    depth = f"{callee}_depth"
    return Block(
        [
            SetCounter(depth, 0),
            Call(callee),
        ]
    )
