"""Synthetic workloads: the SPECint95 substitute.

The paper drives every experiment from SPECint95 traces; those binaries,
inputs, and a trace-capture toolchain are unavailable here, so this
package provides the documented substitution (DESIGN.md section 2): a
small structured-program IR whose *execution* emits branch traces
exhibiting the behaviour classes the paper analyses --

* direction correlation between branches (figures 1a/1b),
* in-path correlation through if/elif chains and call sites (figure 2),
* for-type and while-type loops with stable or drifting trip counts,
* fixed-length and block repeating patterns,
* heavily biased branches, and
* data-dependent, weakly-predictable branches.

Eight benchmark analogues (compress, gcc, go, ijpeg, m88ksim, perl,
vortex, xlisp) mix these motifs in proportions tuned so the qualitative
orderings of the paper's tables and figures hold.
"""

from repro.workloads.conditions import (
    AndExpr,
    BernoulliExpr,
    ConstExpr,
    Expr,
    MarkovExpr,
    NotExpr,
    OrExpr,
    CounterBelowExpr,
    PatternExpr,
    PhaseExpr,
    SelfHistoryExpr,
    VarExpr,
    constant_trips,
    drifting_trips,
    uniform_trips,
)
from repro.workloads.program import (
    AddCounter,
    Assign,
    Block,
    Call,
    Effect,
    ForLoop,
    If,
    Procedure,
    Program,
    SetCounter,
    Statement,
    WhileLoop,
    execute_program,
)
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    WorkloadSpec,
    benchmark_spec,
    default_trace_length,
    load_benchmark,
    load_suite,
    scaled_length,
)

__all__ = [
    "AddCounter",
    "AndExpr",
    "Assign",
    "BENCHMARK_NAMES",
    "BernoulliExpr",
    "Block",
    "Call",
    "ConstExpr",
    "CounterBelowExpr",
    "Effect",
    "Expr",
    "ForLoop",
    "If",
    "MarkovExpr",
    "NotExpr",
    "OrExpr",
    "PatternExpr",
    "PhaseExpr",
    "SelfHistoryExpr",
    "Procedure",
    "Program",
    "SetCounter",
    "Statement",
    "VarExpr",
    "WhileLoop",
    "WorkloadSpec",
    "benchmark_spec",
    "constant_trips",
    "default_trace_length",
    "drifting_trips",
    "execute_program",
    "load_benchmark",
    "load_suite",
    "uniform_trips",
]
