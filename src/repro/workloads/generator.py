"""Benchmark-analogue program generation.

A :class:`BenchmarkProfile` names how many units of each behaviour motif
a benchmark contains and the parameter ranges the build RNG draws from.
The profiles for the eight SPECint95 analogues live in
:mod:`repro.workloads.suite`; this module turns a profile into a
:class:`~repro.workloads.program.Program`.

Unit mixes are *tuned*, not derived: the goal (DESIGN.md section 5) is
that the relative difficulty ordering and the per-class fractions of the
paper's benchmarks are preserved, not the absolute SPEC numbers.

Unit kinds:

========== ============================================================
kind        behaviour
========== ============================================================
biased_run  block of >95%-biased branches (the dominant mass)
biased      single biased branch
noise       weakly biased, history-independent branch
data        moderately biased, history-independent branch
markov      temporally-correlated data branch
selfdep     own-history-function branch (non-repeating class)
phase       branch whose bias flips between long program phases
corr_pair   figure 1a direction correlation
corr_triple figure 1c correlation with two prior branches
corr_quad   correlation with three prior branches
assign_corr figure 1b direction correlation
chain       figure 2 in-path correlation
for_loop    for-type loop (backward branch)
while_loop  while-type loop (forward exit branch)
loop_nest   nested for-loops
gated_loop  guarded loop (guard correlates with loop branches)
pattern     fixed repeating outcome pattern
block       block pattern (n taken / m not-taken)
call        call-site-correlated procedure
recursion   depth-guarded self-calling procedure
========== ============================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.workloads import motifs
from repro.workloads.conditions import (
    BernoulliExpr,
    Expr,
    MarkovExpr,
    TripCountGenerator,
    constant_trips,
    drifting_trips,
    uniform_trips,
)
from repro.workloads.program import Block, Procedure, Program, Statement


@dataclass
class BenchmarkProfile:
    """Recipe for one benchmark analogue.

    Attributes:
        name: Benchmark name (e.g. ``"gcc"``).
        seed: Build seed -- fixes the generated *program*; the execution
            seed is separate, so the same program can run on different
            "inputs".
        units: Map from motif kind to instance count.
        biased_range: Bias probability range for biased units.
        noise_range: Taken-probability range for ``noise`` units.
        data_range: Taken-probability range for ``data`` units.
        loop_style: ``"constant"``, ``"drifting"`` or ``"uniform"`` trip
            counts for loop units.
        loop_trip_range: Trip-count range for *short* loop units.
        long_loop_fraction: Fraction of loops drawn from the long range.
        long_trip_range: Trip-count range for long loops.
        markov_range: ``p_stay`` range for markov units.
        corr_markov_fraction: Fraction of correlation units whose shared
            condition comes from a Markov source (dynamically learnable)
            rather than a fresh Bernoulli draw (pure correlation).
        corr_markov_range: ``p_stay`` range for Markov correlation sources.
        corr_bernoulli_range: Taken-probability range for Bernoulli
            correlation sources.
    """

    name: str
    seed: int
    units: Dict[str, int]
    biased_range: Tuple[float, float] = (0.97, 0.999)
    noise_range: Tuple[float, float] = (0.52, 0.72)
    data_range: Tuple[float, float] = (0.7, 0.85)
    loop_style: str = "drifting"
    loop_trip_range: Tuple[int, int] = (2, 4)
    long_loop_fraction: float = 0.35
    long_trip_range: Tuple[int, int] = (15, 60)
    markov_range: Tuple[float, float] = (0.85, 0.96)
    corr_markov_fraction: float = 0.7
    corr_markov_range: Tuple[float, float] = (0.8, 0.92)
    corr_bernoulli_range: Tuple[float, float] = (0.35, 0.65)
    extra_procedures: List[Procedure] = field(default_factory=list)


def _trip_generator(profile: BenchmarkProfile, rng: random.Random) -> TripCountGenerator:
    """Trip counts are bimodal, like real loops.

    Most loops are *short* (a couple of iterations -- capturable inside a
    global history register); a fraction are *long* (their branches are
    then nearly always-taken, predictable by bias alone, and their exits
    are what the loop predictor recovers).  Mid-size noisy loops, which
    no paper predictor handles well, exist but are not the common case.
    """
    if rng.random() < profile.long_loop_fraction:
        low, high = profile.long_trip_range
    else:
        low, high = profile.loop_trip_range
    if profile.loop_style == "constant":
        return constant_trips(rng.randint(low, high))
    if profile.loop_style == "uniform":
        return uniform_trips(low, high)
    if profile.loop_style == "drifting":
        return drifting_trips(rng.randint(low, high), 0.02, low, high)
    raise ValueError(f"unknown loop style {profile.loop_style!r}")


def _uniform(rng: random.Random, bounds: Tuple[float, float]) -> float:
    low, high = bounds
    return rng.uniform(low, high)


def _corr_source(rng: random.Random, profile: BenchmarkProfile) -> Expr:
    """The shared condition feeding a correlation motif."""
    if rng.random() < profile.corr_markov_fraction:
        return MarkovExpr(_uniform(rng, profile.corr_markov_range))
    return BernoulliExpr(_uniform(rng, profile.corr_bernoulli_range))


def _loop_body(rng: random.Random, profile: BenchmarkProfile) -> Statement:
    """Loop bodies are mostly clean: biased guards, occasional markov data.

    Keeping loop bodies predictable preserves the recurring global-history
    patterns gshare needs; heavy noise inside hot loops (unlike real
    code) would fragment every pattern in the trace.
    """
    roll = rng.random()
    if roll < 0.15:
        # Loop branch only: its run-length structure stays pristine.
        return Block([])
    branches: List[Statement] = [
        motifs.biased_branch(_uniform(rng, (0.95, 0.998)))
    ]
    if roll > 0.8:
        branches.append(motifs.markov_branch(_uniform(rng, (0.9, 0.97))))
    return Block(branches)


def _build_unit(
    kind: str,
    index: int,
    rng: random.Random,
    profile: BenchmarkProfile,
    procedures: List[Procedure],
) -> Statement:
    prefix = f"{profile.name}_{kind}{index}"
    if kind == "biased_run":
        return motifs.biased_run(rng, rng.randint(3, 7), *profile.biased_range)
    if kind == "biased":
        probability = _uniform(rng, profile.biased_range)
        if rng.random() < 0.35:
            probability = 1.0 - probability  # some branches biased not-taken
        return motifs.biased_branch(probability)
    if kind == "noise":
        return motifs.data_branch(_uniform(rng, profile.noise_range))
    if kind == "data":
        return motifs.data_branch(_uniform(rng, profile.data_range))
    if kind == "selfdep":
        return motifs.self_history_branch(
            rng, rng.randint(2, 3), _uniform(rng, (0.03, 0.1))
        )
    if kind == "markov":
        return motifs.markov_branch(_uniform(rng, profile.markov_range))
    if kind == "phase":
        period = rng.randint(1500, 6000)
        return motifs.phased_branch(
            period,
            _uniform(rng, (0.7, 0.95)),
            _uniform(rng, (0.05, 0.3)),
        )
    if kind == "corr_triple":
        return motifs.correlated_triple(
            prefix,
            p_first=_uniform(rng, (0.5, 0.8)),
            p_second=_uniform(rng, (0.45, 0.75)),
            filler=rng.randint(0, 6),
        )
    if kind == "corr_quad":
        return motifs.correlated_quad(
            prefix,
            p_first=_uniform(rng, (0.5, 0.8)),
            p_second=_uniform(rng, (0.4, 0.7)),
            p_third=_uniform(rng, (0.4, 0.7)),
        )
    if kind == "corr_pair":
        return motifs.correlated_pair(
            prefix,
            first_source=_corr_source(rng, profile),
            p_second=_uniform(rng, (0.45, 0.8)),
            filler=rng.randint(0, 10),
            filler_bias=_uniform(rng, (0.85, 0.99)),
        )
    if kind == "assign_corr":
        return motifs.assignment_correlation(
            prefix,
            condition_source=_corr_source(rng, profile),
            p_background=_uniform(rng, (0.1, 0.35)),
        )
    if kind == "chain":
        return motifs.if_elif_chain(
            prefix,
            first_source=_corr_source(rng, profile),
            second_source=_corr_source(rng, profile),
            p_arm=_uniform(rng, (0.45, 0.7)),
        )
    if kind == "for_loop":
        return motifs.for_loop(_trip_generator(profile, rng), _loop_body(rng, profile))
    if kind == "while_loop":
        return motifs.while_loop(
            _trip_generator(profile, rng), _loop_body(rng, profile)
        )
    if kind == "loop_nest":
        return motifs.loop_nest(
            _trip_generator(profile, rng),
            _trip_generator(profile, rng),
            _loop_body(rng, profile),
        )
    if kind == "gated_loop":
        return motifs.gated_loop(
            prefix,
            _trip_generator(profile, rng),
            _loop_body(rng, profile),
            p_enter=_uniform(rng, (0.6, 0.9)),
        )
    if kind == "pattern":
        length = rng.randint(2, 8)
        return motifs.pattern_branch(motifs.random_pattern(rng, length))
    if kind == "block":
        return motifs.block_pattern_branch(rng.randint(2, 12), rng.randint(2, 12))
    if kind == "recursion":
        callee = f"{prefix}_rec"
        procedures.append(
            motifs.make_recursive_procedure(
                callee,
                max_depth=rng.randint(4, 10),
                p_continue=_uniform(rng, (0.55, 0.8)),
            )
        )
        return motifs.recursive_descent(prefix, callee)
    if kind == "call":
        callee = f"{prefix}_proc"
        procedures.append(
            Procedure(callee, motifs.make_callee_body(callee, rng.randint(1, 3)))
        )
        return motifs.call_site_pair(
            prefix, callee, p_alternate=_uniform(rng, (0.5, 0.8))
        )
    raise ValueError(f"unknown unit kind {kind!r}")


#: Layout clusters: units of a cluster are contiguous in the program so
#: noisy branches pollute only their own neighbourhood's history windows,
#: as in real programs, instead of fragmenting training trace-wide.
_UNIT_CLUSTERS = {
    "biased_run": "clean",
    "biased": "clean",
    "pattern": "clean",
    "block": "clean",
    "for_loop": "loops",
    "while_loop": "loops",
    "loop_nest": "loops",
    "gated_loop": "loops",
    "corr_pair": "corr",
    "corr_triple": "corr",
    "corr_quad": "corr",
    "assign_corr": "corr",
    "chain": "corr",
    "call": "corr",
    "recursion": "corr",
    "markov": "data",
    "selfdep": "data",
    "data": "data",
    "noise": "data",
    "phase": "data",
}


def build_program(profile: BenchmarkProfile) -> Program:
    """Materialise a benchmark profile into an executable program."""
    rng = random.Random(profile.seed)
    procedures: List[Procedure] = list(profile.extra_procedures)
    clusters: Dict[str, List[Statement]] = {
        "clean": [],
        "loops": [],
        "corr": [],
        "data": [],
    }
    for kind, count in profile.units.items():
        for index in range(count):
            unit = _build_unit(kind, index, rng, profile, procedures)
            clusters[_UNIT_CLUSTERS[kind]].append(unit)
    for units in clusters.values():
        rng.shuffle(units)
    # Interleave clean mass between the behaviour clusters so each
    # cluster's history windows start from a low-entropy context.
    clean = clusters["clean"]
    third = max(1, len(clean) // 3)
    ordered: List[Statement] = []
    ordered.extend(clean[:third])
    ordered.extend(clusters["corr"])
    ordered.extend(clean[third : 2 * third])
    ordered.extend(clusters["loops"])
    ordered.extend(clean[2 * third :])
    ordered.extend(clusters["data"])
    main_body = Block(ordered)
    main = Procedure(f"{profile.name}_main", main_body)
    return Program(procedures + [main], main=main.name)
