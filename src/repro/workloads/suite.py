"""The SPECint95-analogue benchmark suite (Table 1).

Eight benchmarks mirroring the paper's suite.  Dynamic trace lengths keep
the paper's *relative* proportions (vortex longest, perl/compress
shortest) scaled down to a pure-Python-tractable default of 200k branches
for the longest run; ``REPRO_TRACE_LENGTH`` overrides the scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Tuple

from repro.trace.trace import Trace
from repro.workloads.generator import BenchmarkProfile, build_program
from repro.workloads.motifs import MIX_CLASSES, mix_class
from repro.workloads.program import execute_program

#: A behaviour-class mix: class name -> non-negative weight.  Weight 1
#: leaves that class untouched, 0 removes it, other values scale every
#: unit count of that class (rounded, floored at one unit).
Mix = Mapping[str, float]

#: Benchmark order used throughout the paper's tables and figures.
BENCHMARK_NAMES: List[str] = [
    "compress",
    "gcc",
    "go",
    "ijpeg",
    "m88ksim",
    "perl",
    "vortex",
    "xlisp",
]

#: Dynamic conditional-branch counts of the paper's runs (Table 1).
PAPER_BRANCH_COUNTS: Dict[str, int] = {
    "compress": 10_661_855,
    "gcc": 25_903_086,
    "go": 17_925_171,
    "ijpeg": 20_441_307,
    "m88ksim": 16_719_523,
    "perl": 10_570_887,
    "vortex": 33_853_896,
    "xlisp": 26_422_387,
}

#: Input data sets of the paper's runs (Table 1).
PAPER_INPUTS: Dict[str, str] = {
    "compress": "test.in (abbrev.)",
    "gcc": "jump.i",
    "go": "2stone9.in (abbrev.)",
    "ijpeg": "specmun.ppm (abbrev.)",
    "m88ksim": "dcrand.train.big",
    "perl": "scrabbl.pl (abbrev.)",
    "vortex": "vortex.in",
    "xlisp": "train.lsp",
}

#: Default dynamic length of the longest benchmark (vortex); other
#: benchmarks scale by their paper proportions.
DEFAULT_MAX_LENGTH = 200_000

_LENGTH_ENV_VAR = "REPRO_TRACE_LENGTH"


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully-resolved workload: profile plus run parameters."""

    profile: BenchmarkProfile
    length: int
    run_seed: int

    @property
    def name(self) -> str:
        return self.profile.name


def _profiles() -> Dict[str, BenchmarkProfile]:
    """The tuned unit mixes for the eight analogues.

    Tuning targets (DESIGN.md section 5): go hardest, m88ksim/vortex
    easiest; gcc/go rich in correlation gshare under-exploits; m88ksim/
    ijpeg loop-rich; vortex/m88ksim dominated by >99%-biased branches.
    """
    return {
        "compress": BenchmarkProfile(
            name="compress",
            seed=101,
            units={
                "selfdep": 6,
                "corr_triple": 2,
                "corr_quad": 1,
                "biased_run": 10,
                "data": 5,
                "markov": 4,
                "for_loop": 2,
                "while_loop": 1,
                "corr_pair": 2,
                "block": 1,
                "pattern": 1,
                "noise": 2,
            },
            data_range=(0.72, 0.88),
            markov_range=(0.88, 0.96),
            biased_range=(0.99, 0.9995),
            loop_style="drifting",
            loop_trip_range=(2, 4),
        ),
        "gcc": BenchmarkProfile(
            name="gcc",
            seed=202,
            units={
                "selfdep": 14,
                "corr_triple": 12,
                "corr_quad": 8,
                "biased_run": 40,
                "corr_pair": 25,
                "chain": 13,
                "assign_corr": 8,
                "for_loop": 4,
                "while_loop": 1,
                "gated_loop": 2,
                "markov": 3,
                "phase": 4,
                "noise": 3,
                "data": 4,
                "pattern": 4,
                "call": 4,
                "block": 1,
            },
            biased_range=(0.99, 0.9995),
            noise_range=(0.55, 0.72),
            data_range=(0.72, 0.86),
            markov_range=(0.9, 0.97),
            loop_style="drifting",
            loop_trip_range=(2, 5),
            long_loop_fraction=0.3,
            corr_markov_fraction=0.45,
            corr_markov_range=(0.88, 0.96),
            corr_bernoulli_range=(0.6, 0.85),
        ),
        "go": BenchmarkProfile(
            name="go",
            seed=303,
            units={
                "selfdep": 16,
                "corr_triple": 10,
                "corr_quad": 6,
                "noise": 17,
                "data": 11,
                "markov": 5,
                "corr_pair": 20,
                "chain": 7,
                "biased_run": 17,
                "biased": 6,
                "for_loop": 4,
                "phase": 9,
                "pattern": 2,
            },
            noise_range=(0.52, 0.7),
            data_range=(0.68, 0.82),
            markov_range=(0.8, 0.93),
            biased_range=(0.985, 0.999),
            loop_style="drifting",
            loop_trip_range=(2, 6),
            long_loop_fraction=0.25,
            corr_markov_fraction=0.25,
            corr_bernoulli_range=(0.55, 0.8),
        ),
        "ijpeg": BenchmarkProfile(
            name="ijpeg",
            seed=404,
            units={
                "selfdep": 4,
                "corr_triple": 2,
                "corr_quad": 1,
                "loop_nest": 3,
                "for_loop": 4,
                "biased_run": 13,
                "data": 6,
                "markov": 2,
                "pattern": 2,
                "corr_pair": 2,
                "noise": 2,
            },
            data_range=(0.72, 0.86),
            biased_range=(0.99, 0.9995),
            loop_style="constant",
            loop_trip_range=(3, 6),
            long_loop_fraction=0.4,
            long_trip_range=(12, 40),
        ),
        "m88ksim": BenchmarkProfile(
            name="m88ksim",
            seed=505,
            units={
                "selfdep": 3,
                "corr_triple": 2,
                "corr_quad": 1,
                "biased_run": 45,
                "for_loop": 4,
                "while_loop": 2,
                "corr_pair": 2,
                "pattern": 1,
                "data": 1,
                "markov": 1,
            },
            data_range=(0.8, 0.9),
            biased_range=(0.992, 0.9995),
            loop_style="constant",
            loop_trip_range=(2, 4),
            long_loop_fraction=0.4,
            corr_markov_fraction=0.9,
        ),
        "perl": BenchmarkProfile(
            name="perl",
            seed=606,
            units={
                "recursion": 2,
                "selfdep": 6,
                "corr_triple": 4,
                "corr_quad": 2,
                "biased_run": 35,
                "call": 4,
                "chain": 4,
                "corr_pair": 5,
                "for_loop": 3,
                "markov": 2,
                "pattern": 1,
                "noise": 1,
            },
            biased_range=(0.99, 0.9995),
            markov_range=(0.9, 0.97),
            loop_style="constant",
            loop_trip_range=(2, 4),
            corr_markov_fraction=0.85,
            corr_markov_range=(0.88, 0.96),
        ),
        "vortex": BenchmarkProfile(
            name="vortex",
            seed=707,
            units={
                "selfdep": 4,
                "corr_triple": 2,
                "corr_quad": 1,
                "biased_run": 60,
                "call": 3,
                "for_loop": 2,
                "corr_pair": 2,
                "data": 1,
                "pattern": 1,
            },
            biased_range=(0.994, 0.9997),
            data_range=(0.85, 0.92),
            loop_style="constant",
            loop_trip_range=(2, 4),
            corr_markov_fraction=0.9,
            corr_markov_range=(0.9, 0.97),
        ),
        "xlisp": BenchmarkProfile(
            name="xlisp",
            seed=808,
            units={
                "recursion": 4,
                "selfdep": 8,
                "corr_triple": 4,
                "corr_quad": 2,
                "call": 5,
                "markov": 6,
                "biased_run": 25,
                "corr_pair": 4,
                "chain": 2,
                "for_loop": 4,
                "pattern": 1,
                "noise": 2,
                "data": 2,
            },
            markov_range=(0.85, 0.95),
            biased_range=(0.99, 0.9995),
            loop_style="drifting",
            loop_trip_range=(2, 4),
            corr_markov_fraction=0.7,
        ),
    }


def canonical_mix(mix: Optional[Mix]) -> Tuple[Tuple[str, float], ...]:
    """Validate a mix and reduce it to a sorted, hashable tuple.

    Unknown class names and negative weights are rejected here -- at
    spec-parse depth, not deep inside the generator -- so a bad sweep
    axis fails before any trace work starts.
    """
    if not mix:
        return ()
    items = []
    for cls in sorted(mix):
        if cls not in MIX_CLASSES:
            raise ValueError(
                f"unknown mix class {cls!r}; choose from {list(MIX_CLASSES)}"
            )
        weight = float(mix[cls])
        if weight < 0 or weight != weight:  # negative or NaN
            raise ValueError(
                f"mix weight for {cls!r} must be a non-negative number, "
                f"got {mix[cls]!r}"
            )
        items.append((cls, weight))
    return tuple(items)


def apply_mix(
    profile: BenchmarkProfile, mix: Optional[Mix]
) -> BenchmarkProfile:
    """Scale a profile's unit counts by behaviour-class weights.

    Weight 0 drops the class, weight 1 is the identity, anything else
    scales each unit count (``max(1, round(count * weight))`` so a
    present class never silently vanishes from rounding).  The biased
    baseline mass is unclassified and never scaled, so a mix can never
    empty a program.
    """
    canon = dict(canonical_mix(mix))
    if not canon:
        return profile
    units: Dict[str, int] = {}
    for kind, count in profile.units.items():
        cls = mix_class(kind)
        weight = canon.get(cls, 1.0) if cls else 1.0
        if weight == 1.0:  # exact sentinel, not accuracy math (check: ignore)
            units[kind] = count
        elif weight == 0.0:  # exact sentinel, not accuracy math (check: ignore)
            continue
        else:
            units[kind] = max(1, round(count * weight))
    if not units:
        raise ValueError(
            f"mix {dict(canon)!r} leaves profile {profile.name!r} empty"
        )
    return replace(profile, units=units)


def effective_mix(
    name: str, mix: Optional[Mix]
) -> Tuple[Tuple[str, float], ...]:
    """The subset of a mix that actually changes one benchmark.

    A weight of 1, or a weight on a class the profile has no units of,
    contributes nothing; equivalent mixes reduce to the same tuple.
    """
    canon = canonical_mix(mix)
    if not canon:
        return ()
    profile = _profiles()[name]
    present = {mix_class(kind) for kind in profile.units if mix_class(kind)}
    return tuple(
        (c, w)
        for c, w in canon
        if w != 1.0 and c in present  # exact identity sentinel (check: ignore)
    )


def mix_items_signature(items: Tuple[Tuple[str, float], ...]) -> str:
    """The canonical string form of an effective-mix tuple."""
    return ",".join(f"{c}={format(w, 'g')}" for c, w in items)


def mix_signature(name: str, mix: Optional[Mix]) -> str:
    """Canonical identity suffix of a mix applied to one benchmark.

    Returns ``""`` when the mix is a no-op (see :func:`effective_mix`),
    so the unmixed benchmark keeps its legacy cache and plan keys
    bit-for-bit -- the anchor of cross-point trace dedup in mix sweeps.
    """
    return mix_items_signature(effective_mix(name, mix))


def default_trace_length() -> int:
    """Dynamic length of the longest benchmark (vortex's scale anchor).

    Controlled by the ``REPRO_TRACE_LENGTH`` environment variable;
    defaults to :data:`DEFAULT_MAX_LENGTH`.
    """
    raw = os.environ.get(_LENGTH_ENV_VAR)
    if raw is None:
        return DEFAULT_MAX_LENGTH
    value = int(raw)
    if value < 1:
        raise ValueError(f"{_LENGTH_ENV_VAR} must be positive, got {value}")
    return value


def scaled_length(name: str, max_length: Optional[int] = None) -> int:
    """Trace length for ``name`` preserving the paper's proportions."""
    if max_length is None:
        max_length = default_trace_length()
    longest = max(PAPER_BRANCH_COUNTS.values())
    return max(1000, round(PAPER_BRANCH_COUNTS[name] / longest * max_length))


def benchmark_spec(
    name: str,
    length: Optional[int] = None,
    run_seed: int = 12345,
    mix: Optional[Mix] = None,
) -> WorkloadSpec:
    """Resolve a benchmark name to a :class:`WorkloadSpec`.

    Args:
        name: One of :data:`BENCHMARK_NAMES`.
        length: Dynamic branch count; default scales the paper's
            proportions to :func:`default_trace_length`.
        run_seed: Execution seed (the "input data set").
        mix: Optional behaviour-class weights applied to the profile's
            unit counts (see :func:`apply_mix`).
    """
    profiles = _profiles()
    if name not in profiles:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        )
    if length is None:
        length = scaled_length(name)
    profile = apply_mix(profiles[name], mix)
    return WorkloadSpec(profile=profile, length=length, run_seed=run_seed)


@lru_cache(maxsize=32)
def _cached_trace(
    name: str,
    length: int,
    run_seed: int,
    mix_items: Tuple[Tuple[str, float], ...] = (),
) -> Trace:
    from repro.obs.metrics import METRICS
    from repro.obs.tracing import span

    spec = benchmark_spec(name, length, run_seed, mix=dict(mix_items))
    with span(
        "generate_trace", benchmark=name, length=length, run_seed=run_seed
    ), METRICS.timer("trace.generate_seconds"):
        program = build_program(spec.profile)
        # Fail fast on a malformed program: a structurally unfaithful IR
        # (bad layout, dead code, undefined conditions) would silently
        # distort every trace and table downstream.  Raises
        # ProgramVerificationError with the full diagnostic listing.
        from repro.check.ir import verify_program_or_raise

        verify_program_or_raise(program, name=spec.name)
        METRICS.inc("check.ir_verifications")
        trace = execute_program(program, spec.length, spec.run_seed)
    METRICS.inc("trace.generated")
    METRICS.inc("trace.events", len(trace))
    return trace


def load_benchmark(
    name: str,
    length: Optional[int] = None,
    run_seed: int = 12345,
    mix: Optional[Mix] = None,
) -> Trace:
    """Generate (or fetch from cache) the trace for one benchmark."""
    if length is None:
        length = scaled_length(name)
    # A mix that does not change this profile must hit the same memo
    # entry (and disk-cache key) as the unmixed benchmark.
    return _cached_trace(name, length, run_seed, effective_mix(name, mix))


def load_suite(
    max_length: Optional[int] = None,
    run_seed: int = 12345,
) -> Dict[str, Trace]:
    """Generate traces for the whole suite, in paper order."""
    return {
        name: load_benchmark(name, scaled_length(name, max_length), run_seed)
        for name in BENCHMARK_NAMES
    }


def stream_benchmark(
    name: str,
    path,
    length: Optional[int] = None,
    run_seed: int = 12345,
    chunk_branches: Optional[int] = None,
    mix: Optional[Mix] = None,
) -> int:
    """Generate one benchmark straight to a chunked ``.bpt`` file.

    The paper-scale entry point: interpretation streams windows through
    a :class:`~repro.trace.stream.BPT2Writer`, so neither the generator
    nor the file writer ever holds more than one window -- a 10M-branch
    spill peaks at the same residency as a 2M one.  The file read back
    via :class:`~repro.trace.stream.TraceStream` replays the identical
    records ``load_benchmark`` would return (same program, same seed).

    Returns the number of branches written.
    """
    from repro.check.ir import verify_program_or_raise
    from repro.obs.metrics import METRICS
    from repro.obs.tracing import span
    from repro.trace.stream import BPT2Writer, normalize_chunk_branches

    spec = benchmark_spec(name, length, run_seed, mix=mix)
    chunk = normalize_chunk_branches(chunk_branches)
    from repro.workloads.program import stream_program

    with span(
        "stream_trace",
        benchmark=name,
        length=spec.length,
        run_seed=run_seed,
        chunk_branches=chunk,
    ), METRICS.timer("trace.generate_seconds"):
        program = build_program(spec.profile)
        verify_program_or_raise(program, name=spec.name)
        METRICS.inc("check.ir_verifications")
        with BPT2Writer(path, chunk_branches=chunk) as writer:
            written = stream_program(
                program, spec.length, spec.run_seed, writer.append_chunk, chunk
            )
    METRICS.inc("trace.generated")
    METRICS.inc("trace.events", written)
    return written
