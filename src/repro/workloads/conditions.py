"""Condition expressions and trip-count generators for synthetic programs.

Branch conditions are small expression trees evaluated against the
program's :class:`~repro.workloads.program.Environment`.  Correlation
between branches arises naturally: two branches whose conditions share a
variable (figure 1a of the paper), or a branch testing a variable another
statement assigned (figure 1b), are direction-correlated exactly the way
the paper's source-level examples are.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.workloads.program import Environment


class Expr(abc.ABC):
    """A boolean expression over the program environment."""

    @abc.abstractmethod
    def evaluate(self, env: "Environment") -> bool:
        """Evaluate against the current environment."""

    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions; the IR verifier walks these statically."""
        return ()


class ConstExpr(Expr):
    """A constant truth value."""

    def __init__(self, value: bool) -> None:
        self._value = bool(value)

    @property
    def value(self) -> bool:
        return self._value

    def evaluate(self, env: "Environment") -> bool:
        return self._value


class VarExpr(Expr):
    """The current value of a boolean program variable.

    Reading an unset variable is a programming error in the workload
    definition, so it raises rather than defaulting.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, env: "Environment") -> bool:
        try:
            return env.variables[self.name]
        except KeyError:
            raise KeyError(
                f"workload read variable {self.name!r} before assignment"
            ) from None


class NotExpr(Expr):
    """Logical negation."""

    def __init__(self, operand: Expr) -> None:
        self._operand = operand

    def children(self) -> Tuple[Expr, ...]:
        return (self._operand,)

    def evaluate(self, env: "Environment") -> bool:
        return not self._operand.evaluate(env)


class AndExpr(Expr):
    """Logical conjunction (short-circuit, like the source programs)."""

    def __init__(self, *operands: Expr) -> None:
        if len(operands) < 2:
            raise ValueError("AndExpr needs at least two operands")
        self._operands = operands

    def children(self) -> Tuple[Expr, ...]:
        return tuple(self._operands)

    def evaluate(self, env: "Environment") -> bool:
        return all(op.evaluate(env) for op in self._operands)


class OrExpr(Expr):
    """Logical disjunction (short-circuit)."""

    def __init__(self, *operands: Expr) -> None:
        if len(operands) < 2:
            raise ValueError("OrExpr needs at least two operands")
        self._operands = operands

    def children(self) -> Tuple[Expr, ...]:
        return tuple(self._operands)

    def evaluate(self, env: "Environment") -> bool:
        return any(op.evaluate(env) for op in self._operands)


class BernoulliExpr(Expr):
    """A fresh biased coin flip on every evaluation.

    Models data-dependent conditions: the probability is the branch's
    bias, and successive evaluations are independent (the hardest case
    for any history-based predictor).
    """

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._probability = probability

    @property
    def probability(self) -> float:
        return self._probability

    def evaluate(self, env: "Environment") -> bool:
        return env.rng.random() < self._probability


class MarkovExpr(Expr):
    """A two-state Markov boolean: stays in its current state with
    probability ``p_stay``.

    Produces runs of equal outcomes -- data with temporal locality, the
    kind of input-driven pattern the paper's non-repeating-pattern class
    captures ("the input to a program commonly has some pattern to it").
    """

    def __init__(self, p_stay: float, initial: bool = True) -> None:
        if not 0.0 <= p_stay <= 1.0:
            raise ValueError(f"p_stay must be in [0, 1], got {p_stay}")
        self._p_stay = p_stay
        self._state = bool(initial)

    def evaluate(self, env: "Environment") -> bool:
        if env.rng.random() >= self._p_stay:
            self._state = not self._state
        return self._state


class PatternExpr(Expr):
    """Cycles deterministically through a fixed outcome pattern.

    Each expression instance keeps its own cursor, so a branch site
    guarded by a :class:`PatternExpr` repeats the pattern exactly -- the
    fixed-length-pattern class of section 4.1.2.
    """

    def __init__(self, pattern: Sequence[bool]) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self._pattern: List[bool] = [bool(x) for x in pattern]
        self._cursor = 0

    def evaluate(self, env: "Environment") -> bool:
        value = self._pattern[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._pattern)
        return value


class PhaseExpr(Expr):
    """Alternates between two behaviours every ``period`` evaluations.

    Models program phases: the branch behaves one way for a while, then
    another.  Phase changes force dynamic predictors to retrain, which is
    one of the effects (training time) the paper identifies as limiting
    gshare.
    """

    def __init__(self, period: int, first: Expr, second: Expr) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self._period = period
        self._first = first
        self._second = second
        self._count = 0

    def children(self) -> Tuple[Expr, ...]:
        return (self._first, self._second)

    def evaluate(self, env: "Environment") -> bool:
        phase = (self._count // self._period) % 2
        self._count += 1
        active = self._first if phase == 0 else self._second
        return active.evaluate(env)


class SelfHistoryExpr(Expr):
    """Next outcome is a boolean function of the branch's own recent outcomes.

    With ``flip_probability`` the outcome is inverted at random, which
    keeps the sequence from settling into a fixed period: a fixed-length
    pattern predictor loses its phase at every flip, while a per-address
    two-level predictor re-finds the mapping from recent outcomes to the
    next one -- the paper's *non-repeating pattern* class (section 4.1.3).

    Args:
        truth_table: Map from the tuple of the last ``depth`` outcomes to
            the next outcome, given as a list of 2**depth booleans
            indexed by the history bits (most recent = LSB).
        depth: How many of the branch's own outcomes feed the function.
        flip_probability: Chance of inverting each produced outcome.
    """

    def __init__(
        self,
        truth_table: Sequence[bool],
        depth: int,
        flip_probability: float = 0.05,
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if len(truth_table) != 1 << depth:
            raise ValueError(
                f"truth table must have {1 << depth} entries, got "
                f"{len(truth_table)}"
            )
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError("flip_probability must be in [0, 1]")
        self._table = [bool(x) for x in truth_table]
        self._depth = depth
        self._flip = flip_probability
        self._history = 0
        self._mask = (1 << depth) - 1

    def evaluate(self, env: "Environment") -> bool:
        value = self._table[self._history]
        if env.rng.random() < self._flip:
            value = not value
        self._history = ((self._history << 1) | value) & self._mask
        return value


class CounterBelowExpr(Expr):
    """True while an integer counter is below a bound.

    The guard for depth-limited recursion: ``if (depth < bound)
    recurse;`` produces branches whose outcomes correlate with call
    depth, a behaviour pattern of recursive benchmarks like xlisp.
    Unset counters read as zero.
    """

    def __init__(self, name: str, bound: int) -> None:
        self.name = name
        self.bound = bound

    def evaluate(self, env: "Environment") -> bool:
        return env.counters.get(self.name, 0) < self.bound


#: A trip-count generator: called at loop entry, returns the trip count.
#: Generators built by the factories below carry a ``trip_bounds``
#: attribute -- an inclusive ``(low, high)`` pair (``high`` may be None
#: for "unbounded") that the IR verifier reads to prove loops bounded
#: and non-degenerate without executing them.
TripCountGenerator = Callable[["Environment"], int]


def constant_trips(n: int) -> TripCountGenerator:
    """Always the same trip count (a classic for-loop)."""
    if n < 0:
        raise ValueError(f"trip count must be >= 0, got {n}")

    def generate(env: "Environment") -> int:
        return n

    generate.trip_bounds = (n, n)
    return generate


def uniform_trips(low: int, high: int) -> TripCountGenerator:
    """Uniformly random trip count in [low, high] per loop entry."""
    if not 0 <= low <= high:
        raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")

    def generate(env: "Environment") -> int:
        return env.rng.randint(low, high)

    generate.trip_bounds = (low, high)
    return generate


def drifting_trips(
    initial: int, change_probability: float, low: int, high: int
) -> TripCountGenerator:
    """A trip count that "stays the same or changes infrequently".

    This is exactly the loop-class premise of section 4.1.1: with
    probability ``change_probability`` per loop entry, the count is
    redrawn uniformly from [low, high]; otherwise it repeats.
    """
    if not 0 <= low <= high:
        raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
    if not 0.0 <= change_probability <= 1.0:
        raise ValueError("change_probability must be in [0, 1]")
    state = {"count": initial}

    def generate(env: "Environment") -> int:
        if env.rng.random() < change_probability:
            state["count"] = env.rng.randint(low, high)
        return state["count"]

    generate.trip_bounds = (min(initial, low), max(initial, high))
    return generate
