"""Retry policy: deterministic capped backoff and task timeouts.

The policy is deliberately free of randomness -- no jitter -- so the
same failures produce the same attempt sequence, the same backoff
accounting and therefore the same folded metrics for any worker count.
(Jitter exists to de-synchronise fleets of independent clients; the
scheduler here owns every worker, so determinism is worth more.)

Resolution order for each knob: explicit argument, then environment
(:data:`ENV_MAX_RETRIES`, :data:`ENV_TASK_TIMEOUT`), then default.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Environment variable overriding the attempt budget per task.
ENV_MAX_RETRIES = "REPRO_MAX_RETRIES"

#: Environment variable overriding the per-task wall-clock timeout.
ENV_TASK_TIMEOUT = "REPRO_TASK_TIMEOUT"

#: Total attempts per task (first try + retries) unless overridden.
DEFAULT_MAX_ATTEMPTS = 3


class TaskTimeout(RuntimeError):
    """A task attempt exceeded the policy's wall-clock timeout."""


def _env_int(name: str) -> Optional[int]:
    text = os.environ.get(name)
    if not text:
        return None
    try:
        return int(text)
    except ValueError:
        return None


def _env_float(name: str) -> Optional[float]:
    text = os.environ.get(name)
    if not text:
        return None
    try:
        return float(text)
    except ValueError:
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler treats a failing task.

    Attributes:
        max_attempts: Total tries per task, first attempt included;
            1 disables retries.
        backoff_base: Delay before the first retry, in seconds.
        backoff_factor: Multiplier per further retry.
        backoff_cap: Upper bound on any single backoff delay.
        timeout: Per-attempt wall-clock limit in seconds (None = no
            limit).  In parallel runs an expired attempt gets its
            worker pool killed and rebuilt; in-process it is enforced
            only for injected hangs (a genuine in-process hang cannot
            be preempted without threads).
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    @classmethod
    def resolve(
        cls,
        retries: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> "RetryPolicy":
        """Build a policy from CLI-style knobs with environment fallback.

        ``retries`` counts *retries after the first attempt* (the CLI
        spelling), so ``--retries 0`` means one attempt, no retry.
        """
        if retries is None:
            retries = _env_int(ENV_MAX_RETRIES)
        if timeout is None:
            timeout = _env_float(ENV_TASK_TIMEOUT)
        max_attempts = (
            DEFAULT_MAX_ATTEMPTS if retries is None else max(0, retries) + 1
        )
        return cls(max_attempts=max_attempts, timeout=timeout)

    def backoff(self, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based).

        Deterministic capped geometric series:
        ``min(cap, base * factor**(attempt - 1))``.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


@dataclass
class TaskFailure:
    """A task that kept failing after its whole attempt budget.

    Structured so it can land in the run manifest's ``resilience``
    section verbatim; the run continues without the task (the lab
    computes it in-process on demand, or the owning experiment fails
    and is itself recorded).
    """

    benchmark: str
    task: str
    attempts: int
    kind: str  #: terminal failure kind: "error", "timeout", "worker-lost"
    message: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "scope": "task",
            "benchmark": self.benchmark,
            "task": self.task,
            "attempts": int(self.attempts),
            "kind": self.kind,
            "message": self.message,
        }
        payload.update(self.extra)
        return payload
