"""Crash-safe run journal: checkpoint/resume for report runs.

The journal is an append-only JSONL file (``run_journal.jsonl`` by
default) that ``repro report`` / ``repro all`` write one line to as
each experiment *completes*.  Each line carries the experiment's full
serialised result (its schema-versioned ``to_dict`` payload plus the
rendered text) and is keyed by :func:`spec_run_key` -- a digest of the
run spec's input identity (workload + config) and every benchmark
trace digest, i.e. the same identity the result cache and the run
manifest use.  Each sweep point keys under its own digest, so one
journal file checkpoints a whole sweep.  (:func:`run_key`, the
pre-spec key over the raw config repr, remains for direct callers.)

Crash safety comes from the append discipline: every record is one
``write + flush + fsync`` of a single line, so a kill at any instant
leaves at worst one truncated final line, which :meth:`RunJournal.load`
skips.  ``--resume`` then replays every journaled experiment whose run
key matches the current run *bit-identically* -- the replayed result's
canonical JSON, and therefore its manifest ``result_digest``, is the
stored one -- and runs only what is missing.  A journal written by a
different configuration, seed or trace scale simply never matches and
is ignored.

Integrity is self-checking: each line stores the digest of its own
payload, recomputed on load; any mismatch (bit rot, hand editing)
drops the entry and the experiment reruns.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, Optional, Tuple

#: Bump on any journal line layout or semantics change.
JOURNAL_SCHEMA_VERSION = 1

#: Discriminator so readers can reject non-journal JSONL early.
JOURNAL_KIND = "repro.journal"

#: Default journal filename for ``repro report`` / ``repro all``.
DEFAULT_JOURNAL_NAME = "run_journal.jsonl"


def run_key(config: Any, run_seed: int, labs: Dict[str, Any]) -> str:
    """Digest identifying a run's inputs: config, seed, trace digests.

    Two runs share a key exactly when every experiment must produce
    bit-identical results: same predictor sizing (config repr), same
    workload seed, same benchmark set with the same trace digests
    (which encode the trace lengths).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(config).encode())
    h.update(b"\x00")
    h.update(str(int(run_seed)).encode())
    for name in sorted(labs):
        trace = labs[name].trace
        h.update(b"\x00")
        h.update(name.encode())
        h.update(b"\x00")
        h.update(trace.digest().encode())
    return h.hexdigest()


def spec_run_key(input_digest: str, labs: Dict[str, Any]) -> str:
    """Digest identifying a spec-driven run's inputs.

    Keys off the :meth:`repro.spec.RunSpec.input_digest` (workload +
    config identity) plus every benchmark trace digest, so each sweep
    point journals under its own key -- ``--resume`` on a killed sweep
    replays exactly the points (and experiments within them) that
    finished.  The trace digests stay in the key even though the
    workload identity already pins them: a workload-generator change
    that alters traces for an unchanged spec must invalidate the
    journal.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(input_digest.encode())
    for name in sorted(labs):
        trace = labs[name].trace
        h.update(b"\x00")
        h.update(name.encode())
        h.update(b"\x00")
        h.update(trace.digest().encode())
    return h.hexdigest()


def payload_digest(payload: Dict[str, Any]) -> str:
    """Digest of a result payload's canonical (key-sorted) JSON.

    Matches :func:`repro.obs.manifest.result_digest` for the result the
    payload was serialised from, so journal digests and manifest
    digests are directly comparable.
    """
    return hashlib.blake2b(
        json.dumps(payload, sort_keys=True).encode(), digest_size=16
    ).hexdigest()


class RunJournal:
    """Append-only journal of completed experiment results.

    Args:
        path: The JSONL file to append to.
        fresh: Truncate any existing journal first (a non-resume run
            must not inherit stale entries).
    """

    def __init__(self, path: str, fresh: bool = False) -> None:
        self.path = str(path)
        self._fh = None
        if fresh:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass

    # -- writing -----------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            self._fh = open(self.path, "a")
        return self._fh

    def record(self, experiment_id: str, key: str, result: Any) -> dict:
        """Durably append one completed experiment result.

        ``result`` is any :class:`~repro.experiments.base.\
        ExperimentResult`; its ``to_dict`` payload and rendered text are
        stored so a resume can replay it without re-simulating.
        """
        payload = result.to_dict()
        entry = {
            "kind": JOURNAL_KIND,
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "experiment_id": experiment_id,
            "run_key": key,
            "title": getattr(result, "title", ""),
            "result_digest": payload_digest(payload),
            "payload": payload,
            "render": result.render(),
            "recorded_unix": time.time(),
        }
        fh = self._handle()
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        return entry

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except (OSError, ValueError):
                pass
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    def load(self) -> Dict[Tuple[str, str], dict]:
        """Valid journal entries, keyed by ``(experiment_id, run_key)``.

        Tolerates a missing file, truncated/garbage lines (the crash
        case the journal exists for), wrong-kind or wrong-schema lines,
        and entries whose stored digest no longer matches their payload.
        Later entries for the same key win, so re-running an experiment
        supersedes its older record.
        """
        entries: Dict[Tuple[str, str], dict] = {}
        try:
            fh = open(self.path)
        except OSError:
            return entries
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(entry, dict):
                    continue
                if entry.get("kind") != JOURNAL_KIND:
                    continue
                if entry.get("schema_version") != JOURNAL_SCHEMA_VERSION:
                    continue
                experiment_id = entry.get("experiment_id")
                key = entry.get("run_key")
                payload = entry.get("payload")
                if not (
                    isinstance(experiment_id, str)
                    and isinstance(key, str)
                    and isinstance(payload, dict)
                    and isinstance(entry.get("render"), str)
                ):
                    continue
                if entry.get("result_digest") != payload_digest(payload):
                    continue
                entries[(experiment_id, key)] = entry
        return entries

    def lookup(self, experiment_id: str, key: str) -> Optional[dict]:
        """The entry for one experiment under one run key, if journaled."""
        return self.load().get((experiment_id, key))
