"""Deterministic fault injection for the simulation engine.

A fault spec is a comma-separated list of ``selector:attempt:kind``
entries:

* **selector** names the jobs the fault applies to, as
  ``benchmark/task`` with ``*`` wildcards on either side; a bare name
  with no slash means "every benchmark, this task" (``gshare:1:crash``
  crashes every benchmark's gshare job).  Both benchmark and task
  accept ``fnmatch``-style globs (``if_*``, ``fig?``...).
* **attempt** is the 1-based attempt number the fault fires on.  A
  fault on attempt 1 with retries enabled is transparent to the run's
  outputs -- that is the whole point.
* **kind** is one of:

  ======== ==============================================================
  crash    the attempt raises :class:`InjectedCrash` (a worker raising
           is indistinguishable from any other task exception).
  hang     the attempt never completes: in a worker it sleeps past any
           plausible deadline so the supervisor's wall-clock timeout
           fires; in-process it raises
           :class:`repro.resilience.retry.TaskTimeout` directly, so
           serial and parallel runs see the same attempt sequence.
  corrupt  the attempt *succeeds*, then truncates the result-cache
           entry it just wrote -- a reproducible stand-in for torn
           writes and full disks, exercised by the cache quarantine.
  ======== ==============================================================

Specs come from ``--inject-fault`` (repeatable) or the
:data:`ENV_FAULT_SPEC` environment variable.  Matching is pure --
``(benchmark, task, attempt)`` in, kinds out -- so the parent process
counts injections without trusting a worker that is about to die, and
the same spec yields the same faults for any worker count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Optional, Sequence, Tuple

from repro.errors import SpecError

#: Environment variable carrying a default fault spec (CI, tests).
ENV_FAULT_SPEC = "REPRO_FAULT_SPEC"

#: Fault kinds the injector understands.
FAULT_KINDS = ("crash", "hang", "corrupt")

#: How long a worker-side injected hang sleeps.  Long enough that any
#: sane task timeout expires first; the supervisor kills the worker, so
#: the sleep never actually runs to completion.
HANG_SECONDS = 3600.0


class FaultSpecError(SpecError):
    """A malformed fault spec or an unusable fault configuration.

    Part of the :mod:`repro.errors` taxonomy (a :class:`SpecError`,
    hence still a ``ValueError``) so CLI layers can map exactly the
    user's configuration mistakes to a usage exit code -- and the
    server to HTTP 400 -- without swallowing unrelated errors.
    """


class InjectedCrash(RuntimeError):
    """Raised by an attempt the fault spec says must crash."""


@dataclass(frozen=True)
class Fault:
    """One parsed fault-spec entry (picklable, hashable)."""

    benchmark: str
    task: str
    attempt: int
    kind: str

    def matches(self, benchmark: str, task: str, attempt: int) -> bool:
        return (
            attempt == self.attempt
            and fnmatchcase(benchmark, self.benchmark)
            and fnmatchcase(task, self.task)
        )

    def spec(self) -> str:
        """The entry back in spec grammar (round-trips through parse)."""
        return f"{self.benchmark}/{self.task}:{self.attempt}:{self.kind}"


def _parse_entry(entry: str) -> Fault:
    parts = entry.split(":")
    if len(parts) != 3:
        raise FaultSpecError(
            f"bad fault entry {entry!r}: expected 'selector:attempt:kind'"
        )
    selector, attempt_text, kind = (part.strip() for part in parts)
    if "/" in selector:
        benchmark, _, task = selector.partition("/")
    else:
        benchmark, task = "*", selector
    if not benchmark or not task:
        raise FaultSpecError(
            f"bad fault selector {selector!r}: expected 'benchmark/task' "
            "or 'task' (globs allowed)"
        )
    try:
        attempt = int(attempt_text)
    except ValueError:
        raise FaultSpecError(
            f"bad fault attempt {attempt_text!r} in {entry!r}: expected "
            "a 1-based integer"
        ) from None
    if attempt < 1:
        raise FaultSpecError(f"fault attempt must be >= 1, got {attempt}")
    if kind not in FAULT_KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r} in {entry!r}; choose from "
            f"{', '.join(FAULT_KINDS)}"
        )
    return Fault(benchmark=benchmark, task=task, attempt=attempt, kind=kind)


def parse_fault_spec(text: Optional[str]) -> Tuple[Fault, ...]:
    """Parse a fault spec string into :class:`Fault` entries.

    Empty/None input parses to no faults.  Raises :class:`FaultSpecError` with a
    grammar hint on any malformed entry.
    """
    if not text:
        return ()
    faults = []
    for entry in text.split(","):
        entry = entry.strip()
        if entry:
            faults.append(_parse_entry(entry))
    return tuple(faults)


class FaultInjector:
    """Matches jobs against a parsed fault spec.

    The injector itself performs no side effects; the execution paths
    (:mod:`repro.analysis.parallel`) ask :meth:`kinds` what to do and
    act accordingly, so injection behaviour lives next to the real
    failure handling it exercises.
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self.faults = tuple(faults)

    @classmethod
    def from_spec(cls, text: Optional[str]) -> Optional["FaultInjector"]:
        """An injector for a spec string, or None for an empty spec."""
        faults = parse_fault_spec(text)
        return cls(faults) if faults else None

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        """An injector from :data:`ENV_FAULT_SPEC`, or None if unset."""
        return cls.from_spec(os.environ.get(ENV_FAULT_SPEC))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def kinds(self, benchmark: str, task: str, attempt: int) -> Tuple[str, ...]:
        """Fault kinds firing for this attempt, in spec order."""
        return tuple(
            fault.kind
            for fault in self.faults
            if fault.matches(benchmark, task, attempt)
        )

    def wants_timeout(self) -> bool:
        """Whether the spec contains a hang (which needs a timeout)."""
        return any(fault.kind == "hang" for fault in self.faults)

    def spec(self) -> str:
        """The whole spec back in grammar form."""
        return ",".join(fault.spec() for fault in self.faults)
