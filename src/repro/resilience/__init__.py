"""Fault-tolerant execution: retries, checkpoint/resume, fault injection.

Long report runs over large synthetic trace suites fail in boring ways
-- a worker segfaults, a machine is preempted mid-sweep, a cache entry
is truncated by a full disk.  Before this package, any of those threw
away the whole run.  The resilience layer makes the engine degrade
instead of die:

* :mod:`repro.resilience.retry` -- per-task retry with deterministic
  capped backoff and a worker wall-clock timeout
  (:class:`RetryPolicy`); exhausted retries become structured
  :class:`TaskFailure` records, not tracebacks.
* :mod:`repro.resilience.journal` -- a crash-safe append-only journal
  of completed experiment results keyed by the same trace/config
  digests the result cache uses, so ``repro report --resume`` replays
  finished experiments bit-identically after a kill
  (:class:`RunJournal`).
* :mod:`repro.resilience.faults` -- a deterministic fault-injection
  harness (``--inject-fault task:N:kind`` / :data:`ENV_FAULT_SPEC`)
  that makes worker crashes, hangs and cache corruption reproducible
  in tests and CI (:class:`FaultInjector`).

Everything is observable: retries, timeouts, injected faults and
failures flow into :data:`repro.obs.METRICS` counters and the run
manifest's ``resilience`` section, and the determinism contract holds
-- the same fault spec produces the same attempt sequence and the same
folded results for ``--jobs 1`` and ``--jobs 4``.

See ``docs/resilience.md`` for the fault model, the journal format and
the fault-spec grammar.
"""

from repro.resilience.faults import (
    ENV_FAULT_SPEC,
    Fault,
    FaultInjector,
    FaultSpecError,
    InjectedCrash,
    parse_fault_spec,
)
from repro.resilience.journal import (
    JOURNAL_KIND,
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    run_key,
)
from repro.resilience.retry import (
    ENV_MAX_RETRIES,
    ENV_TASK_TIMEOUT,
    RetryPolicy,
    TaskFailure,
    TaskTimeout,
)

__all__ = [
    "ENV_FAULT_SPEC",
    "ENV_MAX_RETRIES",
    "ENV_TASK_TIMEOUT",
    "Fault",
    "FaultInjector",
    "FaultSpecError",
    "InjectedCrash",
    "JOURNAL_KIND",
    "JOURNAL_SCHEMA_VERSION",
    "RetryPolicy",
    "RunJournal",
    "TaskFailure",
    "TaskTimeout",
    "parse_fault_spec",
    "run_key",
]
