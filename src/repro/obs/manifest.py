"""Run manifests: every report run leaves a diffable, schema-versioned
record of what was simulated and what it cost.

A manifest is a plain JSON document (``run_manifest.json``) written at
the end of a :func:`repro.api.run_spec` / ``repro report`` invocation.
It captures the run's *identity* (configuration digest, trace digests,
run seed, package version), its *outputs* (a digest per experiment
result, so bit-identity between two runs is a string comparison), and
its *cost* (per-experiment timings, cache hit ratio, worker count, and
the full metric snapshot).  Two manifests from equivalent runs differ
only in timings and timestamps -- everything else diffing clean is the
observability layer's determinism claim.

The schema is validated structurally by :func:`validate_manifest` (pure
Python, no jsonschema dependency); bump :data:`MANIFEST_SCHEMA_VERSION`
whenever a field is added, removed, or changes meaning.  ``repro obs
show`` pretty-prints and validates a manifest; ``repro obs diff``
compares the deterministic sections of two.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Dict, List, Optional

#: Bump on any manifest layout or semantics change.
#: v2 added the ``resilience`` section (retries, timeouts, injected
#: faults, structured failures, resume accounting).
#: v3 added ``spec_digest`` (the RunSpec identity digest the run
#: executed) and ``sweep`` (this manifest's sweep coordinates, or None
#: for a plain run).
#: v4 added ``served_by`` (the repro.serve instance id that executed
#: the run, or None for a direct run).  Execution provenance, not
#: identity: it is deliberately excluded from the deterministic diff
#: keys, so a served manifest still diffs clean against a direct one.
#: v5 added ``chunk_branches`` (the streaming window the priming pass
#: folded simulations over, or None for whole-trace priming).  Like
#: ``jobs``, it is an execution knob -- chunked results are
#: bit-identical to whole-trace results by contract (PC011) -- so it
#: too stays out of the deterministic diff keys.
#: v6 added ``trace_source`` (the spec workload's identity payload --
#: ``{"kind": "synthetic"|"imported", ...}`` -- or None for callers
#: predating the TraceSource union).  Identity, not execution: it joins
#: the deterministic diff keys, so a run over ingested traces diffs
#: clean against another run over the same digests and *dirty* against
#: a synthetic run that merely produced equal trace bytes.
MANIFEST_SCHEMA_VERSION = 6

#: Discriminator so readers can reject non-manifest JSON early.
MANIFEST_KIND = "repro.run_manifest"


def config_digest(config: Any) -> str:
    """Digest of a LabConfig (its repr enumerates every sizing field)."""
    return hashlib.blake2b(repr(config).encode(), digest_size=16).hexdigest()


def result_digest(result: Any) -> str:
    """Digest of one experiment result's canonical JSON serialisation.

    Uses :meth:`repro.experiments.base.ExperimentResult.to_json`, the
    schema-versioned contract, so equal digests mean bit-identical
    exported results.
    """
    return hashlib.blake2b(
        result.to_json().encode(), digest_size=16
    ).hexdigest()


def _package_version() -> str:
    import repro

    return getattr(repro, "__version__", "unknown")


def build_manifest(
    *,
    command: Optional[List[str]],
    config: Any,
    run_seed: int,
    max_length: Optional[int],
    jobs: int,
    cache_enabled: bool,
    cache_dir: Optional[str],
    chunk_branches: Optional[int] = None,
    labs: Dict[str, Any],
    results: Dict[str, Any],
    experiment_timings: List[dict],
    metrics: dict,
    timings: Dict[str, float],
    resilience: Optional[dict] = None,
    spec_digest: Optional[str] = None,
    sweep: Optional[dict] = None,
    served_by: Optional[str] = None,
    trace_source: Optional[dict] = None,
) -> dict:
    """Assemble the manifest dict for one finished report run.

    Args:
        command: The argv that launched the run (None for library use).
        config: The LabConfig the run used.
        run_seed: Workload execution seed.
        max_length: Trace scale anchor (None = environment default).
        jobs: Resolved worker count.
        cache_enabled: Whether the on-disk result cache was consulted.
        cache_dir: The cache root actually used (None when disabled).
        chunk_branches: Streaming window the priming pass folded the
            chunkable simulations over (None = whole-trace priming).
        labs: Benchmark name -> Lab (for trace digests and lengths).
        results: Experiment id -> ExperimentResult.
        experiment_timings: ``[{"id", "seconds"}, ...]`` in run order.
        metrics: The run's metric delta (:meth:`Metrics.delta_since`).
        timings: Named run-level wall-clock figures (seconds).
        resilience: Extra fields for the ``resilience`` section
            (``failures``, ``resumed``, ``replayed``, ``journal``);
            the counter-derived fields are filled in from ``metrics``
            either way.
        spec_digest: The executed RunSpec's identity digest (None for
            callers predating the spec layer).
        sweep: This manifest's sweep coordinates as a ``{field: value}``
            mapping (None for a plain, non-sweep run).
        served_by: The serving daemon's instance id when the run went
            through ``repro serve`` (None for a direct run).
        trace_source: The spec workload's identity payload (kind plus
            the source's identity dict; None for callers predating the
            TraceSource union).  Part of the deterministic diff keys.
    """
    counters = metrics.get("counters", {})
    extra = resilience or {}
    resilience_section = {
        "retries": counters.get("resilience.retries", 0),
        "timeouts": counters.get("resilience.timeouts", 0),
        "task_failures": counters.get("resilience.task_failures", 0),
        "faults_injected": counters.get("resilience.faults_injected", 0),
        "pool_rebuilds": counters.get("parallel.pool_rebuilds", 0),
        "failures": list(extra.get("failures", [])),
        "resumed": bool(extra.get("resumed", False)),
        "replayed": list(extra.get("replayed", [])),
        "journal": extra.get("journal"),
    }

    def _kind(kind: str, event: str) -> int:
        return counters.get(f"cache.{kind}.{event}", 0)

    result_hits = _kind("bitmap", "hits") + _kind("corr", "hits")
    result_misses = _kind("bitmap", "misses") + _kind("corr", "misses")
    probed = result_hits + result_misses
    timing_by_id = {entry["id"]: entry for entry in experiment_timings}
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "package_version": _package_version(),
        "created_unix": time.time(),
        "command": list(command) if command is not None else None,
        "run_seed": int(run_seed),
        "max_length": None if max_length is None else int(max_length),
        "jobs": int(jobs),
        "chunk_branches": (
            None if chunk_branches is None else int(chunk_branches)
        ),
        "spec_digest": spec_digest,
        "sweep": None if sweep is None else dict(sweep),
        "served_by": served_by,
        "trace_source": (
            None if trace_source is None else dict(trace_source)
        ),
        "config_digest": config_digest(config),
        "config": {
            name: getattr(config, name)
            for name in sorted(vars(config))
        },
        "cache": {
            "enabled": bool(cache_enabled),
            "dir": cache_dir,
            "result_hits": result_hits,
            "result_misses": result_misses,
            "result_writes": _kind("bitmap", "writes") + _kind("corr", "writes"),
            "trace_hits": _kind("trace", "hits"),
            "trace_misses": _kind("trace", "misses"),
            "trace_writes": _kind("trace", "writes"),
            "hit_ratio": (result_hits / probed) if probed else None,
        },
        "traces": {
            name: {
                "digest": labs[name].trace.digest(),
                "length": len(labs[name].trace),
            }
            for name in sorted(labs)
        },
        "experiments": [
            {
                "id": experiment_id,
                "title": results[experiment_id].title,
                "seconds": timing_by_id.get(experiment_id, {}).get(
                    "seconds", 0.0
                ),
                "result_digest": result_digest(results[experiment_id]),
            }
            for experiment_id in results
        ],
        "resilience": resilience_section,
        "metrics": metrics,
        "timings": {name: float(value) for name, value in timings.items()},
    }


# -- validation -------------------------------------------------------------

#: Top-level field -> allowed types (a tuple means any-of; NoneType via
#: ``type(None)``).  Purely structural; semantic checks live below.
_TOP_LEVEL_SPEC: Dict[str, tuple] = {
    "schema_version": (int,),
    "kind": (str,),
    "package_version": (str,),
    "created_unix": (int, float),
    "command": (list, type(None)),
    "run_seed": (int,),
    "max_length": (int, type(None)),
    "jobs": (int,),
    "chunk_branches": (int, type(None)),
    "spec_digest": (str, type(None)),
    "sweep": (dict, type(None)),
    "served_by": (str, type(None)),
    "trace_source": (dict, type(None)),
    "config_digest": (str,),
    "config": (dict,),
    "cache": (dict,),
    "traces": (dict,),
    "experiments": (list,),
    "resilience": (dict,),
    "metrics": (dict,),
    "timings": (dict,),
}

_RESILIENCE_SPEC: Dict[str, tuple] = {
    "retries": (int,),
    "timeouts": (int,),
    "task_failures": (int,),
    "faults_injected": (int,),
    "pool_rebuilds": (int,),
    "failures": (list,),
    "resumed": (bool,),
    "replayed": (list,),
    "journal": (str, type(None)),
}

_CACHE_SPEC: Dict[str, tuple] = {
    "enabled": (bool,),
    "dir": (str, type(None)),
    "result_hits": (int,),
    "result_misses": (int,),
    "result_writes": (int,),
    "trace_hits": (int,),
    "trace_misses": (int,),
    "trace_writes": (int,),
    "hit_ratio": (int, float, type(None)),
}

_EXPERIMENT_SPEC: Dict[str, tuple] = {
    "id": (str,),
    "title": (str,),
    "seconds": (int, float),
    "result_digest": (str,),
}


def _check_fields(
    payload: dict, spec: Dict[str, tuple], context: str, errors: List[str]
) -> None:
    for name, types in spec.items():
        if name not in payload:
            errors.append(f"{context}: missing field {name!r}")
        elif not isinstance(payload[name], types):
            expected = "/".join(t.__name__ for t in types)
            errors.append(
                f"{context}: field {name!r} has type "
                f"{type(payload[name]).__name__}, expected {expected}"
            )


def validate_manifest(payload: Any) -> List[str]:
    """Structurally validate a manifest; returns a list of problems.

    An empty list means the document is a well-formed manifest of the
    current :data:`MANIFEST_SCHEMA_VERSION`.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["manifest: not a JSON object"]
    _check_fields(payload, _TOP_LEVEL_SPEC, "manifest", errors)
    if payload.get("kind") not in (None, MANIFEST_KIND):
        errors.append(
            f"manifest: kind {payload['kind']!r} != {MANIFEST_KIND!r}"
        )
    version = payload.get("schema_version")
    if isinstance(version, int) and version != MANIFEST_SCHEMA_VERSION:
        errors.append(
            f"manifest: schema_version {version} != "
            f"{MANIFEST_SCHEMA_VERSION} (this reader)"
        )
    if isinstance(payload.get("cache"), dict):
        _check_fields(payload["cache"], _CACHE_SPEC, "cache", errors)
    if isinstance(payload.get("resilience"), dict):
        _check_fields(
            payload["resilience"], _RESILIENCE_SPEC, "resilience", errors
        )
        failures = payload["resilience"].get("failures")
        if isinstance(failures, list):
            for index, entry in enumerate(failures):
                if not isinstance(entry, dict):
                    errors.append(
                        f"resilience.failures[{index}]: not an object"
                    )
    if isinstance(payload.get("traces"), dict):
        for name, entry in payload["traces"].items():
            if not isinstance(entry, dict):
                errors.append(f"traces[{name!r}]: not an object")
                continue
            if not isinstance(entry.get("digest"), str):
                errors.append(f"traces[{name!r}]: missing string 'digest'")
            if not isinstance(entry.get("length"), int):
                errors.append(f"traces[{name!r}]: missing int 'length'")
    if isinstance(payload.get("experiments"), list):
        for index, entry in enumerate(payload["experiments"]):
            if not isinstance(entry, dict):
                errors.append(f"experiments[{index}]: not an object")
                continue
            _check_fields(
                entry, _EXPERIMENT_SPEC, f"experiments[{index}]", errors
            )
    if isinstance(payload.get("metrics"), dict):
        for section in ("counters", "gauges", "timers"):
            if not isinstance(payload["metrics"].get(section), dict):
                errors.append(f"metrics: missing object {section!r}")
    return errors


# -- I/O and comparison -----------------------------------------------------


def write_manifest(payload: dict, path: str) -> None:
    """Write a manifest as stable, indented, key-sorted JSON."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_manifest(path: str) -> dict:
    """Read a manifest; raises ValueError if it fails validation."""
    with open(path) as fh:
        payload = json.load(fh)
    errors = validate_manifest(payload)
    if errors:
        raise ValueError(
            f"{path} is not a valid run manifest: " + "; ".join(errors)
        )
    return payload


#: Sections expected to be identical between two equivalent runs.
_DETERMINISTIC_KEYS = (
    "spec_digest",
    "sweep",
    "config_digest",
    "run_seed",
    "max_length",
    "trace_source",
    "traces",
)


def diff_manifests(first: dict, second: dict) -> List[str]:
    """Human-readable differences in the deterministic sections.

    Timings, timestamps, worker counts and metric values are *expected*
    to differ between runs and are not compared; config, seeds, trace
    digests and per-experiment result digests are.
    """
    differences: List[str] = []
    for key in _DETERMINISTIC_KEYS:
        if first.get(key) != second.get(key):
            differences.append(
                f"{key}: {first.get(key)!r} != {second.get(key)!r}"
            )
    first_results = {
        e["id"]: e["result_digest"] for e in first.get("experiments", [])
    }
    second_results = {
        e["id"]: e["result_digest"] for e in second.get("experiments", [])
    }
    for experiment_id in sorted(set(first_results) | set(second_results)):
        mine = first_results.get(experiment_id)
        theirs = second_results.get(experiment_id)
        if mine != theirs:
            differences.append(
                f"experiments[{experiment_id}].result_digest: "
                f"{mine!r} != {theirs!r}"
            )
    return differences


def summarize_manifest(payload: dict) -> str:
    """A terminal-friendly summary of one manifest."""
    lines = [
        f"run manifest (schema v{payload.get('schema_version')}, "
        f"repro {payload.get('package_version')})",
        f"  command:     {' '.join(payload['command']) if payload.get('command') else '(library run)'}",
        f"  run seed:    {payload.get('run_seed')}",
        f"  max length:  {payload.get('max_length')}",
        f"  jobs:        {payload.get('jobs')}",
        f"  config:      {payload.get('config_digest')}",
    ]
    if payload.get("chunk_branches") is not None:
        lines.append(f"  chunking:    {payload['chunk_branches']} branches/window")
    if payload.get("spec_digest"):
        lines.append(f"  spec:        {payload['spec_digest']}")
    if payload.get("trace_source"):
        lines.append(
            f"  source:      {payload['trace_source'].get('kind', '?')}"
        )
    if payload.get("served_by"):
        lines.append(f"  served by:   {payload['served_by']}")
    if payload.get("sweep"):
        coords = ", ".join(
            f"{name}={value}"
            for name, value in sorted(payload["sweep"].items())
        )
        lines.append(f"  sweep point: {coords}")
    cache = payload.get("cache", {})
    if cache.get("enabled"):
        ratio = cache.get("hit_ratio")
        ratio_text = "n/a" if ratio is None else f"{ratio * 100:.1f}%"
        lines.append(
            f"  cache:       {cache.get('dir')} "
            f"(result hit ratio {ratio_text}, "
            f"{cache.get('result_hits')} hits / "
            f"{cache.get('result_misses')} misses)"
        )
    else:
        lines.append("  cache:       disabled")
    traces = payload.get("traces", {})
    total = sum(entry.get("length", 0) for entry in traces.values())
    lines.append(
        f"  traces:      {len(traces)} benchmarks, {total} dynamic branches"
    )
    resilience = payload.get("resilience", {})
    if resilience:
        failures = resilience.get("failures", [])
        lines.append(
            f"  resilience:  {resilience.get('retries', 0)} retries, "
            f"{resilience.get('timeouts', 0)} timeouts, "
            f"{resilience.get('faults_injected', 0)} faults injected, "
            f"{len(failures)} failures"
            + (" (resumed)" if resilience.get("resumed") else "")
        )
        for entry in resilience.get("replayed", []):
            lines.append(f"    replayed from journal: {entry}")
        for entry in failures:
            scope = entry.get("scope", "task")
            where = (
                entry.get("experiment_id")
                if scope == "experiment"
                else f"{entry.get('benchmark')}/{entry.get('task')}"
            )
            lines.append(
                f"    FAILED [{entry.get('kind', '?')}] {where}: "
                f"{entry.get('message', '')}"
            )
    for entry in payload.get("experiments", []):
        lines.append(
            f"    {entry.get('id', '?'):16s} {entry.get('seconds', 0.0):8.3f}s"
            f"  {entry.get('result_digest', '')}"
        )
    timings = payload.get("timings", {})
    for name in sorted(timings):
        lines.append(f"  {name + ':':24s} {timings[name]:.3f}s")
    counters = payload.get("metrics", {}).get("counters", {})
    if counters:
        lines.append("  counters:")
        for name in sorted(counters):
            lines.append(f"    {name:32s} {counters[name]}")
    return "\n".join(lines)
