"""Run-level observability: metrics, span tracing, run manifests.

The engine (labs, caches, the parallel scheduler, workload generation)
is instrumented against this package:

* :data:`METRICS` / :class:`Metrics` -- a dependency-free counter/
  gauge/timer registry with thread-safe updates and deterministic
  cross-process delta folding (``repro.obs.metrics``);
* :func:`span` / :data:`TRACER` -- nested span tracing dumpable as
  Chrome trace format for flamegraph viewing (``repro.obs.tracing``);
* run manifests -- schema-versioned ``run_manifest.json`` documents
  making any two report runs diffable artefacts
  (``repro.obs.manifest``; CLI: ``repro obs show|validate|diff``).

Instrumentation is always on and costs a few dict updates per *task*
(not per branch); it never feeds back into simulation, so experiment
outputs remain bit-identical with or without anyone reading the
telemetry.  See ``docs/observability.md`` for the metric catalogue and
the manifest schema.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    diff_manifests,
    read_manifest,
    summarize_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import METRICS, Metrics
from repro.obs.tracing import TRACER, Span, Tracer, span

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "METRICS",
    "Metrics",
    "Span",
    "TRACER",
    "Tracer",
    "build_manifest",
    "diff_manifests",
    "read_manifest",
    "span",
    "summarize_manifest",
    "validate_manifest",
    "write_manifest",
]
