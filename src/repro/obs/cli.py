"""``repro obs`` -- inspect run-observability artefacts.

Subcommands::

    repro obs show run_manifest.json        # validate + summarise
    repro obs validate run_manifest.json    # validate only (quiet)
    repro obs diff old.json new.json        # compare deterministic parts

``show``/``validate`` exit 1 on an invalid manifest, ``diff`` exits 1
when the two runs' deterministic sections differ -- so both are usable
as CI gates.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.manifest import (
    diff_manifests,
    summarize_manifest,
    validate_manifest,
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Inspect run manifests and observability artefacts.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    show = subparsers.add_parser(
        "show", help="validate and summarise a run manifest"
    )
    show.add_argument("manifest")

    validate = subparsers.add_parser(
        "validate", help="validate a run manifest (no output when clean)"
    )
    validate.add_argument("manifest")

    diff = subparsers.add_parser(
        "diff", help="compare the deterministic sections of two manifests"
    )
    diff.add_argument("first")
    diff.add_argument("second")
    return parser


def _load(path: str) -> Optional[dict]:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read manifest {path}: {error}", file=sys.stderr)
        return None


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parser().parse_args(argv)
    if args.command in ("show", "validate"):
        payload = _load(args.manifest)
        if payload is None:
            return 1
        errors = validate_manifest(payload)
        if errors:
            for error in errors:
                print(f"error: {error}", file=sys.stderr)
            return 1
        if args.command == "show":
            print(summarize_manifest(payload))
        return 0
    first = _load(args.first)
    second = _load(args.second)
    if first is None or second is None:
        return 1
    differences = diff_manifests(first, second)
    if differences:
        for difference in differences:
            print(difference)
        return 1
    print("manifests agree on all deterministic sections")
    return 0


if __name__ == "__main__":
    sys.exit(main())
