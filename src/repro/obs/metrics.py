"""Lightweight, dependency-free metrics registry.

A :class:`Metrics` instance holds three families of instruments:

* **counters** -- monotonically increasing integers (``inc``), e.g. how
  many predictor simulations actually ran versus hit a memo;
* **gauges** -- last-written values (``gauge``), e.g. the resolved
  worker count of a run;
* **timers** -- accumulated ``(count, seconds)`` pairs (``timer`` as a
  context manager, or ``add_time`` for externally-measured durations),
  e.g. per-worker job wall-clock.

Everything is guarded by one lock, so instruments can be bumped from any
thread.  Cross-*process* aggregation works by value, not by sharing:
worker processes reset their (per-process) global registry, do their
work, and ship a :meth:`Metrics.snapshot` delta back to the parent,
which folds it in with :meth:`Metrics.merge` in a deterministic order --
mirroring how simulation results themselves are folded by
:mod:`repro.analysis.parallel`.

The module-level :data:`METRICS` registry is what the instrumented
engine code writes to.  Run-scoped accounting takes a snapshot before
the run and a :meth:`Metrics.delta_since` after, so long-lived processes
(library users, test suites) never need to reset global state.

Instrument names are dotted lowercase paths (``cache.bitmap.hits``,
``sim.simulations``); the full catalogue lives in
``docs/observability.md``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Union

Number = Union[int, float]


class Metrics:
    """A thread-safe counter/gauge/timer registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Number] = {}
        self._timers: Dict[str, Dict[str, Number]] = {}

    # -- instruments -------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold an externally-measured duration into timer ``name``."""
        with self._lock:
            entry = self._timers.setdefault(name, {"count": 0, "seconds": 0.0})
            entry["count"] += count
            entry["seconds"] += float(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # -- reads -------------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A plain-dict copy of every instrument, with sorted keys.

        The returned value is JSON-encodable and picklable, suitable for
        shipping across a process boundary or embedding in a manifest.
        """
        with self._lock:
            return {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "timers": {
                    k: dict(self._timers[k]) for k in sorted(self._timers)
                },
            }

    def delta_since(self, baseline: dict) -> dict:
        """Snapshot minus ``baseline`` (an earlier :meth:`snapshot`).

        Counters and timers subtract; gauges report their current value
        (a gauge is a level, not a flow).  Instruments absent from the
        baseline are reported in full; zero-valued counter deltas are
        dropped so the result describes only what happened in between.
        """
        current = self.snapshot()
        base_counters = baseline.get("counters", {})
        counters = {
            name: value - base_counters.get(name, 0)
            for name, value in current["counters"].items()
            if value - base_counters.get(name, 0) != 0
        }
        base_timers = baseline.get("timers", {})
        timers = {}
        for name, entry in current["timers"].items():
            base = base_timers.get(name, {"count": 0, "seconds": 0.0})
            count = entry["count"] - base["count"]
            if count > 0:
                timers[name] = {
                    "count": count,
                    "seconds": entry["seconds"] - base["seconds"],
                }
        return {
            "counters": counters,
            "gauges": current["gauges"],
            "timers": timers,
        }

    # -- aggregation -------------------------------------------------------

    def merge(self, delta: dict) -> None:
        """Fold a :meth:`snapshot`/:meth:`delta_since` dict into this one.

        Counters and timers add; gauges take the incoming value.  Used by
        the parent process to aggregate worker deltas; callers are
        responsible for folding in a deterministic order.
        """
        with self._lock:
            for name, value in delta.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in delta.get("gauges", {}).items():
                self._gauges[name] = value
            for name, entry in delta.get("timers", {}).items():
                mine = self._timers.setdefault(name, {"count": 0, "seconds": 0.0})
                mine["count"] += entry.get("count", 0)
                mine["seconds"] += float(entry.get("seconds", 0.0))

    def reset(self) -> None:
        """Zero every instrument (worker processes, test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


def sum_counters(snapshot: dict, prefix: str) -> int:
    """Sum every counter under a dotted prefix in a snapshot/delta dict.

    ``sum_counters(delta, "resilience.faults")`` adds up
    ``resilience.faults.crash`` + ``resilience.faults.hang`` + ... --
    handy for manifest sections that aggregate a counter family without
    enumerating its members.  The bare prefix name itself also counts
    (``prefix`` and ``prefix.*``).
    """
    dotted = prefix + "."
    return sum(
        int(value)
        for name, value in snapshot.get("counters", {}).items()
        if name == prefix or name.startswith(dotted)
    )


#: The process-global registry the instrumented engine writes to.
METRICS = Metrics()
