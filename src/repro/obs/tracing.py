"""Nested span tracing with Chrome-trace-format export.

A *span* is a named, timed region of a run::

    from repro.obs import span

    with span("simulate", predictor="gshare", benchmark="gcc"):
        ...

Spans nest: entering a span inside another makes it a child, so a run
builds a structured in-memory tree (per thread, rooted at
:attr:`Tracer.roots`).  :meth:`Tracer.chrome_events` flattens the tree
into Chrome trace format ("X" complete events, microsecond timestamps),
which ``chrome://tracing`` or https://ui.perfetto.dev render as a
flamegraph; :meth:`Tracer.write` dumps the standard
``{"traceEvents": [...]}`` JSON envelope.

Worker processes record spans into their own (per-process) global
:data:`TRACER`, serialise them with :meth:`Tracer.chrome_events`, and
ship the event dicts back to the parent, which attaches them with
:meth:`Tracer.add_events`; events keep their originating ``pid`` so each
worker renders as its own track.  Timestamps are relative to each
process's tracer reset, which is exactly what a per-run flamegraph
wants.

Tracing records *where wall-clock went*; it never influences simulation
results, which stay a pure function of (seed, config).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed region: name, attributes, start/duration, children.

    ``start`` and ``duration`` are seconds; ``start`` is relative to the
    owning tracer's last reset.
    """

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    duration: float = 0.0
    tid: int = 0
    children: List["Span"] = field(default_factory=list)


class Tracer:
    """Collects a span tree per thread plus foreign (worker) events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: List[Span] = []
        self._foreign_events: List[dict] = []
        self._origin = time.perf_counter()

    def reset(self) -> None:
        """Drop all recorded spans and restart the clock origin."""
        with self._lock:
            self.roots = []
            self._foreign_events = []
            self._origin = time.perf_counter()
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; yields the :class:`Span` being recorded."""
        stack = self._stack()
        node = Span(
            name=name,
            attrs=dict(attrs),
            start=time.perf_counter() - self._origin,
            tid=threading.get_ident(),
        )
        if stack:
            stack[-1].children.append(node)
        else:
            with self._lock:
                self.roots.append(node)
        stack.append(node)
        start = time.perf_counter()
        try:
            yield node
        finally:
            node.duration = time.perf_counter() - start
            stack.pop()

    # -- export ------------------------------------------------------------

    def add_events(self, events: List[dict]) -> None:
        """Attach pre-serialised Chrome events (from a worker process)."""
        with self._lock:
            self._foreign_events.extend(events)

    def _flatten(
        self, node: Span, pid: int, parent: Optional[str], out: List[dict]
    ) -> None:
        out.append({
            "name": node.name,
            "ph": "X",
            "ts": node.start * 1e6,
            "dur": node.duration * 1e6,
            "pid": pid,
            "tid": node.tid,
            "args": (
                {**node.attrs, "parent": parent}
                if parent is not None
                else dict(node.attrs)
            ),
        })
        for child in node.children:
            self._flatten(child, pid, node.name, out)

    def chrome_events(self) -> List[dict]:
        """Every recorded span as Chrome trace 'X' events (plus foreign)."""
        pid = os.getpid()
        out: List[dict] = []
        with self._lock:
            roots = list(self.roots)
            foreign = list(self._foreign_events)
        for root in roots:
            self._flatten(root, pid, None, out)
        out.extend(foreign)
        return out

    def write(self, path: str) -> None:
        """Write the ``{"traceEvents": [...]}`` JSON envelope to ``path``."""
        payload = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


#: The process-global tracer the instrumented engine records into.
TRACER = Tracer()


def span(name: str, **attrs: Any):
    """Open a span on the global :data:`TRACER` (module-level shortcut)."""
    return TRACER.span(name, **attrs)
